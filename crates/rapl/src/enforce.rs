//! Applying a cross-component allocation to real RAPL domains.
//!
//! The bridge from a coordination decision (`PowerAllocation`, produced by
//! COORD / the online coordinator / the oracle) to hardware: the processor
//! share is divided evenly across package domains (the paper's assumption
//! (b)) and the memory share across DRAM subdomains (assumption (c)).
//!
//! [`enforce`] is genuinely **transactional**: prior limits are snapshotted
//! before anything is written, cap *decreases* are applied before cap
//! *increases* (so no intermediate state ever totals more than
//! `max(before, after)`), transient write failures are retried with capped
//! exponential backoff, and a permanent failure rolls every
//! already-programmed domain back to its snapshot — a half-applied
//! allocation can never silently exceed the budget. Progress is observable
//! through the `enforce.*` counters (`pbc_trace::names`):
//! `enforce.rollbacks` must equal `enforce.permanent_failures` on every
//! run, the contract the chaos smoke gate asserts.

use crate::{DomainKind, RaplDomain, RaplSysfs};
use pbc_trace::names;
use pbc_types::{PbcError, PowerAllocation, Result, Watts};

/// What was programmed into one domain.
#[derive(Debug, Clone, PartialEq)]
pub struct AppliedCap {
    /// Domain name (e.g. `"package-0"`).
    pub domain: String,
    /// Domain kind.
    pub kind: DomainKind,
    /// The limit written.
    pub limit: Watts,
}

/// Retry/backoff policy for individual cap writes.
///
/// A write that fails is retried up to `max_attempts - 1` times; the
/// delay before retry `i` (0-based) is `min(backoff_cap_ms,
/// backoff_base_ms << i)` milliseconds. Tests and the chaos harness use
/// [`RetryPolicy::no_backoff`] so injected fault storms replay at full
/// speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per domain write (at least 1).
    pub max_attempts: u32,
    /// Base backoff before the first retry, in milliseconds.
    pub backoff_base_ms: u64,
    /// Ceiling on any single backoff, in milliseconds.
    pub backoff_cap_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 4,
            backoff_base_ms: 1,
            backoff_cap_ms: 50,
        }
    }
}

impl RetryPolicy {
    /// The default attempt count with zero sleep between retries.
    #[must_use]
    pub const fn no_backoff() -> Self {
        Self {
            max_attempts: 4,
            backoff_base_ms: 0,
            backoff_cap_ms: 0,
        }
    }

    /// Backoff before 0-based retry `i`, in milliseconds.
    #[must_use]
    pub fn backoff_ms(&self, retry: u32) -> u64 {
        let shifted = self
            .backoff_base_ms
            .checked_shl(retry.min(63))
            .unwrap_or(u64::MAX);
        shifted.min(self.backoff_cap_ms)
    }
}

/// Outcome of one enforcement transaction (see [`enforce_with`]).
#[derive(Debug, Clone, PartialEq)]
pub struct EnforceReport {
    /// Caps that are programmed *and still standing* when the call
    /// returns. On success: one entry per target domain. On a rolled-back
    /// failure: only the domains whose best-effort restore itself failed
    /// (normally none).
    pub applied: Vec<AppliedCap>,
    /// Individual write retries consumed by transient failures.
    pub retries: u32,
    /// Whether a permanent failure triggered the rollback path.
    pub rolled_back: bool,
    /// Rollback restores that themselves failed (those domains keep the
    /// new cap and stay listed in `applied`).
    pub rollback_errors: u32,
    /// The failure that aborted the transaction, if any.
    pub error: Option<PbcError>,
}

impl EnforceReport {
    /// Did the whole transaction commit?
    #[must_use]
    pub fn is_ok(&self) -> bool {
        self.error.is_none()
    }

    /// Collapse to the classic `Result` shape: the applied caps on
    /// commit, the aborting error on rollback.
    #[must_use = "discarding the result loses both the caps and the error"]
    pub fn into_result(self) -> Result<Vec<AppliedCap>> {
        match self.error {
            None => Ok(self.applied),
            Some(e) => Err(e),
        }
    }
}

/// A cap write that can be intercepted (fault injection, dry runs).
/// The default writer is [`RaplDomain::set_power_limit`].
pub type CapWriter<'a> = dyn FnMut(&RaplDomain, Watts) -> Result<()> + 'a;

/// Divide an allocation across the discovered domains and program the
/// constraint-0 power limits transactionally with the default
/// [`RetryPolicy`]. Returns one entry per domain written; on permanent
/// failure every already-written domain is rolled back and the error is
/// returned.
///
/// Errors with [`PbcError::BackendUnavailable`] when the topology lacks
/// package or DRAM domains, and with [`PbcError::Io`] when a write fails
/// permanently (typically permissions — writing powercap limits needs
/// root).
#[must_use = "unchecked enforcement can leave the node on stale caps"]
pub fn enforce(rapl: &RaplSysfs, alloc: PowerAllocation) -> Result<Vec<AppliedCap>> {
    enforce_with(rapl, alloc, &RetryPolicy::default(), &mut |d, w| {
        d.set_power_limit(w)
    })
    .into_result()
}

/// One planned domain write, ordered decreases-first.
struct Planned<'a> {
    domain: &'a RaplDomain,
    target: Watts,
    prior: Watts,
}

/// The transactional core behind [`enforce`]: explicit retry policy and
/// an injectable writer so tests and the chaos harness can interpose
/// failures between the decision and the (mock) hardware.
///
/// The write order is **decreases first**: every intermediate state
/// totals at most `max(prior total, target total)`, so a transaction
/// interrupted mid-flight can never push the node *above* both the old
/// and the new budget at once.
pub fn enforce_with(
    rapl: &RaplSysfs,
    alloc: PowerAllocation,
    policy: &RetryPolicy,
    write: &mut CapWriter<'_>,
) -> EnforceReport {
    pbc_trace::counter(names::ENFORCE_ATTEMPTS).incr();
    let mut report = EnforceReport {
        applied: Vec::new(),
        retries: 0,
        rolled_back: false,
        rollback_errors: 0,
        error: None,
    };
    if !alloc.is_valid() || alloc.proc.value() <= 0.0 || alloc.mem.value() <= 0.0 {
        report.error = Some(PbcError::InvalidInput(format!(
            "allocation must be strictly positive, got {alloc}"
        )));
        return report;
    }
    let packages: Vec<&RaplDomain> = rapl.packages().collect();
    let drams: Vec<&RaplDomain> = rapl.dram().collect();
    if packages.is_empty() || drams.is_empty() {
        report.error = Some(PbcError::BackendUnavailable(
            "topology lacks package or DRAM domains".into(),
        ));
        return report;
    }
    let per_pkg = alloc.proc / packages.len() as f64;
    let per_dram = alloc.mem / drams.len() as f64;

    // Snapshot every prior limit before touching anything: the rollback
    // targets, and the sort key for the decreases-first ordering.
    let mut plan = Vec::with_capacity(packages.len() + drams.len());
    for (list, target) in [(&packages, per_pkg), (&drams, per_dram)] {
        for d in list.iter() {
            match d.power_limit() {
                Ok(prior) => plan.push(Planned {
                    domain: d,
                    target,
                    prior,
                }),
                Err(e) => {
                    report.error = Some(PbcError::Io(format!(
                        "cannot snapshot prior limit of {}: {e}",
                        d.name
                    )));
                    return report;
                }
            }
        }
    }
    plan.sort_by(|a, b| {
        let da = (a.target - a.prior).value();
        let db = (b.target - b.prior).value();
        da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
    });

    let retries_counter = pbc_trace::counter(names::ENFORCE_RETRIES);
    let mut done: Vec<&Planned<'_>> = Vec::with_capacity(plan.len());
    for p in &plan {
        match write_with_retry(p.domain, p.target, policy, write, &mut report.retries) {
            Ok(()) => {
                done.push(p);
                report.applied.push(AppliedCap {
                    domain: p.domain.name.clone(),
                    kind: p.domain.kind,
                    limit: p.target,
                });
            }
            Err(e) => {
                pbc_trace::counter(names::ENFORCE_PERMANENT_FAILURES).incr();
                pbc_trace::counter(names::ENFORCE_ROLLBACKS).incr();
                report.rolled_back = true;
                // Best-effort restore, newest write first. A domain whose
                // restore fails keeps the new cap and stays in `applied`
                // so the caller can see exactly what is still programmed.
                let mut standing = Vec::new();
                for q in done.iter().rev() {
                    match write_with_retry(q.domain, q.prior, policy, write, &mut report.retries)
                    {
                        Ok(()) => {}
                        Err(_) => {
                            report.rollback_errors += 1;
                            pbc_trace::counter(names::ENFORCE_ROLLBACK_ERRORS).incr();
                            standing.push(AppliedCap {
                                domain: q.domain.name.clone(),
                                kind: q.domain.kind,
                                limit: q.target,
                            });
                        }
                    }
                }
                report.applied = standing;
                report.error = Some(PbcError::Io(format!(
                    "cap write on {} failed permanently after {} attempts ({e}); \
                     transaction rolled back ({} restore failure(s))",
                    p.domain.name, policy.max_attempts, report.rollback_errors
                )));
                return report;
            }
        }
    }
    drop(retries_counter);
    report
}

/// Attempt one domain write under the retry policy, counting retries
/// into both the trace registry and the caller's tally.
fn write_with_retry(
    domain: &RaplDomain,
    limit: Watts,
    policy: &RetryPolicy,
    write: &mut CapWriter<'_>,
    retries: &mut u32,
) -> Result<()> {
    let attempts = policy.max_attempts.max(1);
    let mut last = None;
    for attempt in 0..attempts {
        if attempt > 0 {
            *retries += 1;
            pbc_trace::counter(names::ENFORCE_RETRIES).incr();
            let ms = policy.backoff_ms(attempt - 1);
            if ms > 0 {
                std::thread::sleep(std::time::Duration::from_millis(ms));
            }
        }
        match write(domain, limit) {
            Ok(()) => return Ok(()),
            Err(e) => last = Some(e),
        }
    }
    Err(last.unwrap_or_else(|| PbcError::Io("write failed with no error detail".into())))
}

/// Read back the currently programmed limits as an aggregate allocation
/// (the inverse of [`enforce`]): sum of package limits and sum of DRAM
/// limits.
#[must_use = "the read-back allocation is the whole point of calling this"]
pub fn current_allocation(rapl: &RaplSysfs) -> Result<PowerAllocation> {
    let mut proc = Watts::ZERO;
    let mut mem = Watts::ZERO;
    let mut saw_pkg = false;
    let mut saw_dram = false;
    for d in &rapl.domains {
        match d.kind {
            DomainKind::Package => {
                proc += d.power_limit()?;
                saw_pkg = true;
            }
            DomainKind::Dram => {
                mem += d.power_limit()?;
                saw_dram = true;
            }
            _ => {}
        }
    }
    if !saw_pkg || !saw_dram {
        return Err(PbcError::BackendUnavailable(
            "topology lacks package or DRAM domains".into(),
        ));
    }
    Ok(PowerAllocation::new(proc, mem))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mock;
    use std::fs;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("pbc-enforce-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    fn mock_rapl(tag: &str, packages: usize) -> (PathBuf, RaplSysfs) {
        let root = tmpdir(tag);
        mock::sysfs_tree(&root, packages, 1).unwrap();
        let rapl = RaplSysfs::discover_at(&root).unwrap();
        (root, rapl)
    }

    #[test]
    fn enforce_divides_across_domains() {
        let (root, rapl) = mock_rapl("divide", 2);
        let applied = enforce(
            &rapl,
            PowerAllocation::new(Watts::new(110.0), Watts::new(84.0)),
        )
        .unwrap();
        assert_eq!(applied.len(), 4);
        // Two packages at 55 W each, two DRAM domains at 42 W each.
        let pkg: Vec<_> = applied.iter().filter(|a| a.kind == DomainKind::Package).collect();
        assert_eq!(pkg.len(), 2);
        for a in pkg {
            assert!((a.limit.value() - 55.0).abs() < 1e-9);
        }
        for a in applied.iter().filter(|a| a.kind == DomainKind::Dram) {
            assert!((a.limit.value() - 42.0).abs() < 1e-9);
        }
        // And the files actually changed; the aggregate reads back.
        let back = current_allocation(&rapl).unwrap();
        assert!((back.proc.value() - 110.0).abs() < 1e-6);
        assert!((back.mem.value() - 84.0).abs() < 1e-6);
        fs::remove_dir_all(root).unwrap();
    }

    #[test]
    fn enforce_requires_both_domain_kinds() {
        let root = tmpdir("nodram");
        mock::sysfs_tree(&root, 1, 0).unwrap();
        let rapl = RaplSysfs::discover_at(&root).unwrap();
        let err = enforce(
            &rapl,
            PowerAllocation::new(Watts::new(100.0), Watts::new(50.0)),
        )
        .unwrap_err();
        assert!(matches!(err, PbcError::BackendUnavailable(_)));
        assert!(current_allocation(&rapl).is_err());
        fs::remove_dir_all(root).unwrap();
    }

    #[test]
    fn enforce_rejects_degenerate_allocations() {
        let (root, rapl) = mock_rapl("degenerate", 2);
        assert!(enforce(&rapl, PowerAllocation::new(Watts::ZERO, Watts::new(50.0))).is_err());
        assert!(enforce(&rapl, PowerAllocation::new(Watts::new(-5.0), Watts::new(50.0))).is_err());
        fs::remove_dir_all(root).unwrap();
    }

    /// The regression the transactional rewrite exists for: a write that
    /// fails on a *later* domain must not leave the earlier domains
    /// programmed with the new caps.
    #[test]
    fn permanent_failure_rolls_every_domain_back() {
        let (root, rapl) = mock_rapl("rollback", 2);
        let before = current_allocation(&rapl).unwrap();
        let mut write_log = Vec::new();
        let report = enforce_with(
            &rapl,
            PowerAllocation::new(Watts::new(80.0), Watts::new(30.0)),
            &RetryPolicy::no_backoff(),
            &mut |d, w| {
                write_log.push((d.name.clone(), w));
                if d.name == "package-1" && (w.value() - 40.0).abs() < 1e-9 {
                    Err(PbcError::Io("injected permanent failure".into()))
                } else {
                    d.set_power_limit(w)
                }
            },
        );
        assert!(!report.is_ok());
        assert!(report.rolled_back);
        assert_eq!(report.rollback_errors, 0);
        assert!(report.applied.is_empty(), "rolled-back caps must not be reported standing");
        // Retried max_attempts times on the failing domain.
        assert_eq!(report.retries, RetryPolicy::no_backoff().max_attempts - 1);
        // Every domain reads back its prior limit — all-or-nothing.
        let after = current_allocation(&rapl).unwrap();
        assert!((after.proc.value() - before.proc.value()).abs() < 1e-9);
        assert!((after.mem.value() - before.mem.value()).abs() < 1e-9);
        fs::remove_dir_all(root).unwrap();
    }

    #[test]
    fn transient_failures_are_absorbed_by_retries() {
        let (root, rapl) = mock_rapl("transient", 2);
        let mut failures_left = 3u32; // < max_attempts per domain
        let report = enforce_with(
            &rapl,
            PowerAllocation::new(Watts::new(100.0), Watts::new(60.0)),
            &RetryPolicy::no_backoff(),
            &mut |d, w| {
                if failures_left > 0 {
                    failures_left -= 1;
                    Err(PbcError::Io("injected transient failure".into()))
                } else {
                    d.set_power_limit(w)
                }
            },
        );
        assert!(report.is_ok(), "{:?}", report.error);
        assert_eq!(report.applied.len(), 4);
        assert_eq!(report.retries, 3);
        assert!(!report.rolled_back);
        let back = current_allocation(&rapl).unwrap();
        assert!((back.total().value() - 160.0).abs() < 1e-6);
        fs::remove_dir_all(root).unwrap();
    }

    /// Decreases-first ordering: with the mock tree at 115 W everywhere,
    /// an allocation that cuts DRAM and raises packages must write the
    /// DRAM domains before the packages.
    #[test]
    fn cap_decreases_are_written_before_increases() {
        let (root, rapl) = mock_rapl("ordering", 2);
        let mut order = Vec::new();
        let report = enforce_with(
            &rapl,
            // per-pkg 130 (increase from 115), per-dram 40 (decrease).
            PowerAllocation::new(Watts::new(260.0), Watts::new(80.0)),
            &RetryPolicy::no_backoff(),
            &mut |d, w| {
                order.push(d.name.clone());
                d.set_power_limit(w)
            },
        );
        assert!(report.is_ok());
        assert_eq!(order.len(), 4);
        assert!(
            order[..2].iter().all(|n| n == "dram"),
            "decreases (dram) must come first: {order:?}"
        );
        fs::remove_dir_all(root).unwrap();
    }

    /// A restore that itself fails leaves that domain in `applied` and is
    /// counted, so the caller knows exactly what is still programmed.
    #[test]
    fn failed_restore_is_reported_not_hidden() {
        let (root, rapl) = mock_rapl("restorefail", 2);
        let mut dram_writes = 0u32;
        let report = enforce_with(
            &rapl,
            PowerAllocation::new(Watts::new(80.0), Watts::new(30.0)),
            &RetryPolicy::no_backoff(),
            &mut |d, w| {
                if d.name == "dram" {
                    dram_writes += 1;
                    // First dram target write succeeds; everything after
                    // (second dram target, then the restore) fails.
                    if dram_writes == 1 {
                        return d.set_power_limit(w);
                    }
                    return Err(PbcError::Io("injected".into()));
                }
                d.set_power_limit(w)
            },
        );
        assert!(!report.is_ok());
        assert!(report.rolled_back);
        assert_eq!(report.rollback_errors, 1);
        assert_eq!(report.applied.len(), 1);
        assert_eq!(report.applied[0].domain, "dram");
        fs::remove_dir_all(root).unwrap();
    }

    #[test]
    fn backoff_schedule_is_capped_exponential() {
        let p = RetryPolicy {
            max_attempts: 8,
            backoff_base_ms: 1,
            backoff_cap_ms: 50,
        };
        let delays: Vec<u64> = (0..8).map(|i| p.backoff_ms(i)).collect();
        assert_eq!(delays, vec![1, 2, 4, 8, 16, 32, 50, 50]);
        assert_eq!(RetryPolicy::no_backoff().backoff_ms(5), 0);
    }
}
