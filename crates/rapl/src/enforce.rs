//! Applying a cross-component allocation to real RAPL domains.
//!
//! The bridge from a coordination decision (`PowerAllocation`, produced by
//! COORD / the online coordinator / the oracle) to hardware: the processor
//! share is divided evenly across package domains (the paper's assumption
//! (b)) and the memory share across DRAM subdomains (assumption (c)).
//!
//! [`enforce`] is transactional in spirit: it validates every target
//! domain first and reports per-domain results, so a permissions failure
//! on one socket doesn't leave the caller guessing what was applied.

use crate::{DomainKind, RaplDomain, RaplSysfs};
use pbc_types::{PbcError, PowerAllocation, Result, Watts};

/// What was programmed into one domain.
#[derive(Debug, Clone, PartialEq)]
pub struct AppliedCap {
    /// Domain name (e.g. `"package-0"`).
    pub domain: String,
    /// Domain kind.
    pub kind: DomainKind,
    /// The limit written.
    pub limit: Watts,
}

/// Divide an allocation across the discovered domains and program the
/// constraint-0 power limits. Returns one entry per domain written.
///
/// Errors with [`PbcError::BackendUnavailable`] when the topology lacks
/// package or DRAM domains, and with [`PbcError::Io`] on the first write
/// failure (typically permissions — writing powercap limits needs root).
pub fn enforce(rapl: &RaplSysfs, alloc: PowerAllocation) -> Result<Vec<AppliedCap>> {
    if !alloc.is_valid() || alloc.proc.value() <= 0.0 || alloc.mem.value() <= 0.0 {
        return Err(PbcError::InvalidInput(format!(
            "allocation must be strictly positive, got {alloc}"
        )));
    }
    let packages: Vec<&RaplDomain> = rapl.packages().collect();
    let drams: Vec<&RaplDomain> = rapl.dram().collect();
    if packages.is_empty() {
        return Err(PbcError::BackendUnavailable(
            "no package domains discovered".into(),
        ));
    }
    if drams.is_empty() {
        return Err(PbcError::BackendUnavailable(
            "no DRAM domains discovered".into(),
        ));
    }
    let per_pkg = alloc.proc / packages.len() as f64;
    let per_dram = alloc.mem / drams.len() as f64;

    let mut applied = Vec::with_capacity(packages.len() + drams.len());
    for d in packages {
        d.set_power_limit(per_pkg)?;
        applied.push(AppliedCap {
            domain: d.name.clone(),
            kind: d.kind,
            limit: per_pkg,
        });
    }
    for d in drams {
        d.set_power_limit(per_dram)?;
        applied.push(AppliedCap {
            domain: d.name.clone(),
            kind: d.kind,
            limit: per_dram,
        });
    }
    Ok(applied)
}

/// Read back the currently programmed limits as an aggregate allocation
/// (the inverse of [`enforce`]): sum of package limits and sum of DRAM
/// limits.
pub fn current_allocation(rapl: &RaplSysfs) -> Result<PowerAllocation> {
    let mut proc = Watts::ZERO;
    let mut mem = Watts::ZERO;
    let mut saw_pkg = false;
    let mut saw_dram = false;
    for d in &rapl.domains {
        match d.kind {
            DomainKind::Package => {
                proc += d.power_limit()?;
                saw_pkg = true;
            }
            DomainKind::Dram => {
                mem += d.power_limit()?;
                saw_dram = true;
            }
            _ => {}
        }
    }
    if !saw_pkg || !saw_dram {
        return Err(PbcError::BackendUnavailable(
            "topology lacks package or DRAM domains".into(),
        ));
    }
    Ok(PowerAllocation::new(proc, mem))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::path::{Path, PathBuf};

    fn fixture(root: &Path, with_dram: bool) {
        let dirs: Vec<(&str, &str)> = if with_dram {
            vec![
                ("intel-rapl:0", "package-0"),
                ("intel-rapl:0:0", "dram"),
                ("intel-rapl:1", "package-1"),
                ("intel-rapl:1:0", "dram"),
            ]
        } else {
            vec![("intel-rapl:0", "package-0")]
        };
        for (dir, name) in dirs {
            let d = root.join(dir);
            fs::create_dir_all(&d).unwrap();
            fs::write(d.join("name"), format!("{name}\n")).unwrap();
            fs::write(d.join("energy_uj"), "1\n").unwrap();
            fs::write(d.join("max_energy_range_uj"), "262143328850\n").unwrap();
            fs::write(d.join("constraint_0_power_limit_uw"), "115000000\n").unwrap();
            fs::write(d.join("constraint_0_time_window_us"), "976\n").unwrap();
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("pbc-enforce-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn enforce_divides_across_domains() {
        let root = tmpdir("divide");
        fixture(&root, true);
        let rapl = RaplSysfs::discover_at(&root).unwrap();
        let applied = enforce(
            &rapl,
            PowerAllocation::new(Watts::new(110.0), Watts::new(84.0)),
        )
        .unwrap();
        assert_eq!(applied.len(), 4);
        // Two packages at 55 W each, two DRAM domains at 42 W each.
        let pkg: Vec<_> = applied.iter().filter(|a| a.kind == DomainKind::Package).collect();
        assert_eq!(pkg.len(), 2);
        for a in pkg {
            assert!((a.limit.value() - 55.0).abs() < 1e-9);
        }
        for a in applied.iter().filter(|a| a.kind == DomainKind::Dram) {
            assert!((a.limit.value() - 42.0).abs() < 1e-9);
        }
        // And the files actually changed; the aggregate reads back.
        let back = current_allocation(&rapl).unwrap();
        assert!((back.proc.value() - 110.0).abs() < 1e-6);
        assert!((back.mem.value() - 84.0).abs() < 1e-6);
        fs::remove_dir_all(root).unwrap();
    }

    #[test]
    fn enforce_requires_both_domain_kinds() {
        let root = tmpdir("nodram");
        fixture(&root, false);
        let rapl = RaplSysfs::discover_at(&root).unwrap();
        let err = enforce(
            &rapl,
            PowerAllocation::new(Watts::new(100.0), Watts::new(50.0)),
        )
        .unwrap_err();
        assert!(matches!(err, PbcError::BackendUnavailable(_)));
        assert!(current_allocation(&rapl).is_err());
        fs::remove_dir_all(root).unwrap();
    }

    #[test]
    fn enforce_rejects_degenerate_allocations() {
        let root = tmpdir("degenerate");
        fixture(&root, true);
        let rapl = RaplSysfs::discover_at(&root).unwrap();
        assert!(enforce(&rapl, PowerAllocation::new(Watts::ZERO, Watts::new(50.0))).is_err());
        assert!(enforce(&rapl, PowerAllocation::new(Watts::new(-5.0), Watts::new(50.0))).is_err());
        fs::remove_dir_all(root).unwrap();
    }
}
