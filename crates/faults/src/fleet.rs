//! Fleet-scale fault plans: what goes wrong *between* nodes, when.
//!
//! [`crate::plan::FaultPlan`] describes a single node's bad day —
//! sensor lies, cap-write failures, budget moves. A [`FleetFaultPlan`]
//! is the layer above it: whole nodes crash and rejoin, observation
//! reports are dropped, delayed, or garbled on their way to the global
//! coordinator, individual nodes lose their cap-write path for a
//! stretch, stragglers run slow, and the coordinator itself can become
//! unavailable. The same determinism contract applies: the plan is pure
//! data (probabilities confined to half-open tick windows, scheduled
//! budget steps), and every draw comes from a fresh generator keyed on
//! `(seed, tick, stream, node)` — see [`crate::inject::decision_rng`] —
//! so a fleet chaos run replays bit-identically at any thread count.
//!
//! Shipped presets keep budget steps *outside* every write-fault window
//! (the same structural discipline as the single-node plans), which is
//! what lets `cluster.budget_violations == 0` hold at every seed. The
//! adversarial overlap — a budget cut landing while a quarantined
//! node's decrease cannot be written — is exercised separately by the
//! property tests with the weaker caps-never-inflate guarantee.

use crate::plan::{BudgetStep, FaultWindow};
use pbc_types::{PbcError, Result};

/// Node membership faults: crashes (and the rejoin after), plus
/// straggler slowdowns.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeFaults {
    /// Per-node, per-epoch probability of crashing while the crash
    /// window is active.
    pub crash_prob: f64,
    /// Epochs `[from, until)` during which crashes can fire.
    pub crash_window: FaultWindow,
    /// How many epochs a crashed node stays down before rejoining.
    pub outage_epochs: usize,
    /// Per-node, per-epoch probability of turning straggler while the
    /// straggler window is active.
    pub straggler_prob: f64,
    /// Epochs `[from, until)` during which stragglers can appear.
    pub straggler_window: FaultWindow,
    /// How many epochs a straggler stays slow.
    pub straggle_epochs: usize,
    /// Throughput multiplier while straggling (e.g. `0.3` = runs at
    /// 30 % speed and its reports lag an epoch behind).
    pub slowdown: f64,
}

impl NodeFaults {
    /// No membership faults, ever.
    pub const NONE: Self = Self {
        crash_prob: 0.0,
        crash_window: FaultWindow::NEVER,
        outage_epochs: 0,
        straggler_prob: 0.0,
        straggler_window: FaultWindow::NEVER,
        straggle_epochs: 0,
        slowdown: 1.0,
    };
}

/// Faults on the observation reports nodes send the coordinator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReportFaults {
    /// Probability an in-window report never arrives.
    pub drop_prob: f64,
    /// Probability an in-window report arrives one epoch late (stale:
    /// it describes the previous epoch's caps).
    pub delay_prob: f64,
    /// Probability an in-window report arrives garbled (non-finite or
    /// absurd fields that validation must reject).
    pub garble_prob: f64,
    /// When report faults are armed.
    pub window: FaultWindow,
}

impl ReportFaults {
    /// Reports always arrive clean.
    pub const NONE: Self = Self {
        drop_prob: 0.0,
        delay_prob: 0.0,
        garble_prob: 0.0,
        window: FaultWindow::NEVER,
    };
}

/// Faults on the per-node cap-write path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetWriteFaults {
    /// Per-attempt probability of a cap write failing while the write
    /// window is active (independent per retry, so retries can absorb
    /// it).
    pub fail_prob: f64,
    /// When stochastic write failures are armed.
    pub window: FaultWindow,
    /// Per-node, per-epoch probability of the node's *entire* cap-write
    /// path going down (every write fails until the outage ends).
    pub outage_prob: f64,
    /// How many epochs a write outage lasts.
    pub outage_epochs: usize,
    /// When write outages can begin.
    pub outage_window: FaultWindow,
}

impl FleetWriteFaults {
    /// Cap writes always land.
    pub const NONE: Self = Self {
        fail_prob: 0.0,
        window: FaultWindow::NEVER,
        outage_prob: 0.0,
        outage_epochs: 0,
        outage_window: FaultWindow::NEVER,
    };
}

/// Tenant demand faults: per-tenant demand spikes and noisy neighbors.
/// Both multiply a tenant's demand signal — a spike is a legitimate
/// burst (deadline crunch), a noisy neighbor is a sustained hog. The
/// tenant sub-partition must absorb either without letting the fleet
/// overdraw the global budget or starve a co-tenant below its weighted
/// floor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantFaults {
    /// Per-tenant, per-epoch probability of a demand spike while the
    /// spike window is active.
    pub spike_prob: f64,
    /// Epochs `[from, until)` during which spikes can fire.
    pub spike_window: FaultWindow,
    /// How many epochs a spike lasts.
    pub spike_epochs: usize,
    /// Demand multiplier while spiking (≥ 1).
    pub spike_factor: f64,
    /// Per-tenant, per-epoch probability of turning noisy neighbor
    /// while the noisy window is active.
    pub noisy_prob: f64,
    /// Epochs `[from, until)` during which noisy neighbors can appear.
    pub noisy_window: FaultWindow,
    /// How many epochs a noisy neighbor keeps hogging.
    pub noisy_epochs: usize,
    /// Demand multiplier while noisy (≥ 1, typically larger and longer
    /// than a spike).
    pub noisy_factor: f64,
}

impl TenantFaults {
    /// Tenant demand stays flat.
    pub const NONE: Self = Self {
        spike_prob: 0.0,
        spike_window: FaultWindow::NEVER,
        spike_epochs: 0,
        spike_factor: 1.0,
        noisy_prob: 0.0,
        noisy_window: FaultWindow::NEVER,
        noisy_epochs: 0,
        noisy_factor: 1.0,
    };
}

/// A complete, replayable fleet fault scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetFaultPlan {
    /// Preset name (for reports and the CLI).
    pub name: &'static str,
    /// Seed all draws derive from.
    pub seed: u64,
    /// Node crashes, rejoins, and stragglers.
    pub nodes: NodeFaults,
    /// Observation-report corruption.
    pub reports: ReportFaults,
    /// Cap-write failures and outages.
    pub writes: FleetWriteFaults,
    /// Tenant demand spikes and noisy neighbors (inert unless the
    /// coordinator has tenants attached).
    pub tenants: TenantFaults,
    /// Epochs `[from, until)` during which global coordination is
    /// unavailable — every node must fall back to its precomputed
    /// static budget.
    pub coordinator_outage: FaultWindow,
    /// Scheduled changes of the global budget (factors are absolute
    /// w.r.t. the initial budget, as in [`BudgetStep`]).
    pub budget_steps: Vec<BudgetStep>,
}

/// The preset plan names [`FleetFaultPlan::by_name`] accepts, in
/// escalation order. `node-dropouts` and `flaky-writes` keep the
/// pre-health-machine preset names alive.
pub const FLEET_PLAN_NAMES: [&str; 11] = [
    "calm",
    "node-dropouts",
    "node-crash",
    "node-rejoin",
    "stragglers",
    "report-loss",
    "flaky-writes",
    "write-outage",
    "demand-spike",
    "noisy-neighbor",
    "everything",
];

impl FleetFaultPlan {
    /// No faults at all — the control run.
    #[must_use]
    pub fn calm(seed: u64) -> Self {
        Self {
            name: "calm",
            seed,
            nodes: NodeFaults::NONE,
            reports: ReportFaults::NONE,
            writes: FleetWriteFaults::NONE,
            tenants: TenantFaults::NONE,
            coordinator_outage: FaultWindow::NEVER,
            budget_steps: Vec::new(),
        }
    }

    /// Nodes drop out mid-run and rejoin a few epochs later — the
    /// original cluster preset, kept under its old name.
    #[must_use]
    pub fn node_dropouts(seed: u64) -> Self {
        Self {
            name: "node-dropouts",
            nodes: NodeFaults {
                crash_prob: 0.08,
                crash_window: FaultWindow::new(2, 30),
                outage_epochs: 4,
                ..NodeFaults::NONE
            },
            ..Self::calm(seed)
        }
    }

    /// Hard crashes with long outages: the fleet must reclaim the dead
    /// nodes' watts and keep the survivors productive.
    #[must_use]
    pub fn node_crash(seed: u64) -> Self {
        Self {
            name: "node-crash",
            nodes: NodeFaults {
                crash_prob: 0.05,
                crash_window: FaultWindow::new(4, 24),
                outage_epochs: 12,
                ..NodeFaults::NONE
            },
            ..Self::calm(seed)
        }
    }

    /// Crash/rejoin churn: short outages, so nodes cycle through
    /// Quarantined → Rejoining → Healthy over and over and the
    /// probation path is exercised hard.
    #[must_use]
    pub fn node_rejoin(seed: u64) -> Self {
        Self {
            name: "node-rejoin",
            nodes: NodeFaults {
                crash_prob: 0.10,
                crash_window: FaultWindow::new(2, 28),
                outage_epochs: 3,
                ..NodeFaults::NONE
            },
            ..Self::calm(seed)
        }
    }

    /// Stragglers: nodes run slow for a stretch and their reports lag
    /// an epoch behind, tripping the staleness rejection.
    #[must_use]
    pub fn stragglers(seed: u64) -> Self {
        Self {
            name: "stragglers",
            nodes: NodeFaults {
                straggler_prob: 0.08,
                straggler_window: FaultWindow::new(3, 30),
                straggle_epochs: 6,
                slowdown: 0.3,
                ..NodeFaults::NONE
            },
            ..Self::calm(seed)
        }
    }

    /// Reports are dropped, delayed, and garbled; the health machine
    /// must quarantine on missing/invalid telemetry without ever
    /// overdrawing.
    #[must_use]
    pub fn report_loss(seed: u64) -> Self {
        Self {
            name: "report-loss",
            reports: ReportFaults {
                drop_prob: 0.20,
                delay_prob: 0.10,
                garble_prob: 0.10,
                window: FaultWindow::new(3, 32),
            },
            ..Self::calm(seed)
        }
    }

    /// Cap writes fail stochastically; the pot accounting must hold —
    /// the original cluster preset, kept under its old name.
    #[must_use]
    pub fn flaky_writes(seed: u64) -> Self {
        Self {
            name: "flaky-writes",
            writes: FleetWriteFaults {
                fail_prob: 0.2,
                window: FaultWindow::new(1, 40),
                ..FleetWriteFaults::NONE
            },
            ..Self::calm(seed)
        }
    }

    /// Whole cap-write paths go down per node for a stretch: decreases
    /// cannot land, so the watts they hold must stay reserved.
    #[must_use]
    pub fn write_outage(seed: u64) -> Self {
        Self {
            name: "write-outage",
            writes: FleetWriteFaults {
                fail_prob: 0.1,
                window: FaultWindow::new(2, 30),
                outage_prob: 0.04,
                outage_epochs: 5,
                outage_window: FaultWindow::new(2, 25),
                ..FleetWriteFaults::NONE
            },
            ..Self::calm(seed)
        }
    }

    /// Tenant demand spikes: short legitimate bursts that the tenant
    /// sub-partition must absorb without the fleet overdrawing or any
    /// weighted tenant dropping below its floor.
    #[must_use]
    pub fn demand_spike(seed: u64) -> Self {
        Self {
            name: "demand-spike",
            tenants: TenantFaults {
                spike_prob: 0.15,
                spike_window: FaultWindow::new(2, 30),
                spike_epochs: 3,
                spike_factor: 3.0,
                ..TenantFaults::NONE
            },
            ..Self::calm(seed)
        }
    }

    /// Noisy neighbors: a tenant hogs demand for long stretches — the
    /// co-tenants' weighted floors must hold anyway.
    #[must_use]
    pub fn noisy_neighbor(seed: u64) -> Self {
        Self {
            name: "noisy-neighbor",
            tenants: TenantFaults {
                spike_prob: 0.05,
                spike_window: FaultWindow::new(4, 28),
                spike_epochs: 2,
                spike_factor: 2.0,
                noisy_prob: 0.08,
                noisy_window: FaultWindow::new(2, 32),
                noisy_epochs: 8,
                noisy_factor: 6.0,
            },
            ..Self::calm(seed)
        }
    }

    /// Everything at once: crashes, stragglers, report loss, write
    /// faults, a coordinator outage, and a budget cut — with the budget
    /// steps placed after every write window closes, so the budget
    /// invariant holds structurally at any seed.
    #[must_use]
    pub fn everything(seed: u64) -> Self {
        Self {
            name: "everything",
            nodes: NodeFaults {
                crash_prob: 0.06,
                crash_window: FaultWindow::new(2, 26),
                outage_epochs: 4,
                straggler_prob: 0.05,
                straggler_window: FaultWindow::new(4, 26),
                straggle_epochs: 4,
                slowdown: 0.3,
            },
            reports: ReportFaults {
                drop_prob: 0.10,
                delay_prob: 0.06,
                garble_prob: 0.06,
                window: FaultWindow::new(3, 28),
            },
            writes: FleetWriteFaults {
                fail_prob: 0.15,
                window: FaultWindow::new(1, 30),
                outage_prob: 0.03,
                outage_epochs: 4,
                outage_window: FaultWindow::new(2, 24),
            },
            tenants: TenantFaults {
                spike_prob: 0.10,
                spike_window: FaultWindow::new(3, 28),
                spike_epochs: 3,
                spike_factor: 3.0,
                noisy_prob: 0.05,
                noisy_window: FaultWindow::new(4, 26),
                noisy_epochs: 6,
                noisy_factor: 4.0,
            },
            coordinator_outage: FaultWindow::new(32, 36),
            budget_steps: vec![
                BudgetStep { at: 40, factor: 0.85 },
                BudgetStep { at: 48, factor: 1.0 },
            ],
            ..Self::calm(seed)
        }
    }

    /// Look a preset up by name (see [`FLEET_PLAN_NAMES`]).
    #[must_use]
    pub fn by_name(name: &str, seed: u64) -> Option<Self> {
        match name {
            "calm" => Some(Self::calm(seed)),
            "node-dropouts" => Some(Self::node_dropouts(seed)),
            "node-crash" => Some(Self::node_crash(seed)),
            "node-rejoin" => Some(Self::node_rejoin(seed)),
            "stragglers" => Some(Self::stragglers(seed)),
            "report-loss" => Some(Self::report_loss(seed)),
            "flaky-writes" => Some(Self::flaky_writes(seed)),
            "write-outage" => Some(Self::write_outage(seed)),
            "demand-spike" => Some(Self::demand_spike(seed)),
            "noisy-neighbor" => Some(Self::noisy_neighbor(seed)),
            "everything" => Some(Self::everything(seed)),
            _ => None,
        }
    }

    /// One-line description of a preset, for `pbc faults list`.
    #[must_use]
    pub fn describe(name: &str) -> Option<&'static str> {
        match name {
            "calm" => Some("no faults; the control run"),
            "node-dropouts" => Some("nodes drop out and rejoin a few epochs later"),
            "node-crash" => Some("hard crashes with long outages; survivors inherit the watts"),
            "node-rejoin" => Some("crash/rejoin churn; probation path exercised hard"),
            "stragglers" => Some("nodes run slow and report an epoch late"),
            "report-loss" => Some("reports dropped, delayed, and garbled"),
            "flaky-writes" => Some("cap writes fail stochastically"),
            "write-outage" => Some("whole per-node cap-write paths go down for a stretch"),
            "demand-spike" => Some("tenant demand bursts the sub-partition must absorb"),
            "noisy-neighbor" => Some("a tenant hogs demand; co-tenant floors must hold"),
            "everything" => Some("all of it, plus a coordinator outage and a budget cut"),
            _ => None,
        }
    }

    /// The tick after which the plan injects nothing and every fault it
    /// started has run its course (outages and straggles included).
    #[must_use]
    pub fn quiet_after(&self) -> usize {
        let crash_tail = if self.nodes.crash_window.is_empty() {
            0
        } else {
            self.nodes.crash_window.until + self.nodes.outage_epochs
        };
        let straggle_tail = if self.nodes.straggler_window.is_empty() {
            0
        } else {
            self.nodes.straggler_window.until + self.nodes.straggle_epochs
        };
        let outage_tail = if self.writes.outage_window.is_empty() {
            0
        } else {
            self.writes.outage_window.until + self.writes.outage_epochs
        };
        let spike_tail = if self.tenants.spike_window.is_empty() {
            0
        } else {
            self.tenants.spike_window.until + self.tenants.spike_epochs
        };
        let noisy_tail = if self.tenants.noisy_window.is_empty() {
            0
        } else {
            self.tenants.noisy_window.until + self.tenants.noisy_epochs
        };
        let mut t = crash_tail
            .max(straggle_tail)
            .max(outage_tail)
            .max(spike_tail)
            .max(noisy_tail)
            .max(self.reports.window.until)
            .max(self.writes.window.until)
            .max(self.coordinator_outage.until);
        for s in &self.budget_steps {
            t = t.max(s.at + 1);
        }
        t
    }

    /// Validate probabilities, windows, and schedules.
    #[must_use = "an invalid plan must not be armed"]
    pub fn validate(&self) -> Result<()> {
        let probs = [
            ("nodes.crash_prob", self.nodes.crash_prob),
            ("nodes.straggler_prob", self.nodes.straggler_prob),
            ("reports.drop_prob", self.reports.drop_prob),
            ("reports.delay_prob", self.reports.delay_prob),
            ("reports.garble_prob", self.reports.garble_prob),
            ("writes.fail_prob", self.writes.fail_prob),
            ("writes.outage_prob", self.writes.outage_prob),
            ("tenants.spike_prob", self.tenants.spike_prob),
            ("tenants.noisy_prob", self.tenants.noisy_prob),
        ];
        for (what, p) in probs {
            if !(0.0..=1.0).contains(&p) {
                return Err(PbcError::InvalidInput(format!(
                    "{}: {what} = {p} is not a probability",
                    self.name
                )));
            }
        }
        if self.nodes.crash_prob > 0.0 && self.nodes.outage_epochs == 0 {
            return Err(PbcError::InvalidInput(format!(
                "{}: outage_epochs must be >= 1 when crashes can fire",
                self.name
            )));
        }
        if self.nodes.straggler_prob > 0.0 && self.nodes.straggle_epochs == 0 {
            return Err(PbcError::InvalidInput(format!(
                "{}: straggle_epochs must be >= 1 when stragglers can appear",
                self.name
            )));
        }
        if self.writes.outage_prob > 0.0 && self.writes.outage_epochs == 0 {
            return Err(PbcError::InvalidInput(format!(
                "{}: writes.outage_epochs must be >= 1 when outages can fire",
                self.name
            )));
        }
        let tenant_events = [
            ("spike", self.tenants.spike_prob, self.tenants.spike_epochs, self.tenants.spike_factor),
            ("noisy", self.tenants.noisy_prob, self.tenants.noisy_epochs, self.tenants.noisy_factor),
        ];
        for (what, prob, epochs, factor) in tenant_events {
            if prob > 0.0 && epochs == 0 {
                return Err(PbcError::InvalidInput(format!(
                    "{}: tenants.{what}_epochs must be >= 1 when {what}s can fire",
                    self.name
                )));
            }
            if !factor.is_finite() || factor < 1.0 {
                return Err(PbcError::InvalidInput(format!(
                    "{}: tenants.{what}_factor {factor} must be a finite multiplier >= 1",
                    self.name
                )));
            }
        }
        if !(self.nodes.slowdown.is_finite() && 0.0 < self.nodes.slowdown && self.nodes.slowdown <= 1.0)
        {
            return Err(PbcError::InvalidInput(format!(
                "{}: straggler slowdown {} out of (0, 1]",
                self.name, self.nodes.slowdown
            )));
        }
        let report_sum =
            self.reports.drop_prob + self.reports.delay_prob + self.reports.garble_prob;
        if report_sum > 1.0 {
            return Err(PbcError::InvalidInput(format!(
                "{}: report fault probabilities sum to {report_sum} > 1",
                self.name
            )));
        }
        for s in &self.budget_steps {
            if !s.factor.is_finite() || s.factor <= 0.0 {
                return Err(PbcError::InvalidInput(format!(
                    "{}: budget factor {} at tick {} must be positive",
                    self.name, s.factor, s.at
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_fleet_preset_resolves_validates_and_has_a_description() {
        for name in FLEET_PLAN_NAMES {
            let plan = FleetFaultPlan::by_name(name, 42).unwrap();
            assert_eq!(plan.name, name);
            plan.validate().unwrap();
            assert!(FleetFaultPlan::describe(name).is_some(), "{name} lacks a description");
        }
        assert!(FleetFaultPlan::by_name("nope", 1).is_none());
        assert!(FleetFaultPlan::describe("nope").is_none());
    }

    /// The seed-independence of the fleet budget invariant rests on
    /// this: shipped presets never step the budget while any cap-write
    /// fault (stochastic or outage) can still be in flight.
    #[test]
    fn shipped_fleet_plans_never_step_budget_while_writes_can_fail() {
        for name in FLEET_PLAN_NAMES {
            let plan = FleetFaultPlan::by_name(name, 1).unwrap();
            let write_tail = if plan.writes.outage_window.is_empty() {
                plan.writes.window.until
            } else {
                plan.writes
                    .window
                    .until
                    .max(plan.writes.outage_window.until + plan.writes.outage_epochs)
            };
            for step in &plan.budget_steps {
                assert!(
                    step.at >= write_tail,
                    "{name}: budget step at {} inside the write-fault tail [0, {write_tail})",
                    step.at
                );
            }
        }
    }

    #[test]
    fn quiet_after_covers_outage_and_straggle_tails() {
        let plan = FleetFaultPlan::everything(7);
        let q = plan.quiet_after();
        assert_eq!(q, 49); // last budget step at 48
        assert!(q >= plan.nodes.crash_window.until + plan.nodes.outage_epochs);
        assert!(q >= plan.writes.outage_window.until + plan.writes.outage_epochs);
        assert!(q >= plan.coordinator_outage.until);
        assert_eq!(FleetFaultPlan::calm(7).quiet_after(), 0);
        let crash = FleetFaultPlan::node_crash(1);
        assert_eq!(crash.quiet_after(), crash.nodes.crash_window.until + 12);
    }

    #[test]
    fn validation_rejects_garbage() {
        let mut plan = FleetFaultPlan::node_crash(1);
        plan.nodes.crash_prob = 1.5;
        assert!(plan.validate().is_err());
        let mut plan = FleetFaultPlan::node_crash(1);
        plan.nodes.outage_epochs = 0;
        assert!(plan.validate().is_err());
        let mut plan = FleetFaultPlan::stragglers(1);
        plan.nodes.slowdown = 0.0;
        assert!(plan.validate().is_err());
        let mut plan = FleetFaultPlan::report_loss(1);
        plan.reports.drop_prob = 0.6;
        plan.reports.delay_prob = 0.3;
        plan.reports.garble_prob = 0.2;
        assert!(plan.validate().is_err(), "report sum > 1 must be rejected");
        let mut plan = FleetFaultPlan::everything(1);
        plan.budget_steps[0].factor = f64::NAN;
        assert!(plan.validate().is_err());
        let mut plan = FleetFaultPlan::demand_spike(1);
        plan.tenants.spike_epochs = 0;
        assert!(plan.validate().is_err(), "armed spikes need a duration");
        let mut plan = FleetFaultPlan::noisy_neighbor(1);
        plan.tenants.noisy_factor = 0.5;
        assert!(plan.validate().is_err(), "a demand multiplier below 1 is not a hog");
    }

    #[test]
    fn tenant_presets_cover_their_tails() {
        let spike = FleetFaultPlan::demand_spike(3);
        assert_eq!(
            spike.quiet_after(),
            spike.tenants.spike_window.until + spike.tenants.spike_epochs
        );
        let noisy = FleetFaultPlan::noisy_neighbor(3);
        assert_eq!(
            noisy.quiet_after(),
            noisy.tenants.noisy_window.until + noisy.tenants.noisy_epochs
        );
    }
}
