//! Fault plans: the pure-data description of *what goes wrong when*.
//!
//! A [`FaultPlan`] is a replayable scenario: probabilistic fault kinds
//! are confined to deterministic tick windows, and scheduled events
//! (budget steps, phase shifts) fire at exact ticks. Which individual
//! sample or write gets hit inside a window is decided by seed-derived
//! randomness (see [`crate::inject`]), but the *shape* of the storm is
//! fixed — so properties like "budget steps never coincide with write
//! faults" hold at every seed, not just lucky ones.

use pbc_types::{PbcError, Result};

/// A half-open tick interval `[from, until)` during which a fault kind
/// is armed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultWindow {
    /// First tick (inclusive) the fault can fire.
    pub from: usize,
    /// First tick (exclusive) after which it no longer fires.
    pub until: usize,
}

impl FaultWindow {
    /// An interval that never fires.
    pub const NEVER: Self = Self { from: 0, until: 0 };

    /// Construct `[from, until)`.
    #[must_use]
    pub const fn new(from: usize, until: usize) -> Self {
        Self { from, until }
    }

    /// Is the window armed at `tick`?
    #[must_use]
    pub fn active(&self, tick: usize) -> bool {
        tick >= self.from && tick < self.until
    }

    /// True when the window can never fire.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.until <= self.from
    }
}

/// Sensor corruption on the operating points the coordinator observes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SensorFaults {
    /// Probability an in-window observation is perturbed by
    /// multiplicative noise.
    pub noise_prob: f64,
    /// Noise amplitude: each corrupted field is scaled by a factor in
    /// `[1 - noise_frac, 1 + noise_frac]`.
    pub noise_frac: f64,
    /// Probability an in-window observation is replaced by the previous
    /// clean one (a stale sample from a slow telemetry pipe).
    pub stale_prob: f64,
    /// Probability an in-window observation drops out entirely and a
    /// garbage surrogate (NaN, negative, absurd) is reported instead.
    pub dropout_prob: f64,
    /// When sensor faults are armed.
    pub window: FaultWindow,
}

impl SensorFaults {
    /// No sensor faults, ever.
    pub const NONE: Self = Self {
        noise_prob: 0.0,
        noise_frac: 0.0,
        stale_prob: 0.0,
        dropout_prob: 0.0,
        window: FaultWindow::NEVER,
    };
}

/// Failures injected into enforcement cap writes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WriteFaults {
    /// Probability an in-window cap write fails transiently (1–2
    /// attempts fail, then it lands — retries absorb it).
    pub transient_prob: f64,
    /// Probability an in-window cap write fails permanently (every
    /// attempt fails — the transaction must roll back).
    pub permanent_prob: f64,
    /// When write faults are armed.
    pub window: FaultWindow,
}

impl WriteFaults {
    /// No write faults, ever.
    pub const NONE: Self = Self {
        transient_prob: 0.0,
        permanent_prob: 0.0,
        window: FaultWindow::NEVER,
    };
}

/// A scheduled change of the node budget: at tick `at`, `P_b` becomes
/// `factor` times the plan's *initial* budget (factors are absolute
/// w.r.t. the start, not cumulative, so plans read declaratively).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BudgetStep {
    /// Tick at which the new budget takes effect.
    pub at: usize,
    /// Multiplier on the initial budget (e.g. `0.75` = 25 % cut,
    /// `1.0` = restore).
    pub factor: f64,
}

/// A scheduled workload change: at tick `at`, the running application
/// starts behaving like benchmark `bench` (by catalog slug).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseShift {
    /// Tick at which the workload changes character.
    pub at: usize,
    /// Catalog slug of the new behaviour (`pbc_workloads::by_name`).
    pub bench: String,
}

/// A complete, replayable fault scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Plan name (the CLI and reports identify scenarios by it).
    pub name: String,
    /// Seed for every probabilistic decision the plan makes.
    pub seed: u64,
    /// Sensor corruption.
    pub sensor: SensorFaults,
    /// Enforcement write failures.
    pub writes: WriteFaults,
    /// Scheduled budget changes, in tick order.
    pub budget_steps: Vec<BudgetStep>,
    /// Scheduled workload changes, in tick order.
    pub phase_shifts: Vec<PhaseShift>,
}

/// The named plans [`FaultPlan::by_name`] knows, in escalation order.
pub const NAMES: [&str; 5] = [
    "calm",
    "noisy-sensors",
    "flaky-writes",
    "budget-storm",
    "everything",
];

impl FaultPlan {
    /// The control scenario: nothing goes wrong. A chaos run under
    /// `calm` must look exactly like an ordinary online-tuning run.
    #[must_use]
    pub fn calm(seed: u64) -> Self {
        Self {
            name: "calm".into(),
            seed,
            sensor: SensorFaults::NONE,
            writes: WriteFaults::NONE,
            budget_steps: Vec::new(),
            phase_shifts: Vec::new(),
        }
    }

    /// Telemetry degrades for a long stretch: noise, stale replays, and
    /// hard dropouts on the observations, while enforcement stays
    /// healthy.
    #[must_use]
    pub fn noisy_sensors(seed: u64) -> Self {
        Self {
            name: "noisy-sensors".into(),
            seed,
            sensor: SensorFaults {
                noise_prob: 0.35,
                noise_frac: 0.2,
                stale_prob: 0.15,
                dropout_prob: 0.15,
                window: FaultWindow::new(10, 120),
            },
            writes: WriteFaults::NONE,
            budget_steps: Vec::new(),
            phase_shifts: Vec::new(),
        }
    }

    /// The powercap interface misbehaves: a window where cap writes fail
    /// transiently (retries absorb them) and occasionally permanently
    /// (the transaction rolls back and the node keeps its old caps).
    #[must_use]
    pub fn flaky_writes(seed: u64) -> Self {
        Self {
            name: "flaky-writes".into(),
            seed,
            sensor: SensorFaults::NONE,
            writes: WriteFaults {
                transient_prob: 0.3,
                permanent_prob: 0.08,
                window: FaultWindow::new(10, 100),
            },
            budget_steps: Vec::new(),
            phase_shifts: Vec::new(),
        }
    }

    /// The cluster manager re-negotiates the budget mid-run (cut, deeper
    /// cut, restore) and the application changes character once — no
    /// sensor or write faults, isolating the re-convergence machinery.
    #[must_use]
    pub fn budget_storm(seed: u64) -> Self {
        Self {
            name: "budget-storm".into(),
            seed,
            sensor: SensorFaults::NONE,
            writes: WriteFaults::NONE,
            budget_steps: vec![
                BudgetStep { at: 40, factor: 0.8 },
                BudgetStep { at: 80, factor: 0.7 },
                BudgetStep { at: 120, factor: 1.0 },
            ],
            phase_shifts: vec![PhaseShift {
                at: 60,
                bench: "dgemm".into(),
            }],
        }
    }

    /// Everything at once. Budget steps are deliberately placed *outside*
    /// the write-fault window: a budget cut that lands in the same tick
    /// as a permanent write failure leaves an irreducible violation
    /// window (the rollback restores caps that were only compliant with
    /// the *old* budget), and shipped plans must hold the budget
    /// invariant at every seed, not most of them. The adversarial
    /// overlap is exercised separately by the property tests.
    #[must_use]
    pub fn everything(seed: u64) -> Self {
        Self {
            name: "everything".into(),
            seed,
            sensor: SensorFaults {
                noise_prob: 0.3,
                noise_frac: 0.15,
                stale_prob: 0.1,
                dropout_prob: 0.1,
                window: FaultWindow::new(10, 60),
            },
            writes: WriteFaults {
                transient_prob: 0.25,
                permanent_prob: 0.08,
                window: FaultWindow::new(20, 70),
            },
            budget_steps: vec![
                BudgetStep { at: 80, factor: 0.75 },
                BudgetStep { at: 120, factor: 1.0 },
            ],
            phase_shifts: vec![PhaseShift {
                at: 60,
                bench: "dgemm".into(),
            }],
        }
    }

    /// Look up a canned plan by name (see [`NAMES`]).
    #[must_use]
    pub fn by_name(name: &str, seed: u64) -> Option<Self> {
        match name {
            "calm" => Some(Self::calm(seed)),
            "noisy-sensors" => Some(Self::noisy_sensors(seed)),
            "flaky-writes" => Some(Self::flaky_writes(seed)),
            "budget-storm" => Some(Self::budget_storm(seed)),
            "everything" => Some(Self::everything(seed)),
            _ => None,
        }
    }

    /// One-line description of a preset, for `pbc faults list`.
    #[must_use]
    pub fn describe(name: &str) -> Option<&'static str> {
        match name {
            "calm" => Some("no faults; the control run"),
            "noisy-sensors" => Some("perf readings jittered, spiked, dropped, and frozen"),
            "flaky-writes" => Some("cap writes fail stochastically; transactions roll back"),
            "budget-storm" => Some("the budget steps up and down mid-run"),
            "everything" => Some("all of it at once, plus a phase shift"),
            _ => None,
        }
    }

    /// The tick after which the plan injects nothing: windows closed,
    /// all scheduled events fired. The harness uses it to check the loop
    /// re-converges once faults clear.
    #[must_use]
    pub fn quiet_after(&self) -> usize {
        let mut t = self.sensor.window.until.max(self.writes.window.until);
        for s in &self.budget_steps {
            t = t.max(s.at + 1);
        }
        for s in &self.phase_shifts {
            t = t.max(s.at + 1);
        }
        t
    }

    /// Validate probabilities, windows, and schedules.
    #[must_use = "an invalid plan must not be run"]
    pub fn validate(&self) -> Result<()> {
        let probs = [
            ("sensor.noise_prob", self.sensor.noise_prob),
            ("sensor.stale_prob", self.sensor.stale_prob),
            ("sensor.dropout_prob", self.sensor.dropout_prob),
            ("writes.transient_prob", self.writes.transient_prob),
            ("writes.permanent_prob", self.writes.permanent_prob),
        ];
        for (what, p) in probs {
            if !(0.0..=1.0).contains(&p) {
                return Err(PbcError::InvalidInput(format!(
                    "{}: {what} = {p} is not a probability",
                    self.name
                )));
            }
        }
        let sensor_sum =
            self.sensor.noise_prob + self.sensor.stale_prob + self.sensor.dropout_prob;
        if sensor_sum > 1.0 {
            return Err(PbcError::InvalidInput(format!(
                "{}: sensor fault probabilities sum to {sensor_sum} > 1",
                self.name
            )));
        }
        if self.writes.transient_prob + self.writes.permanent_prob > 1.0 {
            return Err(PbcError::InvalidInput(format!(
                "{}: write fault probabilities sum past 1",
                self.name
            )));
        }
        if !(0.0..=1.0).contains(&self.sensor.noise_frac) {
            return Err(PbcError::InvalidInput(format!(
                "{}: noise_frac {} out of [0, 1]",
                self.name, self.sensor.noise_frac
            )));
        }
        for s in &self.budget_steps {
            if !s.factor.is_finite() || s.factor <= 0.0 {
                return Err(PbcError::InvalidInput(format!(
                    "{}: budget factor {} at tick {} must be positive",
                    self.name, s.factor, s.at
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_are_half_open() {
        let w = FaultWindow::new(10, 20);
        assert!(!w.active(9));
        assert!(w.active(10));
        assert!(w.active(19));
        assert!(!w.active(20));
        assert!(FaultWindow::NEVER.is_empty());
        assert!(!FaultWindow::NEVER.active(0));
    }

    #[test]
    fn every_named_plan_resolves_and_validates() {
        for name in NAMES {
            let plan = FaultPlan::by_name(name, 42).unwrap();
            assert_eq!(plan.name, name);
            assert_eq!(plan.validate(), Ok(()));
        }
        assert!(FaultPlan::by_name("nope", 1).is_none());
    }

    /// The seed-independence of the budget invariant rests on this:
    /// shipped plans never arm write faults at a tick where the budget
    /// steps.
    #[test]
    fn shipped_plans_never_step_budget_inside_a_write_window() {
        for name in NAMES {
            let plan = FaultPlan::by_name(name, 1).unwrap();
            for step in &plan.budget_steps {
                assert!(
                    !plan.writes.window.active(step.at),
                    "{name}: budget step at {} inside write window",
                    step.at
                );
            }
        }
    }

    #[test]
    fn quiet_after_covers_all_activity() {
        let plan = FaultPlan::everything(7);
        let q = plan.quiet_after();
        assert_eq!(q, 121); // last budget step at 120
        assert!(q > plan.sensor.window.until);
        assert!(q > plan.writes.window.until);
        assert_eq!(FaultPlan::calm(7).quiet_after(), 0);
    }

    #[test]
    fn validation_rejects_garbage() {
        let mut plan = FaultPlan::noisy_sensors(1);
        plan.sensor.noise_prob = 1.5;
        assert!(plan.validate().is_err());
        let mut plan = FaultPlan::noisy_sensors(1);
        plan.sensor.noise_prob = 0.6;
        plan.sensor.stale_prob = 0.3;
        plan.sensor.dropout_prob = 0.2;
        assert!(plan.validate().is_err(), "sum > 1 must be rejected");
        let mut plan = FaultPlan::budget_storm(1);
        plan.budget_steps[0].factor = -0.5;
        assert!(plan.validate().is_err());
        let mut plan = FaultPlan::budget_storm(1);
        plan.budget_steps[0].factor = f64::NAN;
        assert!(plan.validate().is_err());
    }
}
