//! The chaos harness: run a [`FaultPlan`] against the full coordination
//! loop and report whether it survived.
//!
//! One run wires together everything the plan can hurt:
//!
//! * a hardened [`pbc_core::OnlineCoordinator`] proposing splits,
//! * the transactional [`pbc_rapl::enforce_with`] path programming them
//!   into a **real mock sysfs tree** (actual files, actual read-back —
//!   the enforcement code under test is the shipping code),
//! * the steady-state solver producing the node's true operating point
//!   under whatever caps are *actually* programmed (rolled-back
//!   transactions leave the node on its old caps, and the solver
//!   honours that),
//! * the [`FaultInjector`] corrupting what the coordinator observes and
//!   which cap writes land.
//!
//! Survival means two things, checked every epoch: the **enforced**
//! allocation (read back from the tree, not trusted from the caller)
//! never ends an epoch above the live budget, and the search converges
//! once the plan goes quiet. An over-budget read-back — possible only
//! when a rollback restore itself fails — triggers an emergency clamp:
//! best-effort, *decrease-only* per-domain writes, which can never make
//! things worse no matter which of them fail.

use crate::inject::{write_key, FaultInjector, InjectionTally, WriteFault};
use crate::plan::FaultPlan;
use pbc_core::{BudgetOutcome, ObservationOutcome, OnlineConfig, OnlineCoordinator};
use pbc_platform::{NodeSpec, Platform};
use pbc_powersim::solve;
use pbc_rapl::{current_allocation, enforce_with, mock, RaplDomain, RaplSysfs, RetryPolicy};
use pbc_trace::names;
use pbc_types::{PbcError, PowerAllocation, Result, Watts};
use pbc_workloads::by_name;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Tolerance on budget comparisons (enforcement quantizes to µW).
const EPS_W: f64 = 1e-6;
/// Emergency-clamp rounds per epoch before conceding a violation.
const CLAMP_ROUNDS: u64 = 3;
/// Key salt separating clamp-round decision streams from each other and
/// from the main transaction's.
const CLAMP_SALT: u64 = 0xC1A3_0000_0000_0001;

/// The survival report for one chaos run. Field-for-field equality is
/// meaningful: two runs of the same plan at the same seed produce
/// identical reports (the replay guarantee).
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosReport {
    /// Plan name.
    pub plan: String,
    /// Plan seed.
    pub seed: u64,
    /// Epochs driven.
    pub epochs: usize,
    /// Budget at the start.
    pub budget_initial: Watts,
    /// Budget at the end (after any steps).
    pub budget_final: Watts,
    /// Per-kind injection counts.
    pub tally: InjectionTally,
    /// Scheduled budget steps applied.
    pub budget_steps: u64,
    /// Scheduled phase shifts applied.
    pub phase_shifts: u64,
    /// Enforcement transactions attempted.
    pub enforce_attempts: u64,
    /// Cap-write retries consumed.
    pub enforce_retries: u64,
    /// Transactions rolled back. Equals `enforce_permanent_failures` by
    /// the transactional contract.
    pub enforce_rollbacks: u64,
    /// Cap writes that exhausted every retry.
    pub enforce_permanent_failures: u64,
    /// Rollback restores that themselves failed.
    pub enforce_rollback_errors: u64,
    /// Observations the coordinator rejected (NaN/out-of-range/stale).
    pub rejected_observations: u64,
    /// Watchdog trips to the fallback allocation.
    pub fallbacks: u64,
    /// Emergency decrease-only clamps after an over-budget read-back.
    pub clamps: u64,
    /// Epochs that *ended* with enforced caps above the live budget.
    pub budget_violations: u64,
    /// Highest enforced total observed at any epoch end.
    pub max_enforced_total: Watts,
    /// Worst overdraw (enforced total minus live budget) at any epoch
    /// end; negative when the node never ended an epoch over budget.
    pub max_overdraw: Watts,
    /// Did the search settle by the end of the run?
    pub converged: bool,
    /// The split the search settled on.
    pub final_alloc: PowerAllocation,
    /// Solver performance of the final split under the final workload.
    pub final_perf: f64,
}

impl ChaosReport {
    /// The run survived: the budget invariant held every epoch and the
    /// search converged once the plan went quiet.
    #[must_use]
    pub fn survived(&self) -> bool {
        self.budget_violations == 0 && self.converged
    }
}

impl fmt::Display for ChaosReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "chaos survival report — plan '{}' (seed {}), {} epochs @ {:.1} W",
            self.plan,
            self.seed,
            self.epochs,
            self.budget_initial.value()
        )?;
        writeln!(
            f,
            "  faults injected: {} (noise {}, stale {}, dropout {}, transient writes {}, permanent writes {})",
            self.tally.injected(),
            self.tally.noise,
            self.tally.stale,
            self.tally.dropout,
            self.tally.write_transient,
            self.tally.write_permanent
        )?;
        writeln!(
            f,
            "  scheduled: {} budget step(s), {} phase shift(s); final budget {:.1} W",
            self.budget_steps,
            self.phase_shifts,
            self.budget_final.value()
        )?;
        writeln!(
            f,
            "  enforcement: {} transactions, {} retries, {} rollbacks (= {} permanent failures), {} failed restores",
            self.enforce_attempts,
            self.enforce_retries,
            self.enforce_rollbacks,
            self.enforce_permanent_failures,
            self.enforce_rollback_errors
        )?;
        writeln!(
            f,
            "  coordinator: {} rejected observation(s), {} fallback(s)",
            self.rejected_observations, self.fallbacks
        )?;
        writeln!(
            f,
            "  budget invariant: {} violation(s), {} emergency clamp(s), max enforced {:.1} W (overdraw {:+.1} W)",
            self.budget_violations,
            self.clamps,
            self.max_enforced_total.value(),
            self.max_overdraw.value()
        )?;
        write!(
            f,
            "  outcome: {} at {:.1}/{:.1} W, perf {:.3} — {}",
            if self.converged { "converged" } else { "NOT converged" },
            self.final_alloc.proc.value(),
            self.final_alloc.mem.value(),
            self.final_perf,
            if self.survived() { "SURVIVED" } else { "DIED" }
        )
    }
}

/// Monotonic suffix so concurrent runs in one process get distinct mock
/// trees.
static RUN_ID: AtomicUsize = AtomicUsize::new(0);

/// Run `plan` against `platform`/`bench` at `budget` for `epochs`
/// coordination epochs, and report survival. Only host (CPU + DRAM)
/// platforms are supported — the harness drives the RAPL enforcement
/// path for real against a mock sysfs tree.
#[must_use = "the survival report is the whole point of a chaos run"]
pub fn run_chaos(
    platform: &Platform,
    bench: &str,
    budget: Watts,
    plan: &FaultPlan,
    epochs: usize,
) -> Result<ChaosReport> {
    plan.validate()?;
    if matches!(platform.spec, NodeSpec::Gpu(_)) {
        return Err(PbcError::InvalidInput(
            "chaos harness drives the host (RAPL) enforcement path; GPU platforms have no \
             sysfs powercap domains to enforce against"
                .into(),
        ));
    }
    if !budget.is_valid() || budget.value() <= 0.0 {
        return Err(PbcError::InvalidInput(format!(
            "budget must be positive, got {budget}"
        )));
    }
    let base = by_name(bench)
        .ok_or_else(|| PbcError::NotFound(format!("unknown benchmark '{bench}'")))?;
    let mut demand = base.demand;
    // Resolve every scheduled phase shift up front so a typo fails the
    // run loudly at tick 0, not silently mid-storm.
    let mut shifted: HashMap<usize, _> = HashMap::new();
    for shift in &plan.phase_shifts {
        let b = by_name(&shift.bench).ok_or_else(|| {
            PbcError::NotFound(format!(
                "phase shift at tick {} names unknown benchmark '{}'",
                shift.at, shift.bench
            ))
        })?;
        shifted.insert(shift.at, b.demand);
    }

    // A private mock powercap tree: the enforcement path writes real
    // files and trusts only what it reads back.
    let root = std::env::temp_dir().join(format!(
        "pbc-chaos-{}-{}-{}",
        plan.name,
        std::process::id(),
        RUN_ID.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).map_err(|e| PbcError::Io(format!("{}: {e}", root.display())))?;
    mock::sysfs_tree(&root, 2, 1)?;
    let rapl = RaplSysfs::discover_at(&root)?;

    let policy = RetryPolicy::no_backoff();
    let initial = PowerAllocation::split(budget, 0.5);
    // The node starts compliant: program the initial split cleanly, as a
    // node that was running under its budget before the storm begins.
    enforce_with(&rapl, initial, &policy, &mut |d, w| d.set_power_limit(w)).into_result()?;

    // The coordinator knows the platform floor, so a fault plan that
    // steps the budget below it gets a refusal instead of a poisoned
    // search (the shipped plans never go that low, but custom ones can).
    let config = OnlineConfig {
        min_budget: platform.min_node_power(),
        ..OnlineConfig::default()
    };
    let mut coordinator = OnlineCoordinator::new(budget, initial, config);
    let mut injector = FaultInjector::new(plan.clone());
    let mut current_budget = budget;

    let mut report = ChaosReport {
        plan: plan.name.clone(),
        seed: plan.seed,
        epochs,
        budget_initial: budget,
        budget_final: budget,
        tally: InjectionTally::default(),
        budget_steps: 0,
        phase_shifts: 0,
        enforce_attempts: 0,
        enforce_retries: 0,
        enforce_rollbacks: 0,
        enforce_permanent_failures: 0,
        enforce_rollback_errors: 0,
        rejected_observations: 0,
        fallbacks: 0,
        clamps: 0,
        budget_violations: 0,
        max_enforced_total: Watts::ZERO,
        max_overdraw: Watts::new(f64::NEG_INFINITY),
        converged: false,
        final_alloc: initial,
        final_perf: 0.0,
    };

    for tick in 0..epochs {
        pbc_trace::counter(names::CHAOS_EPOCHS).incr();
        // Scheduled events first: the budget and workload in force
        // *during* this epoch.
        for step in &plan.budget_steps {
            if step.at == tick {
                let next = budget * step.factor;
                match coordinator.set_budget(next) {
                    BudgetOutcome::Applied | BudgetOutcome::Unchanged => {
                        // Only a budget the coordinator actually took
                        // becomes the one violations are judged against.
                        current_budget = next;
                    }
                    BudgetOutcome::RejectedNonFinite
                    | BudgetOutcome::RejectedBelowMinimum => {}
                }
                report.budget_steps += 1;
                pbc_trace::counter(names::FAULTS_INJECTED).incr();
                pbc_trace::counter(names::FAULTS_BUDGET_STEPS).incr();
            }
        }
        if let Some(d) = shifted.get(&tick) {
            demand = d.clone();
            report.phase_shifts += 1;
            pbc_trace::counter(names::FAULTS_INJECTED).incr();
            pbc_trace::counter(names::FAULTS_PHASE_SHIFTS).incr();
        }

        // Propose and enforce, with the injector deciding which cap
        // writes land. Decisions are memoized per write key so retries
        // of one write see one consistent fate.
        let alloc = coordinator.next_allocation();
        let enf = {
            let mut decisions: HashMap<u64, WriteFault> = HashMap::new();
            let mut attempts: HashMap<u64, u32> = HashMap::new();
            let inj = &mut injector;
            enforce_with(&rapl, alloc, &policy, &mut |d, w| {
                let key = write_key(&d.name, w);
                let fault = *decisions
                    .entry(key)
                    .or_insert_with(|| inj.write_fault(tick, key));
                let n = attempts.entry(key).or_insert(0);
                *n += 1;
                match fault {
                    WriteFault::None => d.set_power_limit(w),
                    WriteFault::Transient { failing_attempts } if *n <= failing_attempts => {
                        Err(PbcError::Io(format!("injected transient failure on {}", d.name)))
                    }
                    WriteFault::Transient { .. } => d.set_power_limit(w),
                    WriteFault::Permanent => {
                        Err(PbcError::Io(format!("injected permanent failure on {}", d.name)))
                    }
                }
            })
        };
        report.enforce_attempts += 1;
        report.enforce_retries += u64::from(enf.retries);
        report.enforce_rollback_errors += u64::from(enf.rollback_errors);
        if enf.rolled_back {
            report.enforce_rollbacks += 1;
            report.enforce_permanent_failures += 1;
        }

        // Trust only the tree: the node runs under what is *programmed*,
        // which after a rollback is the previous allocation.
        let mut enforced = current_allocation(&rapl)?;
        if enforced.total().value() > current_budget.value() + EPS_W {
            // Possible only when a rollback restore itself failed and
            // left a mixed allocation standing. Clamp, decrease-only.
            report.clamps += 1;
            pbc_trace::counter(names::CHAOS_CLAMPS).incr();
            for round in 0..CLAMP_ROUNDS {
                clamp_decrease_only(&rapl, current_budget, &mut injector, tick, round, &policy);
                enforced = current_allocation(&rapl)?;
                if enforced.total().value() <= current_budget.value() + EPS_W {
                    break;
                }
            }
        }
        let total = enforced.total();
        report.max_enforced_total = report.max_enforced_total.max(total);
        report.max_overdraw = report.max_overdraw.max(total - current_budget);
        if total.value() > current_budget.value() + EPS_W {
            report.budget_violations += 1;
            pbc_trace::counter(names::CHAOS_BUDGET_VIOLATIONS).incr();
        }

        // The node runs the epoch under the enforced caps; the
        // coordinator sees a (possibly corrupted) view of the result.
        let op = solve(platform, &demand, enforced)?;
        let seen = injector.corrupt_observation(tick, &op);
        match coordinator.observe(&seen) {
            ObservationOutcome::Used => {}
            ObservationOutcome::TrippedWatchdog => report.fallbacks += 1,
            ObservationOutcome::RejectedNonFinite
            | ObservationOutcome::RejectedOutOfRange
            | ObservationOutcome::RejectedStale => report.rejected_observations += 1,
        }
    }

    report.tally = injector.tally();
    report.budget_final = current_budget;
    report.converged = coordinator.converged();
    report.final_alloc = coordinator.best();
    report.final_perf = solve(platform, &demand, report.final_alloc)?.perf_rel;
    let _ = std::fs::remove_dir_all(&root);
    Ok(report)
}

/// Best-effort emergency clamp: walk every domain down to its share of
/// `budget` (never up), one direct write each, honouring the injector's
/// per-write fault decisions. Because no write ever increases a cap, a
/// failed round cannot make the overdraw worse, and each round draws
/// fresh (salted) decisions so a transiently cursed domain recovers.
fn clamp_decrease_only(
    rapl: &RaplSysfs,
    budget: Watts,
    injector: &mut FaultInjector,
    tick: usize,
    round: u64,
    policy: &RetryPolicy,
) {
    let packages: Vec<&RaplDomain> = rapl.packages().collect();
    let drams: Vec<&RaplDomain> = rapl.dram().collect();
    if packages.is_empty() || drams.is_empty() {
        return;
    }
    // Halve the budget between the component classes — the fallback
    // shape, chosen for safety rather than performance.
    let per_pkg = budget * 0.5 / packages.len() as f64;
    let per_dram = budget * 0.5 / drams.len() as f64;
    for (list, class_cap) in [(&packages, per_pkg), (&drams, per_dram)] {
        for d in list.iter() {
            let Ok(current) = d.power_limit() else { continue };
            if current.value() <= class_cap.value() + EPS_W {
                continue; // already at or below its class cap: never raise it.
            }
            let key = write_key(&d.name, class_cap) ^ CLAMP_SALT.wrapping_add(round);
            let fault = injector.write_fault(tick, key);
            let attempts = policy.max_attempts.max(1);
            for attempt in 1..=attempts {
                let ok = match fault {
                    WriteFault::Permanent => false,
                    WriteFault::Transient { failing_attempts } if attempt <= failing_attempts => {
                        false
                    }
                    _ => d.set_power_limit(class_cap).is_ok(),
                };
                if ok {
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbc_platform::presets::{ivybridge, titan_xp};

    #[test]
    fn calm_plan_survives_and_converges() {
        let report = run_chaos(
            &ivybridge(),
            "stream",
            Watts::new(208.0),
            &FaultPlan::calm(42),
            200,
        )
        .unwrap();
        assert!(report.survived(), "{report}");
        assert_eq!(report.tally.injected(), 0);
        assert_eq!(report.enforce_rollbacks, 0);
        assert_eq!(report.clamps, 0);
        assert!(report.final_perf > 0.8, "{report}");
    }

    #[test]
    fn replay_is_bit_identical() {
        let plan = FaultPlan::everything(1337);
        let a = run_chaos(&ivybridge(), "stream", Watts::new(208.0), &plan, 200).unwrap();
        let b = run_chaos(&ivybridge(), "stream", Watts::new(208.0), &plan, 200).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn every_named_plan_survives_the_default_scenario() {
        for name in crate::plan::NAMES {
            let plan = FaultPlan::by_name(name, 42).unwrap();
            let report =
                run_chaos(&ivybridge(), "stream", Watts::new(208.0), &plan, 200).unwrap();
            assert!(report.survived(), "{name}: {report}");
            assert_eq!(report.budget_violations, 0, "{name}: {report}");
        }
    }

    #[test]
    fn rollbacks_track_permanent_failures_exactly() {
        let report = run_chaos(
            &ivybridge(),
            "stream",
            Watts::new(208.0),
            &FaultPlan::flaky_writes(7),
            200,
        )
        .unwrap();
        assert!(report.tally.write_permanent > 0, "plan must actually bite: {report}");
        assert_eq!(report.enforce_rollbacks, report.enforce_permanent_failures);
        assert!(report.enforce_retries > 0);
        assert_eq!(report.budget_violations, 0, "{report}");
    }

    #[test]
    fn gpu_platforms_are_rejected() {
        let err = run_chaos(
            &titan_xp(),
            "sgemm",
            Watts::new(250.0),
            &FaultPlan::calm(1),
            10,
        )
        .unwrap_err();
        assert!(matches!(err, PbcError::InvalidInput(_)));
    }

    #[test]
    fn unknown_benchmarks_fail_loudly() {
        let err = run_chaos(
            &ivybridge(),
            "nope",
            Watts::new(208.0),
            &FaultPlan::calm(1),
            10,
        )
        .unwrap_err();
        assert!(matches!(err, PbcError::NotFound(_)));
        let mut plan = FaultPlan::calm(1);
        plan.phase_shifts.push(crate::plan::PhaseShift {
            at: 5,
            bench: "bogus".into(),
        });
        let err = run_chaos(&ivybridge(), "stream", Watts::new(208.0), &plan, 10).unwrap_err();
        assert!(matches!(err, PbcError::NotFound(_)));
    }
}
