//! # pbc-faults
//!
//! Deterministic fault injection for the coordination loop, and the
//! chaos harness that proves the loop survives it.
//!
//! The paper treats the node budget `P_b` as a hard constraint (§2.2);
//! the rest of this workspace spends its effort finding the best split
//! *under* that constraint. This crate attacks the assumptions the happy
//! path leans on: that every sensor read is fresh and finite, that every
//! powercap write lands, and that the budget never moves mid-run. Real
//! power-bounded deployments violate all three.
//!
//! The injection layer is **deterministic by construction**: a
//! [`FaultPlan`] is pure data (windows, probabilities, scheduled steps)
//! plus a seed, and every random draw comes from a [`pbc_types::rng::XorShift64Star`]
//! derived from `(seed, tick, stream)` — never from a shared generator
//! whose draw order could differ between runs. Replaying a plan at the
//! same seed reproduces every fault bit-identically, which is what makes
//! a chaos failure debuggable.
//!
//! What can be injected:
//!
//! * **sensor faults** on [`pbc_powersim::NodeOperatingPoint`]
//!   observations — multiplicative noise, stale (previous-epoch)
//!   replays, and dropouts that surface as non-finite or absurd
//!   surrogates ([`FaultInjector::corrupt_observation`]);
//! * **enforcement write faults** — transient failures a retry absorbs,
//!   and permanent failures that force the transactional
//!   [`pbc_rapl::enforce_with`] path to roll back
//!   ([`FaultInjector::write_fault`]);
//! * **budget steps** — `P_b` re-negotiated mid-run, exercising
//!   `OnlineCoordinator::set_budget` re-convergence;
//! * **workload phase shifts** — the running application changes
//!   character, invalidating everything the search has learned.
//!
//! The [`chaos`] module wires a plan against the simulator, a mock RAPL
//! sysfs tree, and a hardened [`pbc_core::OnlineCoordinator`], and
//! returns a [`chaos::ChaosReport`] survival report. Everything emits
//! through `pbc-trace` (`faults.*`, `enforce.*`, `online.*`, `chaos.*`)
//! so resilience is observable, not asserted.

pub mod chaos;
pub mod clock;
pub mod fleet;
pub mod inject;
pub mod plan;

pub use chaos::{run_chaos, ChaosReport};
pub use clock::FaultClock;
pub use fleet::{
    FleetFaultPlan, FleetWriteFaults, NodeFaults, ReportFaults, FLEET_PLAN_NAMES,
};
pub use inject::{decision_rng, FaultInjector, InjectionTally, WriteFault};
pub use plan::{BudgetStep, FaultPlan, FaultWindow, PhaseShift, SensorFaults, WriteFaults};
