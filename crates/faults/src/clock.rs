//! The fault clock: the single source of "when" for a chaos scenario.
//!
//! Every injection decision is keyed on the clock's tick (plus the plan
//! seed and a per-stream constant), never on wall time or a shared
//! generator's draw order. Two runs of the same plan therefore make the
//! same decisions at the same ticks — bit-identical replay — regardless
//! of how many random draws any component consumed in between.

/// A monotone tick counter driving a fault scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultClock {
    tick: usize,
}

impl FaultClock {
    /// A clock at tick zero.
    #[must_use]
    pub const fn new() -> Self {
        Self { tick: 0 }
    }

    /// The current tick.
    #[must_use]
    pub const fn tick(&self) -> usize {
        self.tick
    }

    /// Advance one tick, returning the tick that just *completed* (so
    /// the first advance returns 0: decisions for epoch `k` key on `k`).
    pub fn advance(&mut self) -> usize {
        let now = self.tick;
        self.tick += 1;
        now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_monotonically_from_zero() {
        let mut c = FaultClock::new();
        assert_eq!(c.tick(), 0);
        assert_eq!(c.advance(), 0);
        assert_eq!(c.advance(), 1);
        assert_eq!(c.tick(), 2);
        assert_eq!(FaultClock::default(), FaultClock::new());
    }
}
