//! The injector: turns a [`FaultPlan`] into concrete corruptions.
//!
//! Determinism contract: every decision is drawn from a fresh
//! [`XorShift64Star`] seeded by `plan.seed ⊕ hash(tick) ⊕ stream`, where
//! `stream` separates decision kinds (sensor vs write) and, for writes,
//! folds in a key identifying the individual write. No generator state
//! is carried across decisions, so the outcome at tick `k` does not
//! depend on how many draws happened before it — replays are
//! bit-identical even if the surrounding code changes its draw order.

use crate::plan::FaultPlan;
use pbc_powersim::{NodeOperatingPoint, SimFault};
use pbc_trace::names;
use pbc_types::rng::XorShift64Star;
use pbc_types::Watts;

/// Weyl-ish odd constant spreading the tick across the seed space.
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;
/// Stream constant for sensor decisions.
const STREAM_SENSOR: u64 = 0x5EED_0001;
/// Stream constant for enforcement-write decisions.
const STREAM_WRITE: u64 = 0x5EED_0002;
/// Stream constant for the in-engine power-telemetry hook.
const STREAM_ENGINE: u64 = 0x5EED_0003;

/// What the injector decided for one enforcement cap write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteFault {
    /// The write goes through untouched.
    None,
    /// The first `failing_attempts` attempts fail, then it lands —
    /// capped-backoff retries absorb it.
    Transient {
        /// How many attempts fail before one succeeds (1 or 2, both
        /// under the default retry budget).
        failing_attempts: u32,
    },
    /// Every attempt fails; the enforcement transaction must roll back.
    Permanent,
}

/// Per-kind injection counts for one scenario run (local to the
/// injector; the global `faults.*` trace counters aggregate across
/// runs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InjectionTally {
    /// Noise-perturbed observations.
    pub noise: u64,
    /// Stale-replay observations.
    pub stale: u64,
    /// Dropped-out observations (garbage surrogate emitted).
    pub dropout: u64,
    /// Transiently failing cap writes.
    pub write_transient: u64,
    /// Permanently failing cap writes.
    pub write_permanent: u64,
}

impl InjectionTally {
    /// Total faults injected, all kinds.
    #[must_use]
    pub fn injected(&self) -> u64 {
        self.noise + self.stale + self.dropout + self.write_transient + self.write_permanent
    }
}

/// A fresh generator for one decision, keyed on `(seed, tick, stream)`
/// with an optional per-entity `salt` (node index, write key, retry
/// attempt) folded in. This is the determinism contract in one place:
/// no generator state crosses decisions, so the outcome at tick `k`
/// never depends on how many draws happened before it. The fleet
/// coordinator keys its crash/straggler/report/write draws through
/// this helper so cluster chaos replays bit-identically at any
/// `PBC_THREADS`.
#[must_use]
pub fn decision_rng(seed: u64, tick: usize, stream: u64, salt: u64) -> XorShift64Star {
    XorShift64Star::new(
        seed ^ (tick as u64).wrapping_mul(GOLDEN) ^ stream ^ salt.wrapping_mul(GOLDEN),
    )
}

/// Stable 64-bit key for one enforcement write (domain × target), used
/// to give each write its own decision stream. FNV-1a over the name
/// bytes, folded with the target in microwatts.
#[must_use]
pub fn write_key(domain: &str, target: Watts) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in domain.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    // Round to the same µW granularity sysfs stores, so a retry of the
    // same logical write maps to the same key.
    let uw = (target.value() * 1e6).round();
    h ^ uw.to_bits()
}

/// Executes a [`FaultPlan`] deterministically.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    /// Last clean operating point, replayed by stale faults.
    last_clean: Option<NodeOperatingPoint>,
    /// Last powers the engine hook reported, replayed by stale faults.
    last_powers: Option<(Watts, Watts)>,
    tally: InjectionTally,
}

impl FaultInjector {
    /// Arm a plan. (Invalid plans are caught by
    /// [`FaultPlan::validate`] — the harness calls it first.)
    #[must_use]
    pub fn new(plan: FaultPlan) -> Self {
        Self {
            plan,
            last_clean: None,
            last_powers: None,
            tally: InjectionTally::default(),
        }
    }

    /// The plan being executed.
    #[must_use]
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// What has been injected so far in this run.
    #[must_use]
    pub fn tally(&self) -> InjectionTally {
        self.tally
    }

    fn rng_at(&self, tick: usize, stream: u64) -> XorShift64Star {
        XorShift64Star::new(self.plan.seed ^ (tick as u64).wrapping_mul(GOLDEN) ^ stream)
    }

    fn count(&self, name: &'static str) {
        pbc_trace::counter(names::FAULTS_INJECTED).incr();
        pbc_trace::counter(name).incr();
    }

    /// Corrupt (or pass through) the operating point observed at `tick`.
    /// The true point is remembered only when it is reported clean, so a
    /// stale fault replays what the consumer last *believed*, matching
    /// how a stuck telemetry pipe behaves.
    pub fn corrupt_observation(
        &mut self,
        tick: usize,
        op: &NodeOperatingPoint,
    ) -> NodeOperatingPoint {
        let s = self.plan.sensor;
        if !s.window.active(tick) {
            self.last_clean = Some(*op);
            return *op;
        }
        let mut rng = self.rng_at(tick, STREAM_SENSOR);
        let u = rng.next_f64();
        if u < s.dropout_prob {
            self.tally.dropout += 1;
            self.count(names::FAULTS_SENSOR_DROPOUT);
            let mut bad = *op;
            match rng.below(3) {
                0 => bad.perf_rel = f64::NAN,
                1 => bad.perf_rel = -1.0,
                _ => bad.perf_rel = 1e9,
            }
            return bad;
        }
        if u < s.dropout_prob + s.stale_prob {
            if let Some(prev) = self.last_clean {
                self.tally.stale += 1;
                self.count(names::FAULTS_SENSOR_STALE);
                return prev;
            }
        }
        if u < s.dropout_prob + s.stale_prob + s.noise_prob {
            self.tally.noise += 1;
            self.count(names::FAULTS_SENSOR_NOISE);
            let mut noisy = *op;
            noisy.perf_rel *= rng.range_f64(1.0 - s.noise_frac, 1.0 + s.noise_frac);
            noisy.proc_power = noisy.proc_power * rng.range_f64(1.0 - s.noise_frac, 1.0 + s.noise_frac);
            noisy.mem_power = noisy.mem_power * rng.range_f64(1.0 - s.noise_frac, 1.0 + s.noise_frac);
            return noisy;
        }
        self.last_clean = Some(*op);
        *op
    }

    /// Decide the fate of one enforcement cap write at `tick`. `key`
    /// identifies the write (see [`write_key`]) so each domain write in
    /// a transaction gets an independent decision, and a *retry* of the
    /// same write sees the same decision.
    #[must_use]
    pub fn write_fault(&mut self, tick: usize, key: u64) -> WriteFault {
        let w = self.plan.writes;
        if !w.window.active(tick) {
            return WriteFault::None;
        }
        let mut rng = self.rng_at(tick, STREAM_WRITE ^ key.wrapping_mul(GOLDEN));
        let u = rng.next_f64();
        if u < w.permanent_prob {
            self.tally.write_permanent += 1;
            self.count(names::FAULTS_WRITE_PERMANENT);
            return WriteFault::Permanent;
        }
        if u < w.permanent_prob + w.transient_prob {
            self.tally.write_transient += 1;
            self.count(names::FAULTS_WRITE_TRANSIENT);
            let failing = 1 + rng.below(2);
            return WriteFault::Transient {
                failing_attempts: failing as u32,
            };
        }
        WriteFault::None
    }
}

/// The `pbc-powersim` wiring: the injector doubles as the discrete-time
/// engine's [`SimFault`] hook, corrupting the per-tick power telemetry
/// the RAPL/throttle controllers average over. Dropout reads as a dead
/// sensor (0 W — the controller believes it has headroom), stale replays
/// the previous reading, noise perturbs it.
impl SimFault for FaultInjector {
    fn observe_power(&mut self, k: usize, proc: Watts, mem: Watts) -> (Watts, Watts) {
        let s = self.plan.sensor;
        if !s.window.active(k) {
            self.last_powers = Some((proc, mem));
            return (proc, mem);
        }
        let mut rng = self.rng_at(k, STREAM_ENGINE);
        let u = rng.next_f64();
        if u < s.dropout_prob {
            self.tally.dropout += 1;
            self.count(names::FAULTS_SENSOR_DROPOUT);
            return (Watts::ZERO, Watts::ZERO);
        }
        if u < s.dropout_prob + s.stale_prob {
            if let Some(prev) = self.last_powers {
                self.tally.stale += 1;
                self.count(names::FAULTS_SENSOR_STALE);
                return prev;
            }
        }
        if u < s.dropout_prob + s.stale_prob + s.noise_prob {
            self.tally.noise += 1;
            self.count(names::FAULTS_SENSOR_NOISE);
            let p = proc * rng.range_f64(1.0 - s.noise_frac, 1.0 + s.noise_frac);
            let m = mem * rng.range_f64(1.0 - s.noise_frac, 1.0 + s.noise_frac);
            return (p, m);
        }
        self.last_powers = Some((proc, mem));
        (proc, mem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{FaultWindow, SensorFaults};
    use pbc_powersim::{CpuMechanismState, MechanismState};
    use pbc_types::{Bandwidth, PowerAllocation};

    fn op(perf: f64) -> NodeOperatingPoint {
        NodeOperatingPoint {
            alloc: PowerAllocation::new(Watts::new(120.0), Watts::new(88.0)),
            perf_rel: perf,
            proc_power: Watts::new(110.0),
            mem_power: Watts::new(80.0),
            work_rate: perf * 100.0,
            bandwidth: Bandwidth::new(30.0),
            proc_busy: 0.7,
            mechanism: MechanismState::Cpu(CpuMechanismState {
                pstate: 3,
                duty: 1.0,
                cap_unenforceable: false,
            }),
        }
    }

    #[test]
    fn replay_is_bit_identical() {
        let mut a = FaultInjector::new(FaultPlan::noisy_sensors(42));
        let mut b = FaultInjector::new(FaultPlan::noisy_sensors(42));
        for tick in 0..200 {
            let x = a.corrupt_observation(tick, &op(0.8));
            let y = b.corrupt_observation(tick, &op(0.8));
            // Bit-identical, NaN included.
            assert_eq!(x.perf_rel.to_bits(), y.perf_rel.to_bits(), "tick {tick}");
            assert_eq!(x.proc_power.value().to_bits(), y.proc_power.value().to_bits());
            assert_eq!(a.write_fault(tick, 7), b.write_fault(tick, 7));
        }
        assert_eq!(a.tally(), b.tally());
        assert!(a.tally().injected() > 0);
    }

    #[test]
    fn decisions_are_independent_of_draw_order() {
        // Injector B consumes extra decisions for other ticks/keys in
        // between; tick 33's outcome must not move.
        let mut a = FaultInjector::new(FaultPlan::noisy_sensors(7));
        let mut b = FaultInjector::new(FaultPlan::noisy_sensors(7));
        for t in 0..33 {
            // Keep last_clean state aligned: both see the same stream.
            let _ = a.corrupt_observation(t, &op(0.8));
            let _ = b.corrupt_observation(t, &op(0.8));
        }
        let _ = b.write_fault(50, 123); // extra draw, different stream
        let x = a.corrupt_observation(33, &op(0.8));
        let y = b.corrupt_observation(33, &op(0.8));
        assert_eq!(x.perf_rel.to_bits(), y.perf_rel.to_bits());
    }

    #[test]
    fn outside_the_window_nothing_happens() {
        let mut inj = FaultInjector::new(FaultPlan::everything(42));
        let quiet = inj.plan().quiet_after();
        for tick in quiet..quiet + 50 {
            let clean = inj.corrupt_observation(tick, &op(0.9));
            assert_eq!(clean, op(0.9));
            assert_eq!(inj.write_fault(tick, 1), WriteFault::None);
        }
        assert_eq!(inj.tally().injected(), 0);
        // calm injects nothing anywhere.
        let mut calm = FaultInjector::new(FaultPlan::calm(42));
        for tick in 0..100 {
            assert_eq!(calm.corrupt_observation(tick, &op(0.9)), op(0.9));
        }
        assert_eq!(calm.tally().injected(), 0);
    }

    #[test]
    fn dropouts_are_rejectable_garbage() {
        // A dropout-only plan: every in-window observation is garbage of
        // one of the three shapes, all of which the hardened coordinator
        // rejects (non-finite, negative, absurd).
        let plan = FaultPlan {
            sensor: SensorFaults {
                noise_prob: 0.0,
                noise_frac: 0.0,
                stale_prob: 0.0,
                dropout_prob: 1.0,
                window: FaultWindow::new(0, 100),
            },
            ..FaultPlan::calm(9)
        };
        let mut inj = FaultInjector::new(plan);
        let mut shapes = [false; 3];
        for tick in 0..100 {
            let bad = inj.corrupt_observation(tick, &op(0.9));
            if bad.perf_rel.is_nan() {
                shapes[0] = true;
            } else if bad.perf_rel < 0.0 {
                shapes[1] = true;
            } else if bad.perf_rel > 100.0 {
                shapes[2] = true;
            } else {
                panic!("tick {tick}: dropout produced a plausible perf {}", bad.perf_rel);
            }
        }
        assert!(shapes.iter().all(|&s| s), "all three garbage shapes appear");
        assert_eq!(inj.tally().dropout, 100);
    }

    #[test]
    fn stale_replays_the_last_clean_point() {
        let plan = FaultPlan {
            sensor: SensorFaults {
                noise_prob: 0.0,
                noise_frac: 0.0,
                stale_prob: 1.0,
                dropout_prob: 0.0,
                window: FaultWindow::new(5, 10),
            },
            ..FaultPlan::calm(11)
        };
        let mut inj = FaultInjector::new(plan);
        let fresh = op(0.5);
        for tick in 0..5 {
            let _ = inj.corrupt_observation(tick, &fresh);
        }
        // In the window, a *different* true point comes in; the stale
        // fault replays the pre-window one, alloc and all.
        let newer = op(0.9);
        let got = inj.corrupt_observation(5, &newer);
        assert_eq!(got, fresh);
        assert_eq!(inj.tally().stale, 1);
    }

    #[test]
    fn engine_hook_dropout_reads_zero() {
        let plan = FaultPlan {
            sensor: SensorFaults {
                noise_prob: 0.0,
                noise_frac: 0.0,
                stale_prob: 0.0,
                dropout_prob: 1.0,
                window: FaultWindow::new(0, 10),
            },
            ..FaultPlan::calm(3)
        };
        let mut inj = FaultInjector::new(plan);
        let (p, m) = inj.observe_power(0, Watts::new(100.0), Watts::new(50.0));
        assert_eq!(p, Watts::ZERO);
        assert_eq!(m, Watts::ZERO);
        // Outside the window the truth passes through.
        let (p, m) = inj.observe_power(10, Watts::new(100.0), Watts::new(50.0));
        assert!((p.value() - 100.0).abs() < 1e-12);
        assert!((m.value() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn write_keys_distinguish_domains_and_targets() {
        let a = write_key("package-0", Watts::new(55.0));
        let b = write_key("package-1", Watts::new(55.0));
        let c = write_key("package-0", Watts::new(56.0));
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, write_key("package-0", Watts::new(55.0)));
    }
}
