//! Figure 1 — the motivating STREAM experiments.
//!
//! (a) CPU STREAM on the IvyBridge node: per-core bandwidth vs total
//! budget (left) and vs the cross-component split at `P_b` = 208 W
//! (right); the paper reports up to a 30× gap between the best and worst
//! split.
//!
//! (b) GPU STREAM on the Titan XP: total bandwidth vs card cap, and vs the
//! split at 140 W, where the gap is >30 %.

use crate::output::{fmt, sparkline, ExperimentOutput, TextTable};
use pbc_core::{perf_max_curve, sweep_curve, PowerBoundedProblem, DEFAULT_STEP};
use pbc_types::{Result, Watts};
use pbc_platform::presets::{ivybridge, titan_xp};
use pbc_workloads::by_name;

/// Budget grid helper.
pub(crate) fn budget_grid(lo: f64, hi: f64, step: f64) -> Vec<Watts> {
    let mut v = Vec::new();
    let mut b = lo;
    while b <= hi + 1e-9 {
        v.push(Watts::new(b));
        b += step;
    }
    v
}

/// Sweep one budget through [`sweep_curve`], reusing the workload's
/// shared solve memo populated by earlier curve calls.
#[must_use = "the profile or the sweep failure must be inspected"]
pub(crate) fn one_budget_profile(
    problem: &PowerBoundedProblem,
    budget: Watts,
) -> Result<pbc_core::SweepProfile> {
    sweep_curve(problem, &[budget], DEFAULT_STEP)?
        .pop()
        .ok_or_else(|| pbc_types::PbcError::InvalidInput("empty sweep curve".into()))
}

/// Run the Fig. 1 reproduction.
#[must_use = "the experiment outcome carries I/O and solver failures"]
pub fn run() -> Result<ExperimentOutput> {
    let mut out = ExperimentOutput::new(
        "fig1",
        "STREAM under power bounds: perf vs total budget, and vs cross-component split",
    );

    // ---- (a) CPU: per-core GB/s vs budget ----
    let stream = by_name("stream").expect("stream benchmark");
    let cores = ivybridge().cpu().unwrap().total_cores() as f64;
    let tmpl = PowerBoundedProblem::new(ivybridge(), stream.demand.clone(), Watts::new(208.0))?;
    let curve = perf_max_curve(&tmpl, budget_grid(100.0, 300.0, 8.0), DEFAULT_STEP)?;
    let mut t = TextTable::new(
        "CPU STREAM perf_max vs total budget (IvyBridge, GB/s per core)",
        &["P_b (W)", "perf_max (rel)", "GB/s per core", "actual power (W)"],
    );
    let mut series = Vec::new();
    for c in &curve {
        let op = pbc_powersim::solve(&tmpl.platform, &tmpl.workload, c.best_alloc)?;
        let gbps = stream.natural_rate(&op).rate;
        series.push(gbps / cores);
        t.push(vec![
            fmt(c.budget.value()),
            fmt(c.perf_max),
            fmt(gbps / cores),
            fmt(c.actual_power.value()),
        ]);
    }
    out.tables.push(t);
    let mut shape = TextTable::new("CPU perf_max curve shape", &["sparkline"]);
    shape.push(vec![sparkline(&series)]);
    out.tables.push(shape);

    // ---- (a right) CPU: split sweep at 208 W. A single-budget
    // sweep_curve shares the workload's solve memo with the perf_max
    // curve above, so most of these points come out of cache. ----
    let profile = one_budget_profile(&tmpl, Watts::new(208.0))?;
    let mut t = TextTable::new(
        "CPU STREAM splits at P_b = 208 W (IvyBridge)",
        &["P_cpu (W)", "P_mem (W)", "GB/s per core", "CPU actual (W)", "DRAM actual (W)"],
    );
    for pt in &profile.points {
        let gbps = stream.natural_rate(&pt.op).rate;
        t.push(vec![
            fmt(pt.alloc.proc.value()),
            fmt(pt.alloc.mem.value()),
            fmt(gbps / cores),
            fmt(pt.op.proc_power.value()),
            fmt(pt.op.mem_power.value()),
        ]);
    }
    out.tables.push(t);
    let mut summary = TextTable::new(
        "CPU STREAM 208 W summary",
        &["best GB/s/core", "worst GB/s/core", "spread (x)", "paper"],
    );
    let best = profile.best().unwrap();
    let worst = profile.worst().unwrap();
    summary.push(vec![
        fmt(stream.natural_rate(&best.op).rate / cores),
        fmt(stream.natural_rate(&worst.op).rate / cores),
        fmt(profile.spread()),
        "~30x".into(),
    ]);
    out.tables.push(summary);

    // ---- (b) GPU: bandwidth vs card cap ----
    let gstream = by_name("gpu-stream").expect("gpu-stream benchmark");
    let gtmpl = PowerBoundedProblem::new(titan_xp(), gstream.demand.clone(), Watts::new(140.0))?;
    let curve = perf_max_curve(&gtmpl, budget_grid(125.0, 300.0, 7.0), DEFAULT_STEP)?;
    let mut t = TextTable::new(
        "GPU STREAM perf_max vs card cap (Titan XP, total GB/s)",
        &["cap (W)", "perf_max (rel)", "GB/s", "actual power (W)"],
    );
    let mut series = Vec::new();
    for c in &curve {
        let op = pbc_powersim::solve(&gtmpl.platform, &gtmpl.workload, c.best_alloc)?;
        let gbps = gstream.natural_rate(&op).rate;
        series.push(gbps);
        t.push(vec![
            fmt(c.budget.value()),
            fmt(c.perf_max),
            fmt(gbps),
            fmt(c.actual_power.value()),
        ]);
    }
    out.tables.push(t);
    let mut shape = TextTable::new("GPU perf_max curve shape", &["sparkline"]);
    shape.push(vec![sparkline(&series)]);
    out.tables.push(shape);

    // ---- (b right) GPU: split sweep at 140 W ----
    let profile = one_budget_profile(&gtmpl, Watts::new(140.0))?;
    let mut t = TextTable::new(
        "GPU STREAM splits at cap = 140 W (Titan XP)",
        &["P_sm (W)", "P_mem (W)", "GB/s", "SM actual (W)", "mem actual (W)"],
    );
    for pt in &profile.points {
        t.push(vec![
            fmt(pt.alloc.proc.value()),
            fmt(pt.alloc.mem.value()),
            fmt(gstream.natural_rate(&pt.op).rate),
            fmt(pt.op.proc_power.value()),
            fmt(pt.op.mem_power.value()),
        ]);
    }
    out.tables.push(t);
    let mut summary = TextTable::new(
        "GPU STREAM 140 W summary",
        &["best GB/s", "worst GB/s", "spread (x)", "paper"],
    );
    let best = profile.best().unwrap();
    let worst = profile.worst().unwrap();
    summary.push(vec![
        fmt(gstream.natural_rate(&best.op).rate),
        fmt(gstream.natural_rate(&worst.op).rate),
        fmt(profile.spread()),
        ">1.3x".into(),
    ]);
    out.tables.push(summary);

    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_reproduces_headline_shapes() {
        let out = run().unwrap();
        assert!(out.tables.len() >= 6);
        // The CPU summary row confirms an order-of-magnitude spread.
        let cpu_summary = out
            .tables
            .iter()
            .find(|t| t.title.contains("CPU STREAM 208 W"))
            .unwrap();
        let spread: f64 = cpu_summary.rows[0][2].parse().unwrap();
        assert!(spread > 8.0, "CPU spread {spread}");
        // The GPU spread is far milder (low caps excluded by hardware).
        let gpu_summary = out
            .tables
            .iter()
            .find(|t| t.title.contains("GPU STREAM 140 W"))
            .unwrap();
        let spread: f64 = gpu_summary.rows[0][2].parse().unwrap();
        assert!((1.2..4.0).contains(&spread), "GPU spread {spread}");
    }
}
