//! Figure 4 — category patterns across total budgets.
//!
//! Star RandomAccess and EP-DGEMM on the IvyBridge node at several total
//! budgets. What to look for: the general pattern repeats at every budget,
//! but the number of categories and their spans shrink as the budget
//! drops (scenario I disappears first).

use crate::output::{fmt, ExperimentOutput, TextTable};
use pbc_core::{
    cpu_scenario_spans, sweep_curve, CpuScenario, CriticalPowers, PowerBoundedProblem,
    DEFAULT_STEP,
};
use pbc_platform::presets::ivybridge;
use pbc_types::{Result, Watts};
use pbc_workloads::by_name;

const BUDGETS: [f64; 4] = [176.0, 208.0, 240.0, 272.0];

/// Run the Fig. 4 reproduction.
#[must_use = "the experiment outcome carries I/O and solver failures"]
pub fn run() -> Result<ExperimentOutput> {
    let mut out = ExperimentOutput::new(
        "fig4",
        "Category patterns vs total budget: SRA and DGEMM on IvyBridge",
    );
    let platform = ivybridge();
    let cpu = platform.cpu().unwrap().clone();
    let dram = platform.dram().unwrap().clone();

    for bench_name in ["sra", "dgemm"] {
        let bench = by_name(bench_name).unwrap();
        let cost = bench.demand.phases[0].1.pattern_cost;
        let criticals = CriticalPowers::probe(&cpu, &dram, &bench.demand);

        let mut curves = TextTable::new(
            format!("{bench_name}: perf vs P_mem allocation at several budgets"),
            &["P_b (W)", "P_mem (W)", "perf (rel)", "scenario"],
        );
        let mut spans_table = TextTable::new(
            format!("{bench_name}: scenario spans per budget"),
            &["P_b (W)", "scenarios present (low P_cpu -> high)", "has scenario I"],
        );
        // All four budgets go through one shared-grid curve sweep: one
        // pooled job, one solve memo, instead of four fork-join sweeps.
        let tmpl = PowerBoundedProblem::new(
            platform.clone(),
            bench.demand.clone(),
            Watts::new(BUDGETS[0]),
        )?;
        let budgets: Vec<Watts> = BUDGETS.iter().map(|&b| Watts::new(b)).collect();
        let profiles = sweep_curve(&tmpl, &budgets, DEFAULT_STEP)?;
        for profile in &profiles {
            let b = profile.budget.value();
            let spans = cpu_scenario_spans(profile, &criticals, &dram, cost);
            for pt in &profile.points {
                let s = pbc_core::classify_cpu_point(&pt.op, &criticals, &dram, cost);
                curves.push(vec![
                    fmt(b),
                    fmt(pt.alloc.mem.value()),
                    fmt(pt.op.perf_rel),
                    s.to_string(),
                ]);
            }
            let names: Vec<String> = spans.iter().map(|(s, _, _)| s.to_string()).collect();
            let has_one = spans.iter().any(|(s, _, _)| *s == CpuScenario::I);
            spans_table.push(vec![fmt(b), names.join(" | "), has_one.to_string()]);
        }
        out.tables.push(spans_table);
        out.tables.push(curves);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_scenario_i_appears_only_with_enough_budget() {
        let out = run().unwrap();
        let spans = out
            .tables
            .iter()
            .find(|t| t.title.contains("sra: scenario spans"))
            .unwrap();
        // SRA's max demand is ~227 W: scenario I must be present at 240 and
        // 272 W and absent at 176 and 208 W.
        let by_budget: Vec<(f64, bool)> = spans
            .rows
            .iter()
            .map(|r| (r[0].parse().unwrap(), r[2] == "true"))
            .collect();
        for (b, has_one) in by_budget {
            if b >= 240.0 {
                assert!(has_one, "scenario I missing at {b} W");
            } else {
                assert!(!has_one, "scenario I must not appear at {b} W");
            }
        }
    }

    #[test]
    fn fig4_dgemm_needs_more_budget_for_scenario_i() {
        let out = run().unwrap();
        let spans = out
            .tables
            .iter()
            .find(|t| t.title.contains("dgemm: scenario spans"))
            .unwrap();
        // DGEMM's demand is ~224 W; scenario I must appear at 240+.
        let at_240 = spans.rows.iter().find(|r| r[0] == "240.0").unwrap();
        assert_eq!(at_240[2], "true");
        let at_176 = spans.rows.iter().find(|r| r[0] == "176.0").unwrap();
        assert_eq!(at_176[2], "false");
    }
}
