//! Figure 5 — balanced compute and memory access at the optimum.
//!
//! DGEMM and STREAM on the IvyBridge node at `P_b` = 208 W: for every
//! allocation, each component's *capacity* (its rate when the other
//! component is excessively powered — §3.4.1's definition) and its
//! *utilization* (achieved rate over capacity). At the optimal allocation
//! both utilizations approach 100 %.

use crate::output::{fmt, ExperimentOutput, TextTable};
use pbc_core::{balance_analysis, PowerBoundedProblem, DEFAULT_STEP};
use pbc_platform::presets::ivybridge;
use pbc_types::{Result, Watts};
use pbc_workloads::by_name;

/// Run the Fig. 5 reproduction.
#[must_use = "the experiment outcome carries I/O and solver failures"]
pub fn run() -> Result<ExperimentOutput> {
    let mut out = ExperimentOutput::new(
        "fig5",
        "Compute/memory capacity and utilization across allocations at P_b = 208 W (IvyBridge)",
    );
    for bench_name in ["dgemm", "stream"] {
        let bench = by_name(bench_name).unwrap();
        let problem =
            PowerBoundedProblem::new(ivybridge(), bench.demand.clone(), Watts::new(208.0))?;
        let points = balance_analysis(&problem, DEFAULT_STEP)?;
        let mut t = TextTable::new(
            format!("{bench_name} at 208 W: capacity and utilization"),
            &[
                "P_cpu (W)",
                "P_mem (W)",
                "perf (rel)",
                "compute cap (GFLOP/s)",
                "compute util",
                "mem cap (GB/s)",
                "mem util",
            ],
        );
        for p in &points {
            t.push(vec![
                fmt(p.alloc.proc.value()),
                fmt(p.alloc.mem.value()),
                fmt(p.perf_rel),
                fmt(p.compute_capacity),
                fmt(p.compute_util),
                fmt(p.mem_capacity),
                fmt(p.mem_util),
            ]);
        }
        out.tables.push(t);

        let best = points
            .iter()
            .max_by(|a, b| a.perf_rel.partial_cmp(&b.perf_rel).unwrap())
            .unwrap();
        let mut s = TextTable::new(
            format!("{bench_name} at 208 W: optimum"),
            &["P_cpu*", "P_mem*", "compute util", "mem util"],
        );
        s.push(vec![
            fmt(best.alloc.proc.value()),
            fmt(best.alloc.mem.value()),
            fmt(best.compute_util),
            fmt(best.mem_util),
        ]);
        out.tables.push(s);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_optimum_is_balanced() {
        let out = run().unwrap();
        for bench in ["dgemm", "stream"] {
            let t = out
                .tables
                .iter()
                .find(|t| t.title == format!("{bench} at 208 W: optimum"))
                .unwrap();
            let cu: f64 = t.rows[0][2].parse().unwrap();
            let mu: f64 = t.rows[0][3].parse().unwrap();
            assert!(cu > 0.8, "{bench} compute util {cu}");
            assert!(mu > 0.8, "{bench} mem util {mu}");
        }
    }

    #[test]
    fn fig5_optimal_splits_reflect_intensity() {
        // DGEMM's optimal split gives the CPU far more than STREAM's does.
        let out = run().unwrap();
        let cpu_star = |bench: &str| -> f64 {
            out.tables
                .iter()
                .find(|t| t.title == format!("{bench} at 208 W: optimum"))
                .unwrap()
                .rows[0][0]
                .parse()
                .unwrap()
        };
        assert!(cpu_star("dgemm") > cpu_star("stream") + 20.0);
    }
}
