//! Extension 5 — research question 4 quantified: acceptable budget ranges
//! and power efficiency.
//!
//! §2.1's fourth question asks what budgets are acceptable "regarding
//! achievable performance and power efficiency". The paper answers
//! qualitatively (§3.1's scheduling insights); this experiment puts
//! numbers on it: the efficiency curve of the best allocation at every
//! budget, the acceptable band derived from the critical values, and the
//! perf-per-watt sweet spot a throughput scheduler would target.

use crate::output::{fmt, ExperimentOutput, TextTable};
use pbc_core::{
    efficiency::{efficiency_curve, most_efficient_budget, AcceptableRange},
    CriticalPowers, PowerBoundedProblem, DEFAULT_STEP,
};
use pbc_platform::presets::ivybridge;
use pbc_types::{Result, Watts};
use pbc_workloads::by_name;

/// Run the extension-5 evaluation.
#[must_use = "the experiment outcome carries I/O and solver failures"]
pub fn run() -> Result<ExperimentOutput> {
    let mut out = ExperimentOutput::new(
        "ext5",
        "RQ4: acceptable budget bands and power efficiency (IvyBridge)",
    );
    let platform = ivybridge();
    let cpu = platform.cpu().unwrap();
    let dram = platform.dram().unwrap();

    let mut bands = TextTable::new(
        "Acceptable budget bands per workload (from critical powers)",
        &[
            "benchmark",
            "min productive (W)",
            "max useful (W)",
            "band width (W)",
            "sweet spot (W)",
            "sweet perf/W (rel/W)",
        ],
    );
    let mut curves = TextTable::new(
        "Efficiency curves (CSV)",
        &["benchmark", "P_b (W)", "perf_max", "actual (W)", "perf/W", "stranded (W)"],
    );
    for bench_name in ["sra", "stream", "dgemm", "mg", "ep"] {
        let bench = by_name(bench_name).unwrap();
        let criticals = CriticalPowers::probe(cpu, dram, &bench.demand);
        let band = AcceptableRange::from_criticals(&criticals);
        let tmpl = PowerBoundedProblem::new(
            platform.clone(),
            bench.demand.clone(),
            Watts::new(208.0),
        )?;
        let budgets: Vec<Watts> = (10..33).map(|i| Watts::new(i as f64 * 10.0)).collect();
        let curve = efficiency_curve(&tmpl, budgets, DEFAULT_STEP)?;
        for p in &curve {
            curves.push(vec![
                bench_name.into(),
                fmt(p.budget.value()),
                fmt(p.perf_max),
                fmt(p.actual_power.value()),
                fmt(p.perf_per_watt * 1000.0), // milli-rel per watt for readability
                fmt(p.stranded_power.value()),
            ]);
        }
        let sweet = most_efficient_budget(&curve).expect("non-empty curve");
        bands.push(vec![
            bench_name.into(),
            fmt(band.min.value()),
            fmt(band.max.value()),
            fmt(band.span().value()),
            fmt(sweet.budget.value()),
            fmt(sweet.perf_per_watt * 1000.0),
        ]);
    }
    out.tables.push(bands);
    out.tables.push(curves);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweet_spots_sit_inside_the_bands() {
        let out = run().unwrap();
        let bands = &out.tables[0];
        for r in &bands.rows {
            let min: f64 = r[1].parse().unwrap();
            let max: f64 = r[2].parse().unwrap();
            let sweet: f64 = r[4].parse().unwrap();
            assert!(min < max, "{r:?}");
            // The sweet spot lies within the band, give or take the
            // 10 W budget grid plus sweep-step noise around the max.
            assert!(
                sweet >= min - 10.0 && sweet <= max + 16.0,
                "sweet spot outside the band: {r:?}"
            );
        }
    }

    #[test]
    fn compute_bound_workloads_have_wider_bands() {
        let out = run().unwrap();
        let bands = &out.tables[0];
        let width = |b: &str| -> f64 {
            bands.rows.iter().find(|r| r[0] == b).unwrap()[3].parse().unwrap()
        };
        // DGEMM's demand dynamic range dwarfs STREAM's.
        assert!(width("dgemm") > width("stream"));
    }
}
