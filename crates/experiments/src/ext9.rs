//! Extension 9 — the fairness-vs-throughput frontier under
//! multi-tenant capping.
//!
//! Extension 8 asked what faults cost a single-tenant fleet; this one
//! asks what *fairness* costs a shared fleet. Three tenants with 3:2:1
//! weights and Gold/Silver/BestEffort SLA classes co-locate on every
//! node, and the table replays the same noisy-neighbor chaos plan under
//! each allocation objective the partitioner ships:
//!
//! * `throughput` — pure marginal-gain water-filling, the paper's
//!   objective (FastCap's throughput-maximal point);
//! * `max-min` — lift the node with the lowest normalized progress
//!   first (FastCap's fairness point);
//! * `weighted` — proportional shares above the floor, by tenant
//!   weight.
//!
//! Each row reports work retained against the never-fails oracle,
//! the worst epoch's Jain fairness index over weight-normalized tenant
//! watts, the smallest tenant's calm-state fleet watts, and the
//! preemption/floor-violation counts. The frontier the table renders is
//! the point: throughput buys work at the cost of Jain, max-min buys
//! Jain at the cost of work, and floor violations stay zero everywhere.

use crate::ext7::fleet_of;
use crate::output::{fmt, ExperimentOutput, TextTable};
use pbc_cluster::{run_cluster_chaos_with, FleetCoordinator, Objective, TenantSet};
use pbc_faults::FleetFaultPlan;
use pbc_types::{Result, Watts};

/// The objectives the frontier sweeps, throughput first as the control.
const OBJECTIVES: [Objective; 3] =
    [Objective::Throughput, Objective::MaxMin, Objective::WeightedShares];

/// The co-located tenant mix every node hosts.
const TENANTS: &str = "web:3:gold,etl:2:silver,batch:1:best-effort";

/// Fleet size (chaos replays every epoch, so the frontier stays small).
const NODES: usize = 8;

/// Global budget per node, matching ext7/ext8.
const WATTS_PER_NODE: f64 = 130.0;

/// The one seed the table prints; the test suite sweeps many more.
const SEED: u64 = 42;

/// Run the extension-9 evaluation.
#[must_use = "the experiment output is the whole point of the run"]
pub fn run() -> Result<ExperimentOutput> {
    let mut out = ExperimentOutput::new(
        "ext9",
        "Multi-tenant fairness frontier: throughput vs max-min vs weighted shares under a \
         noisy neighbor",
    );
    let mut t = TextTable::new(
        "Fairness vs throughput under the noisy-neighbor plan (8 nodes, 130 W/node, \
         tenants web:3:gold etl:2:silver batch:1:best-effort, seed 42)",
        &[
            "objective",
            "epochs",
            "work/oracle",
            "min Jain",
            "min tenant W",
            "spikes",
            "noisy",
            "preempt",
            "floorviol",
            "verdict",
        ],
    );
    let global = Watts::new(WATTS_PER_NODE * NODES as f64);
    for objective in OBJECTIVES {
        let plan = FleetFaultPlan::by_name("noisy-neighbor", SEED).ok_or_else(|| {
            pbc_types::PbcError::NotFound("fleet fault plan noisy-neighbor".to_string())
        })?;
        let tenants = TenantSet::parse(TENANTS)?;
        let min_share = calm_min_tenant_watts(objective, global, &tenants)?;
        let chaos =
            run_cluster_chaos_with(fleet_of(NODES)?, global, &plan, 0, objective, Some(tenants))?;
        let r = &chaos.report;
        t.push(vec![
            objective.name().to_string(),
            chaos.epochs.to_string(),
            fmt(chaos.work_ratio()),
            fmt(r.min_tenant_jain),
            fmt(min_share),
            r.tenant_spikes.to_string(),
            r.tenant_noisy.to_string(),
            r.tenant_preemptions.to_string(),
            r.tenant_floor_violations.to_string(),
            if chaos.survived() { "SURVIVED" } else { "DIED" }.to_string(),
        ]);
    }
    out.tables.push(t);
    Ok(out)
}

/// The smallest tenant's fleet-wide watts in the calm state: partition
/// the global budget under `objective`, sub-partition every node's
/// share at baseline demand, and sum per tenant.
fn calm_min_tenant_watts(
    objective: Objective,
    global: Watts,
    tenants: &TenantSet,
) -> Result<f64> {
    let fleet = fleet_of(NODES)?;
    let coord = FleetCoordinator::new(fleet, global)?
        .with_objective(objective)
        .with_tenants(tenants.clone());
    let decision = coord.coordinate()?;
    let demand = vec![1.0; tenants.len()];
    let mut per_tenant = vec![0.0f64; tenants.len()];
    for (i, share) in decision.shares.iter().enumerate() {
        let floor = coord.fleet().class_of(i).floor;
        let split = tenants.split_node(*share, floor, &demand);
        for (w, s) in per_tenant.iter_mut().zip(&split.shares) {
            *w += s.value();
        }
    }
    Ok(per_tenant.iter().fold(f64::INFINITY, |a, &b| a.min(b)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_frontier_holds_and_every_row_survives() {
        let out = run().unwrap();
        let t = &out.tables[0];
        assert_eq!(t.rows.len(), OBJECTIVES.len());
        for row in &t.rows {
            assert_eq!(row.last().unwrap(), "SURVIVED", "objective {} died", row[0]);
            assert_eq!(row[8], "0", "objective {} violated a tenant floor", row[0]);
            let min_w: f64 = row[4].parse().unwrap();
            assert!(min_w > 0.0, "objective {}: a tenant got nothing", row[0]);
        }
        let work_of = |name: &str| -> f64 {
            t.rows.iter().find(|r| r[0] == name).unwrap()[2].parse().unwrap()
        };
        let jain_of = |name: &str| -> f64 {
            t.rows.iter().find(|r| r[0] == name).unwrap()[3].parse().unwrap()
        };
        // The frontier: throughput never does less work than max-min,
        // and max-min is never less fair than throughput.
        assert!(
            work_of("throughput") >= work_of("max-min") - 1e-9,
            "max-min out-worked the throughput objective"
        );
        assert!(
            jain_of("max-min") >= jain_of("throughput") - 1e-9,
            "throughput out-faired the max-min objective"
        );
        // The worst epoch lands mid-noisy-event, where the demand-
        // weighted split deliberately tilts toward the noisy tenant;
        // the calm-state gate (`scripts/check.sh`) demands >= 0.95 from
        // the exported trace gauge once the plan goes quiet.
        assert!(
            jain_of("max-min") >= 0.90,
            "max-min must hold a worst-epoch Jain >= 0.90, got {}",
            jain_of("max-min")
        );
    }
}
