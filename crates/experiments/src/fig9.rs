//! Figure 9 — accuracy of the COORD heuristic.
//!
//! CPU: COORD vs the sweep oracle vs the memory-first strategy across all
//! 11 benchmarks and a budget grid on the IvyBridge node. Paper claims to
//! reproduce: COORD within 5 % of the oracle at large caps, ≤ ~10 % on
//! average over all caps, and generally ahead of memory-first at small
//! budgets.
//!
//! GPU: COORD vs the oracle and the Nvidia default capper on the Titan XP
//! across the 6 GPU benchmarks. Paper claims: within ~2 % of the oracle
//! and up to 33 % better than the default.

use crate::output::{fmt, ExperimentOutput, TextTable};
use pbc_core::{
    oracle, AllocationPolicy, Baseline, CpuPolicy, CriticalPowers, GpuCoordParams, GpuPolicy,
    PowerBoundedProblem, DEFAULT_STEP,
};
use pbc_platform::presets::{haswell, ivybridge, titan_v, titan_xp};
use pbc_types::{Result, Watts};
use pbc_workloads::{cpu_suite, gpu_suite};

const CPU_BUDGETS: [f64; 6] = [150.0, 170.0, 190.0, 210.0, 230.0, 250.0];
const GPU_CAPS: [f64; 6] = [140.0, 170.0, 200.0, 230.0, 260.0, 290.0];

/// Run the Fig. 9 reproduction.
#[must_use = "the experiment outcome carries I/O and solver failures"]
pub fn run() -> Result<ExperimentOutput> {
    let mut out = ExperimentOutput::new(
        "fig9",
        "COORD vs the sweep oracle and the baseline strategies",
    );

    // ---- CPU side: both host platforms ----
    let mut detail = TextTable::new(
        "CPU: per-benchmark per-budget performance (relative to oracle = 1)",
        &["platform", "benchmark", "P_b (W)", "oracle perf", "COORD/oracle", "memory-first/oracle"],
    );
    let mut gaps_all = Vec::new();
    let mut gaps_large = Vec::new();
    let mut coord_vs_memfirst_wins = 0usize;
    let mut comparisons = 0usize;

    for platform in [ivybridge(), haswell()] {
    let cpu = platform.cpu().unwrap().clone();
    let dram = platform.dram().unwrap().clone();
    for bench in cpu_suite() {
        let criticals = CriticalPowers::probe(&cpu, &dram, &bench.demand);
        for &b in &CPU_BUDGETS {
            let problem = PowerBoundedProblem::new(
                platform.clone(),
                bench.demand.clone(),
                Watts::new(b),
            )?;
            let best = oracle(&problem, DEFAULT_STEP)?;
            let run_policy = |baseline: Baseline| -> Option<f64> {
                let policy = CpuPolicy {
                    baseline,
                    criticals: &criticals,
                };
                policy
                    .allocate(Watts::new(b))
                    .and_then(|alloc| pbc_powersim::solve(&platform, &bench.demand, alloc))
                    .map(|op| op.perf_rel)
                    .ok()
            };
            let coord = run_policy(Baseline::Coord);
            let memfirst = run_policy(Baseline::MemoryFirst);
            // A rejected budget (regime D) is a designed outcome — COORD
            // hands the power back to the scheduler rather than running
            // the job badly — so it does not enter the gap statistics.
            if let Some(coord) = coord {
                let ratio_coord = coord / best.op.perf_rel.max(1e-12);
                // COORD is allowed to beat the (stepped) oracle slightly —
                // the paper observes the same for NPB LU.
                gaps_all.push((1.0 - ratio_coord).max(0.0));
                if b >= 210.0 {
                    gaps_large.push((1.0 - ratio_coord).max(0.0));
                }
                if coord >= memfirst.unwrap_or(0.0) - 1e-9 {
                    coord_vs_memfirst_wins += 1;
                }
                comparisons += 1;
            }
            let show = |v: Option<f64>| -> String {
                match v {
                    Some(p) => fmt(p / best.op.perf_rel.max(1e-12)),
                    None => "rejected".into(),
                }
            };
            detail.push(vec![
                platform.id.to_string(),
                bench.id.to_string(),
                fmt(b),
                fmt(best.op.perf_rel),
                show(coord),
                show(memfirst),
            ]);
        }
    }
    }
    out.tables.push(detail);

    let mut summary = TextTable::new(
        "CPU summary: COORD vs oracle",
        &[
            "mean gap all caps (%)",
            "max gap all caps (%)",
            "mean gap large caps (%)",
            "COORD >= memory-first (frac)",
            "paper",
        ],
    );
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    summary.push(vec![
        fmt(mean(&gaps_all) * 100.0),
        fmt(gaps_all.iter().cloned().fold(0.0, f64::max) * 100.0),
        fmt(mean(&gaps_large) * 100.0),
        fmt(coord_vs_memfirst_wins as f64 / comparisons.max(1) as f64),
        "9.6% mean, <5% large".into(),
    ]);
    out.tables.push(summary);

    // ---- GPU side: both cards ----
    let mut detail = TextTable::new(
        "GPU: per-benchmark per-cap performance",
        &["platform", "benchmark", "cap (W)", "oracle perf", "COORD/oracle", "COORD/default", "P_tot_ref (W)"],
    );
    let mut ggaps = Vec::new();
    let mut default_gains = Vec::new();
    for gplatform in [titan_xp(), titan_v()] {
    let gpu = gplatform.gpu().unwrap().clone();
    for bench in gpu_suite() {
        let params = GpuCoordParams::profile(&gpu, &bench.demand)?;
        for &cap in &GPU_CAPS {
            if Watts::new(cap) < gpu.min_card_cap {
                continue;
            }
            let problem = PowerBoundedProblem::new(
                gplatform.clone(),
                bench.demand.clone(),
                Watts::new(cap),
            )?;
            let best = oracle(&problem, DEFAULT_STEP)?;
            let run_policy = |baseline: Baseline| -> f64 {
                let policy = GpuPolicy {
                    baseline,
                    gpu: &gpu,
                    params: &params,
                };
                policy
                    .allocate(Watts::new(cap))
                    .and_then(|alloc| pbc_powersim::solve(&gplatform, &bench.demand, alloc))
                    .map(|op| op.perf_rel)
                    .unwrap_or(0.0)
            };
            let coord = run_policy(Baseline::Coord);
            let default = run_policy(Baseline::NvidiaDefault);
            let ratio = coord / best.op.perf_rel.max(1e-12);
            ggaps.push((1.0 - ratio).max(0.0));
            if default > 0.0 {
                default_gains.push(coord / default - 1.0);
            }
            detail.push(vec![
                gplatform.id.to_string(),
                bench.id.to_string(),
                fmt(cap),
                fmt(best.op.perf_rel),
                fmt(ratio),
                fmt(if default > 0.0 { coord / default } else { f64::NAN }),
                fmt(params.p_tot_ref.value()),
            ]);
        }
    }
    }
    out.tables.push(detail);

    let mut summary = TextTable::new(
        "GPU summary: COORD vs oracle and default capper",
        &["mean gap (%)", "max gap (%)", "max gain over default (%)", "paper"],
    );
    summary.push(vec![
        fmt(mean(&ggaps) * 100.0),
        fmt(ggaps.iter().cloned().fold(0.0, f64::max) * 100.0),
        fmt(default_gains.iter().cloned().fold(0.0, f64::max) * 100.0),
        "<2% gap, up to 33% over default".into(),
    ]);
    out.tables.push(summary);

    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(out: &ExperimentOutput, title: &str, col: usize) -> f64 {
        out.tables
            .iter()
            .find(|t| t.title.contains(title))
            .unwrap()
            .rows[0][col]
            .parse()
            .unwrap()
    }

    #[test]
    fn fig9_cpu_coord_accuracy_matches_paper_bands() {
        let out = run().unwrap();
        let mean_all = cell(&out, "CPU summary", 0);
        let mean_large = cell(&out, "CPU summary", 2);
        // Paper: 9.6% average over all caps, <5% for large caps.
        assert!(mean_all < 15.0, "mean gap over all caps {mean_all}%");
        assert!(mean_large < 6.0, "mean gap at large caps {mean_large}%");
        // COORD beats or matches memory-first most of the time.
        let winfrac = cell(&out, "CPU summary", 3);
        assert!(winfrac > 0.6, "COORD>=memory-first fraction {winfrac}");
    }

    #[test]
    fn fig9_gpu_coord_accuracy_matches_paper_bands() {
        let out = run().unwrap();
        let mean_gap = cell(&out, "GPU summary", 0);
        assert!(mean_gap < 4.0, "GPU mean gap {mean_gap}%");
        // Up to tens of percent better than the Nvidia default.
        let max_gain = cell(&out, "GPU summary", 2);
        assert!(
            (10.0..=60.0).contains(&max_gain),
            "max gain over default {max_gain}%"
        );
    }
}
