//! Extension 4 — co-running jobs on one power-bounded node (the paper's
//! "multi-task computing environments" future work).
//!
//! Pairs from the suite co-run on a dual-socket IvyBridge under a node
//! budget: bandwidth contention per pairing, and what coordinated
//! core/power splits buy over the naive even co-run.

use crate::output::{fmt, ExperimentOutput, TextTable};
use pbc_powersim::{coordinate_corun, solve_corun};
use pbc_platform::presets::ivybridge;
use pbc_types::{Result, Watts};
use pbc_workloads::by_name;

const PAIRS: [(&str, &str); 4] = [
    ("dgemm", "stream"),
    ("dgemm", "dgemm"),
    ("stream", "stream"),
    ("dgemm", "sra"),
];

/// Run the extension-4 evaluation.
#[must_use = "the experiment outcome carries I/O and solver failures"]
pub fn run() -> Result<ExperimentOutput> {
    let mut out = ExperimentOutput::new(
        "ext4",
        "Co-run coordination on one node — IvyBridge, node budget 240 W (mem cap 100 W)",
    );
    let platform = ivybridge();
    let cpu = platform.cpu().unwrap();
    let dram = platform.dram().unwrap();
    let node_budget = Watts::new(240.0);
    let mem_cap = Watts::new(100.0);

    let mut t = TextTable::new(
        "Job pairings: naive even co-run vs coordinated",
        &[
            "pair",
            "contention",
            "even throughput",
            "coordinated throughput",
            "gain (%)",
            "core split",
            "caps (W)",
        ],
    );
    for (a, b) in PAIRS {
        let da = by_name(a).unwrap().demand;
        let db = by_name(b).unwrap().demand;
        // The table's fixed node budget (Table 4) sits well above the
        // memory cap; a negative remainder would fail solve_corun loudly.
        // pbc-lint: allow(unchecked-budget-arith)
        let proc_budget = node_budget - mem_cap;
        let naive = solve_corun(
            cpu,
            dram,
            [&da, &db],
            0.5,
            [proc_budget / 2.0, proc_budget / 2.0],
            mem_cap,
        )?;
        let (core_split, caps, best) =
            coordinate_corun(cpu, dram, [&da, &db], node_budget, mem_cap)?;
        t.push(vec![
            format!("{a}+{b}"),
            fmt(best.contention),
            fmt(naive.total_throughput()),
            fmt(best.total_throughput()),
            fmt((best.total_throughput() / naive.total_throughput() - 1.0) * 100.0),
            fmt(core_split),
            format!("{:.0}/{:.0}", caps[0].value(), caps[1].value()),
        ]);
    }
    out.tables.push(t);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corun_experiment_shape() {
        let out = run().unwrap();
        let t = &out.tables[0];
        assert_eq!(t.rows.len(), 4);
        let row = |pair: &str| t.rows.iter().find(|r| r[0] == pair).unwrap();
        // Two STREAMs contend hard; DGEMM+STREAM barely.
        let ss: f64 = row("stream+stream")[1].parse().unwrap();
        let ds: f64 = row("dgemm+stream")[1].parse().unwrap();
        assert!(ss < 0.8, "stream+stream contention {ss}");
        assert!(ds > 0.85, "dgemm+stream contention {ds}");
        // Coordination never loses to the naive split.
        for r in &t.rows {
            let gain: f64 = r[4].parse().unwrap();
            assert!(gain >= -0.5, "{r:?}");
        }
    }
}
