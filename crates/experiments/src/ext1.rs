//! Extension 1 — online dynamic coordination (the paper's future work).
//!
//! The model-free [`pbc_core::OnlineCoordinator`] against the statically
//! profiled COORD and the sweep oracle, across the CPU suite: how close
//! does pure runtime feedback get, and how many epochs does it burn to
//! get there?

use crate::output::{fmt, ExperimentOutput, TextTable};
use pbc_core::{
    coord_cpu, oracle, CriticalPowers, OnlineConfig, OnlineCoordinator, PowerBoundedProblem,
    DEFAULT_STEP,
};
use pbc_platform::presets::ivybridge;
use pbc_powersim::solve;
use pbc_types::{PowerAllocation, Result, Watts};
use pbc_workloads::cpu_suite;

/// Run the extension-1 evaluation.
#[must_use = "the experiment outcome carries I/O and solver failures"]
pub fn run() -> Result<ExperimentOutput> {
    let mut out = ExperimentOutput::new(
        "ext1",
        "Online (model-free) coordination vs static COORD vs oracle — IvyBridge, 208 W",
    );
    let platform = ivybridge();
    let cpu = platform.cpu().unwrap();
    let dram = platform.dram().unwrap();
    let budget = Watts::new(208.0);

    let mut t = TextTable::new(
        "Online coordinator vs COORD vs oracle",
        &[
            "benchmark",
            "oracle perf",
            "COORD perf",
            "online perf",
            "online epochs",
            "online alloc",
        ],
    );
    let mut online_gaps = Vec::new();
    for bench in cpu_suite() {
        let problem =
            PowerBoundedProblem::new(platform.clone(), bench.demand.clone(), budget)?;
        let best = oracle(&problem, DEFAULT_STEP)?;

        let criticals = CriticalPowers::probe(cpu, dram, &bench.demand);
        let coord_perf = coord_cpu(budget, &criticals)
            .ok()
            .and_then(|d| solve(&platform, &bench.demand, d.alloc).ok())
            .map(|op| op.perf_rel)
            .unwrap_or(0.0);

        let mut online = OnlineCoordinator::new(
            budget,
            PowerAllocation::split(budget, 0.5),
            OnlineConfig::default(),
        );
        while !online.converged() && online.epochs() < 200 {
            let alloc = online.next_allocation();
            let op = solve(&platform, &bench.demand, alloc)?;
            online.observe(&op);
        }
        let online_perf = solve(&platform, &bench.demand, online.best())?.perf_rel;
        online_gaps.push((1.0 - online_perf / best.op.perf_rel).max(0.0));

        t.push(vec![
            bench.id.to_string(),
            fmt(best.op.perf_rel),
            fmt(coord_perf),
            fmt(online_perf),
            online.epochs().to_string(),
            format!(
                "({:.0}, {:.0})",
                online.best().proc.value(),
                online.best().mem.value()
            ),
        ]);
    }
    out.tables.push(t);

    let mut s = TextTable::new(
        "Online coordination summary",
        &["mean gap to oracle (%)", "max gap (%)", "requires profiling?"],
    );
    let mean = online_gaps.iter().sum::<f64>() / online_gaps.len().max(1) as f64;
    s.push(vec![
        fmt(mean * 100.0),
        fmt(online_gaps.iter().cloned().fold(0.0, f64::max) * 100.0),
        "no — pure runtime feedback".into(),
    ]);
    out.tables.push(s);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_coordination_is_competitive() {
        let out = run().unwrap();
        let summary = out
            .tables
            .iter()
            .find(|t| t.title.contains("summary"))
            .unwrap();
        let mean: f64 = summary.rows[0][0].parse().unwrap();
        assert!(mean < 5.0, "online mean gap {mean}%");
        // Epoch counts stay practical (a few dozen short epochs).
        let detail = &out.tables[0];
        for r in &detail.rows {
            let epochs: usize = r[4].parse().unwrap();
            assert!(epochs <= 200, "{} epochs for {}", epochs, r[0]);
        }
    }
}
