//! Tables 1–3 of the paper.
//!
//! * Table 1 — optimal allocation and critical component vs power budget
//!   (derived from the scenario machinery for SRA on IvyBridge).
//! * Table 2 — the experimental platforms (from `pbc-platform` presets).
//! * Table 3 — the benchmark suite (from `pbc-workloads`).

use crate::output::{fmt, ExperimentOutput, TextTable};
use pbc_core::{table1, CriticalPowers, PowerBoundedProblem, DEFAULT_STEP};
use pbc_platform::{all_platforms, NodeSpec};
use pbc_types::{Result, Watts};
use pbc_workloads::{all_benchmarks, by_name, Target};

/// Regenerate Table 1: optimal allocation intersection and critical
/// component for descending budget regimes.
#[must_use = "the experiment outcome carries I/O and solver failures"]
pub fn table1_experiment() -> Result<ExperimentOutput> {
    let mut out = ExperimentOutput::new(
        "table1",
        "Optimal allocation scenario and critical component vs power budget (SRA, IvyBridge)",
    );
    let platform = pbc_platform::presets::ivybridge();
    let sra = by_name("sra").unwrap();
    let criticals = CriticalPowers::probe(
        platform.cpu().unwrap(),
        platform.dram().unwrap(),
        &sra.demand,
    );
    let tmpl = PowerBoundedProblem::new(platform, sra.demand.clone(), Watts::new(240.0))?;
    let rows = table1(&tmpl, &criticals, DEFAULT_STEP)?;
    let mut t = TextTable::new(
        "Table 1: optimal allocation vs budget regime",
        &["P_b (W)", "valid scenarios", "optimal scenario", "critical component"],
    );
    for r in &rows {
        t.push(vec![
            fmt(r.budget.value()),
            r.valid_scenarios
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
                .join(", "),
            r.optimal_scenario.to_string(),
            r.critical
                .map(|d| d.to_string())
                .unwrap_or_else(|| "none".into()),
        ]);
    }
    out.tables.push(t);
    Ok(out)
}

/// Regenerate Table 2: the platform inventory.
#[must_use = "the experiment outcome carries I/O and solver failures"]
pub fn table2_experiment() -> Result<ExperimentOutput> {
    let mut out = ExperimentOutput::new("table2", "CPU and GPU platforms used in experiments");
    let mut t = TextTable::new(
        "Table 2: platforms",
        &["platform", "processor", "memory", "floor (W)", "peak GFLOP/s", "peak GB/s"],
    );
    for p in all_platforms() {
        match &p.spec {
            NodeSpec::Cpu { cpu, dram } => t.push(vec![
                p.id.to_string(),
                cpu.name.clone(),
                dram.name.clone(),
                fmt(p.min_node_power().value()),
                fmt(cpu.peak_gflops()),
                fmt(dram.max_bandwidth.value()),
            ]),
            NodeSpec::Gpu(g) => t.push(vec![
                p.id.to_string(),
                format!("{} ({} SMs)", g.name, g.sm_count),
                format!("12 GB {}", if p.id == pbc_platform::PlatformId::TitanV { "HBM2" } else { "GDDR5X" }),
                fmt(p.min_node_power().value()),
                fmt(g.peak_gflops),
                fmt(g.mem.max_bandwidth.value()),
            ]),
        }
    }
    out.tables.push(t);
    Ok(out)
}

/// Regenerate Table 3: the benchmark inventory.
#[must_use = "the experiment outcome carries I/O and solver failures"]
pub fn table3_experiment() -> Result<ExperimentOutput> {
    let mut out = ExperimentOutput::new("table3", "Benchmarks used in this study");
    let mut t = TextTable::new(
        "Table 3: benchmarks",
        &["benchmark", "suite", "description", "class", "mean FLOP/byte"],
    );
    for b in all_benchmarks() {
        t.push(vec![
            b.id.to_string(),
            match b.target {
                Target::Cpu => "CPU (HPCC/NPB/STREAM)".into(),
                Target::Gpu => "GPU (CUDA/ECP)".to_string(),
            },
            b.description.to_string(),
            b.class.to_string(),
            fmt(b.demand.mean_intensity()),
        ]);
    }
    out.tables.push(t);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_first_row_is_unconstrained() {
        let out = table1_experiment().unwrap();
        let t = &out.tables[0];
        assert!(t.rows.len() >= 4);
        assert_eq!(t.rows[0][2], "I");
        assert_eq!(t.rows[0][3], "none");
        // Below the first regime a critical component exists.
        assert_ne!(t.rows[1][3], "none");
    }

    #[test]
    fn table2_has_four_platforms() {
        let out = table2_experiment().unwrap();
        assert_eq!(out.tables[0].rows.len(), 4);
    }

    #[test]
    fn table3_has_seventeen_benchmarks() {
        let out = table3_experiment().unwrap();
        assert_eq!(out.tables[0].rows.len(), 17);
    }
}
