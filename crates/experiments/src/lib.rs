//! # pbc-experiments
//!
//! The reproduction harness: one module per table/figure of the paper's
//! evaluation, each regenerating the corresponding data series through the
//! public APIs of `pbc-core`, `pbc-powersim`, and `pbc-workloads`.
//!
//! | Module | Paper artifact |
//! |--------|----------------|
//! | [`fig1`] | Fig. 1 — STREAM under power bounds, CPU & GPU (motivation) |
//! | [`fig2`] | Fig. 2 — `perf_max ~ P_b` for DGEMM & RandomAccess on both CPU platforms |
//! | [`fig3`] | Fig. 3 — the six scenario categories (SRA on IvyBridge, 240 W) |
//! | [`fig4`] | Fig. 4 — category patterns across budgets (SRA, EP-DGEMM) |
//! | [`fig5`] | Fig. 5 — balanced compute/memory utilization at 208 W |
//! | [`fig6`] | Fig. 6 — GPU `perf_max` vs power cap (SGEMM & MiniFE, XP & V) |
//! | [`fig7`] | Fig. 7 — GPU perf vs memory allocation under various caps |
//! | [`fig8`] | Fig. 8 — profiles of all Table-3 benchmarks on all platforms |
//! | [`fig9`] | Fig. 9 — COORD vs oracle vs memory-first / Nvidia default |
//! | [`tables`] | Tables 1–3 |
//! | [`ext1`] | *extension*: online (model-free) coordination, the paper's future work |
//! | [`ext2`] | *extension*: per-socket coordination under workload imbalance |
//! | [`ext3`] | *extension*: hybrid host+card coordination for offload applications |
//! | [`ext4`] | *extension*: co-run coordination for multi-tenant nodes |
//! | [`ext5`] | *extension*: RQ4 quantified — acceptable budget bands and efficiency curves |
//! | [`ext6`] | *extension*: chaos survival — the online loop under every shipped fault plan |
//! | [`ext7`] | *extension*: cluster-scale coordination — COORD vs uniform split vs oracle at 8/32/128 nodes |
//! | [`ext8`] | *extension*: fleet fault tolerance — availability, reconvergence, and work retained under chaos plans |
//! | [`ext9`] | *extension*: multi-tenant fairness frontier — throughput vs max-min vs weighted shares under a noisy neighbor |
//!
//! Every experiment returns an [`output::ExperimentOutput`]: rendered text
//! tables for the terminal plus CSV series for downstream plotting. The
//! `repro` binary dispatches on experiment name and writes the CSVs under
//! `results/`.

pub mod ext1;
pub mod ext2;
pub mod ext3;
pub mod ext4;
pub mod ext5;
pub mod ext6;
pub mod ext7;
pub mod ext8;
pub mod ext9;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod output;
pub mod tables;

pub use output::{ExperimentOutput, TextTable};

use pbc_types::Result;

/// Every experiment by name, in paper order.
pub const EXPERIMENTS: [&str; 21] = [
    "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "table1", "table2",
    "table3", "ext1", "ext2", "ext3", "ext4", "ext5", "ext6", "ext7", "ext8", "ext9",
];

/// Run one experiment by name.
#[must_use = "the experiment outcome carries I/O and solver failures"]
pub fn run(name: &str) -> Result<ExperimentOutput> {
    match name {
        "fig1" => fig1::run(),
        "fig2" => fig2::run(),
        "fig3" => fig3::run(),
        "fig4" => fig4::run(),
        "fig5" => fig5::run(),
        "fig6" => fig6::run(),
        "fig7" => fig7::run(),
        "fig8" => fig8::run(),
        "fig9" => fig9::run(),
        "table1" => tables::table1_experiment(),
        "table2" => tables::table2_experiment(),
        "table3" => tables::table3_experiment(),
        "ext1" => ext1::run(),
        "ext2" => ext2::run(),
        "ext3" => ext3::run(),
        "ext4" => ext4::run(),
        "ext5" => ext5::run(),
        "ext6" => ext6::run(),
        "ext7" => ext7::run(),
        "ext8" => ext8::run(),
        "ext9" => ext9::run(),
        other => Err(pbc_types::PbcError::NotFound(format!(
            "experiment {other}; known: {}",
            EXPERIMENTS.join(", ")
        ))),
    }
}
