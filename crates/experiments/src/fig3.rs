//! Figure 3 — the six power-allocation scenario categories.
//!
//! RandomAccess on the IvyBridge node at `P_b` = 240 W: application
//! performance and actual component powers across the allocation sweep,
//! with every point labelled with its scenario, plus the contiguous
//! scenario spans (the paper's annotated regions).

use crate::fig1::one_budget_profile;
use crate::output::{ascii_chart, fmt, ExperimentOutput, TextTable};
use pbc_core::{
    classify_cpu_point, cpu_scenario_spans, CriticalPowers, PowerBoundedProblem,
};
use pbc_platform::presets::ivybridge;
use pbc_types::{Result, Watts};
use pbc_workloads::by_name;

/// Run the Fig. 3 reproduction.
#[must_use = "the experiment outcome carries I/O and solver failures"]
pub fn run() -> Result<ExperimentOutput> {
    let mut out = ExperimentOutput::new(
        "fig3",
        "Six scenario categories: SRA on IvyBridge at P_b = 240 W (perf + actual power)",
    );
    let platform = ivybridge();
    let cpu = platform.cpu().unwrap().clone();
    let dram = platform.dram().unwrap().clone();
    let sra = by_name("sra").unwrap();
    let cost = sra.demand.phases[0].1.pattern_cost;
    let criticals = CriticalPowers::probe(&cpu, &dram, &sra.demand);

    // The criticals probe above already populated the workload's shared
    // solve memo; the single-budget curve sweep reuses it.
    let problem = PowerBoundedProblem::new(platform, sra.demand.clone(), Watts::new(240.0))?;
    let profile = one_budget_profile(&problem, Watts::new(240.0))?;

    let mut t = TextTable::new(
        "SRA at 240 W: performance and actual powers per allocation",
        &[
            "P_cpu (W)",
            "P_mem (W)",
            "GUP/s",
            "perf (rel)",
            "CPU actual (W)",
            "DRAM actual (W)",
            "total actual (W)",
            "scenario",
        ],
    );
    for pt in &profile.points {
        let s = classify_cpu_point(&pt.op, &criticals, &dram, cost);
        t.push(vec![
            fmt(pt.alloc.proc.value()),
            fmt(pt.alloc.mem.value()),
            fmt(sra.natural_rate(&pt.op).rate),
            fmt(pt.op.perf_rel),
            fmt(pt.op.proc_power.value()),
            fmt(pt.op.mem_power.value()),
            fmt(pt.op.total_power().value()),
            s.to_string(),
        ]);
    }
    out.tables.push(t);

    let mut chart = TextTable::new(
        "Shape check: perf vs P_mem (compare with the paper's Fig. 3a)",
        &["chart"],
    );
    let pts: Vec<(f64, f64)> = profile
        .points
        .iter()
        .map(|pt| (pt.alloc.mem.value(), pt.op.perf_rel))
        .collect();
    chart.push(vec![ascii_chart(&pts, 56, 12)]);
    out.tables.push(chart);

    let spans = cpu_scenario_spans(&profile, &criticals, &dram, cost);
    let mut t = TextTable::new(
        "Scenario spans along the P_cpu axis (paper: VI | IV | II | I | III | V)",
        &["scenario", "P_cpu from (W)", "P_cpu to (W)", "P_mem from (W)", "P_mem to (W)"],
    );
    for (s, lo, hi) in &spans {
        t.push(vec![
            s.to_string(),
            fmt(lo.value()),
            fmt(hi.value()),
            fmt(240.0 - hi.value()),
            fmt(240.0 - lo.value()),
        ]);
    }
    out.tables.push(t);

    let mut t = TextTable::new(
        "Critical power values (lightweight profiling)",
        &["P_cpu_L1", "P_cpu_L2", "P_cpu_L3", "P_cpu_L4", "P_mem_L1", "P_mem_L2", "P_mem_L3"],
    );
    t.push(vec![
        fmt(criticals.cpu_l1.value()),
        fmt(criticals.cpu_l2.value()),
        fmt(criticals.cpu_l3.value()),
        fmt(criticals.cpu_l4.value()),
        fmt(criticals.mem_l1.value()),
        fmt(criticals.mem_l2.value()),
        fmt(criticals.mem_l3.value()),
    ]);
    out.tables.push(t);

    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_has_six_spans_in_paper_order() {
        let out = run().unwrap();
        let spans = out
            .tables
            .iter()
            .find(|t| t.title.contains("Scenario spans"))
            .unwrap();
        let order: Vec<&str> = spans.rows.iter().map(|r| r[0].as_str()).collect();
        assert_eq!(order, vec!["VI", "IV", "II", "I", "III", "V"], "{order:?}");
    }

    #[test]
    fn fig3_scenario_i_powers_are_the_paper_anchors() {
        // In scenario I the actual draws are constant near 112 W CPU and
        // 116 W DRAM.
        let out = run().unwrap();
        let data = out
            .tables
            .iter()
            .find(|t| t.title.contains("performance and actual powers"))
            .unwrap();
        let ones: Vec<&Vec<String>> =
            data.rows.iter().filter(|r| r[7] == "I").collect();
        assert!(!ones.is_empty());
        for r in ones {
            let cpu: f64 = r[4].parse().unwrap();
            let mem: f64 = r[5].parse().unwrap();
            assert!((cpu - 112.0).abs() < 8.0, "CPU actual {cpu}");
            assert!((mem - 116.0).abs() < 8.0, "DRAM actual {mem}");
        }
    }

    #[test]
    fn fig3_total_actual_respects_budget_except_vi() {
        let out = run().unwrap();
        let data = out
            .tables
            .iter()
            .find(|t| t.title.contains("performance and actual powers"))
            .unwrap();
        for r in &data.rows {
            let total: f64 = r[6].parse().unwrap();
            if r[7] != "VI" {
                assert!(total <= 240.0 + 1e-6, "{r:?}");
            }
        }
    }
}
