//! Figure 8 — performance profiles of every Table-3 benchmark on its
//! platforms.
//!
//! The universality check (§6.2): all benchmarks share the same category
//! patterns while differing in sensitivity (curve slope), category spans,
//! power magnitudes, and optimal allocation points. The full sweep data
//! goes to CSV; the terminal shows a per-benchmark summary.

use crate::fig1::one_budget_profile;
use crate::output::{fmt, ExperimentOutput, TextTable};
use pbc_core::PowerBoundedProblem;
use pbc_platform::presets::{haswell, ivybridge, titan_v, titan_xp};
use pbc_platform::Platform;
use pbc_types::{Result, Watts};
use pbc_workloads::{cpu_suite, gpu_suite, Benchmark};

/// The budget each suite is profiled at (comparable to the paper's plots).
fn profile_budget(platform: &Platform) -> Watts {
    if platform.is_gpu() {
        Watts::new(200.0)
    } else {
        Watts::new(208.0)
    }
}

fn profile_one(
    platform: &Platform,
    bench: &Benchmark,
    summary: &mut TextTable,
    curves: &mut TextTable,
) -> Result<()> {
    let budget = profile_budget(platform);
    // Single-budget curve sweep: repeats of the same (platform, demand)
    // pair across figures and tests share one solve memo.
    let problem = PowerBoundedProblem::new(platform.clone(), bench.demand.clone(), budget)?;
    let profile = one_budget_profile(&problem, budget)?;
    if profile.points.is_empty() {
        return Ok(());
    }
    for pt in &profile.points {
        curves.push(vec![
            bench.id.to_string(),
            platform.id.to_string(),
            fmt(budget.value()),
            fmt(pt.alloc.proc.value()),
            fmt(pt.alloc.mem.value()),
            fmt(pt.op.perf_rel),
            fmt(pt.op.proc_power.value()),
            fmt(pt.op.mem_power.value()),
        ]);
    }
    let best = profile.best().unwrap();
    let worst = profile.worst().unwrap();
    summary.push(vec![
        bench.id.to_string(),
        platform.id.to_string(),
        bench.class.to_string(),
        fmt(best.alloc.proc.value()),
        fmt(best.alloc.mem.value()),
        fmt(best.op.perf_rel),
        fmt(worst.op.perf_rel),
        fmt(profile.spread()),
    ]);
    Ok(())
}

/// Run the Fig. 8 reproduction.
#[must_use = "the experiment outcome carries I/O and solver failures"]
pub fn run() -> Result<ExperimentOutput> {
    let mut out = ExperimentOutput::new(
        "fig8",
        "Profiles of all Table-3 benchmarks across the platforms (universality of patterns)",
    );
    let mut summary = TextTable::new(
        "Per-benchmark profile summary",
        &[
            "benchmark",
            "platform",
            "class",
            "best P_proc (W)",
            "best P_mem (W)",
            "best perf",
            "worst perf",
            "spread (x)",
        ],
    );
    let mut curves = TextTable::new(
        "Full profile curves (CSV)",
        &[
            "benchmark",
            "platform",
            "P_b (W)",
            "P_proc (W)",
            "P_mem (W)",
            "perf (rel)",
            "proc actual (W)",
            "mem actual (W)",
        ],
    );
    for platform in [ivybridge(), haswell()] {
        for bench in cpu_suite() {
            profile_one(&platform, &bench, &mut summary, &mut curves)?;
        }
    }
    for platform in [titan_xp(), titan_v()] {
        for bench in gpu_suite() {
            profile_one(&platform, &bench, &mut summary, &mut curves)?;
        }
    }
    out.tables.push(summary);
    out.tables.push(curves);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbc_workloads::BenchClass;

    #[test]
    fn fig8_covers_every_benchmark_on_every_relevant_platform() {
        let out = run().unwrap();
        let summary = &out.tables[0];
        // 11 CPU benchmarks x 2 platforms + 6 GPU x 2 = 34 rows.
        assert_eq!(summary.rows.len(), 34, "{}", summary.rows.len());
    }

    #[test]
    fn fig8_class_determines_optimal_split_direction() {
        // §6.2: memory-intensive workloads demand more memory budget,
        // compute-intensive ones more processor budget. Check on
        // IvyBridge: the best split's processor share orders accordingly.
        let out = run().unwrap();
        let summary = &out.tables[0];
        let proc_share = |bench: &str| -> f64 {
            let r = summary
                .rows
                .iter()
                .find(|r| r[0] == bench && r[1] == "ivybridge")
                .unwrap();
            let proc: f64 = r[3].parse().unwrap();
            let mem: f64 = r[4].parse().unwrap();
            proc / (proc + mem)
        };
        assert!(proc_share("dgemm") > proc_share("mg") + 0.05);
        assert!(proc_share("bt") > proc_share("stream"));
    }

    #[test]
    fn fig8_cpu_spreads_dwarf_gpu_spreads() {
        let out = run().unwrap();
        let summary = &out.tables[0];
        let mut cpu_max: f64 = 0.0;
        let mut gpu_max: f64 = 0.0;
        for r in &summary.rows {
            let spread: f64 = r[7].parse().unwrap();
            if r[1].starts_with("titan") {
                gpu_max = gpu_max.max(spread);
            } else {
                cpu_max = cpu_max.max(spread);
            }
        }
        assert!(cpu_max > 5.0, "CPU max spread {cpu_max}");
        assert!(gpu_max < 3.0, "GPU max spread {gpu_max}");
    }

    #[test]
    fn fig8_memory_intensive_benchmarks_favor_memory() {
        let out = run().unwrap();
        let summary = &out.tables[0];
        for r in &summary.rows {
            if r[1] != "ivybridge" {
                continue;
            }
            let class = &r[2];
            let proc: f64 = r[3].parse().unwrap();
            let mem: f64 = r[4].parse().unwrap();
            if class == &BenchClass::MemoryIntensive.to_string() {
                assert!(
                    mem > 0.35 * (proc + mem),
                    "memory-intensive {} starves memory: {proc}/{mem}",
                    r[0]
                );
            }
        }
    }
}
