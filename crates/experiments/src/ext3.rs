//! Extension 3 — hybrid CPU+GPU node coordination (the §2.2 "hybrid
//! computing" future work).
//!
//! An offload application (host glue + device kernels) on an IvyBridge
//! host with a Titan XP: sweep the node budget and compare the
//! coordinated host/card split against the even split, for a GPU-heavy
//! and a balanced composition.

use crate::output::{fmt, ExperimentOutput, TextTable};
use pbc_core::{
    coordinate_hybrid, solve_hybrid_split, CriticalPowers, GpuCoordParams, HybridWorkload,
};
use pbc_platform::presets::{ivybridge, titan_xp};
use pbc_types::{Result, Watts};
use pbc_workloads::by_name;

/// Run the extension-3 evaluation.
#[must_use = "the experiment outcome carries I/O and solver failures"]
pub fn run() -> Result<ExperimentOutput> {
    let mut out = ExperimentOutput::new(
        "ext3",
        "Hybrid host+card coordination vs even split — IvyBridge + Titan XP",
    );
    let host = ivybridge();
    let card = titan_xp();
    let cpu = host.cpu().unwrap();
    let dram = host.dram().unwrap();
    let gpu = card.gpu().unwrap();

    for (label, gpu_share, gpu_bench) in [
        ("GPU-heavy (85% device, SGEMM kernels)", 0.85, "sgemm"),
        ("balanced (50% device, MiniFE kernels)", 0.50, "minife"),
    ] {
        let w = HybridWorkload {
            host_demand: by_name("cg").unwrap().demand,
            gpu_demand: by_name(gpu_bench).unwrap().demand,
            gpu_share,
            overlap: 0.0,
        };
        let host_criticals = CriticalPowers::probe(cpu, dram, &w.host_demand);
        let gpu_params = GpuCoordParams::profile(gpu, &w.gpu_demand)?;

        let mut t = TextTable::new(
            format!("{label}: node budget sweep"),
            &[
                "node budget (W)",
                "even-split perf",
                "coordinated perf",
                "gain (%)",
                "coordinated host/card (W)",
            ],
        );
        for budget in [360.0, 420.0, 480.0, 540.0] {
            let b = Watts::new(budget);
            let even = solve_hybrid_split(
                cpu,
                dram,
                gpu,
                &w,
                b / 2.0,
                b / 2.0,
                &host_criticals,
                &gpu_params,
            )?;
            let coord = coordinate_hybrid(cpu, dram, gpu, &w, b, Watts::new(10.0))?;
            let even_perf = even.map(|e| e.perf_rel).unwrap_or(0.0);
            t.push(vec![
                fmt(budget),
                fmt(even_perf),
                fmt(coord.perf_rel),
                fmt(if even_perf > 0.0 {
                    (coord.perf_rel / even_perf - 1.0) * 100.0
                } else {
                    f64::NAN
                }),
                format!(
                    "{:.0} / {:.0}",
                    coord.host_budget.value(),
                    coord.gpu_budget.value()
                ),
            ]);
        }
        out.tables.push(t);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hybrid_coordination_always_at_least_matches_even_split() {
        let out = run().unwrap();
        for t in &out.tables {
            for r in &t.rows {
                let even: f64 = r[1].parse().unwrap();
                let coord: f64 = r[2].parse().unwrap();
                assert!(coord >= even - 1e-9, "{}: {r:?}", t.title);
            }
        }
    }

    #[test]
    fn gpu_heavy_gains_most_at_tight_budgets() {
        let out = run().unwrap();
        let t = &out.tables[0]; // GPU-heavy table
        let tight_gain: f64 = t.rows[0][3].parse().unwrap();
        let loose_gain: f64 = t.rows[3][3].parse().unwrap();
        assert!(
            tight_gain >= loose_gain - 1.0,
            "gain at 360 W ({tight_gain}%) vs 540 W ({loose_gain}%)"
        );
        assert!(tight_gain > 3.0, "tight-budget gain {tight_gain}%");
    }
}
