//! Figure 6 — GPU `perf_max` vs power cap.
//!
//! SGEMM and MiniFE on the Titan XP and Titan V. What to look for (§4):
//! on the XP, SGEMM's bound keeps rising over the whole supported range
//! (it demands > 300 W) while MiniFE flattens near 180 W; on the V, SGEMM
//! flattens near 180 W and MiniFE is essentially flat over the studied
//! range. The default (memory-at-nominal) capper fails to reach the
//! best achievable performance at small caps.

use crate::fig1::budget_grid;
use crate::output::{fmt, sparkline, ExperimentOutput, TextTable};
use pbc_core::{
    flattening_budget, perf_max_curve, AllocationPolicy, Baseline, GpuCoordParams, GpuPolicy,
    PowerBoundedProblem, DEFAULT_STEP,
};
use pbc_platform::presets::{titan_v, titan_xp};
use pbc_platform::Platform;
use pbc_types::{Result, Watts};
use pbc_workloads::{by_name, Benchmark};

fn one_card(platform: Platform, bench: &Benchmark, out: &mut ExperimentOutput) -> Result<()> {
    let gpu = platform.gpu().unwrap().clone();
    let params = GpuCoordParams::profile(&gpu, &bench.demand)?;
    let default_policy = GpuPolicy {
        baseline: Baseline::NvidiaDefault,
        gpu: &gpu,
        params: &params,
    };
    let tmpl = PowerBoundedProblem::new(platform.clone(), bench.demand.clone(), Watts::new(200.0))?;
    let lo = gpu.min_card_cap.value() + 5.0;
    let curve = perf_max_curve(&tmpl, budget_grid(lo, 300.0, 7.0), DEFAULT_STEP)?;

    let mut t = TextTable::new(
        format!("{} on {}: perf_max vs card cap", bench.id, platform.id),
        &["cap (W)", "perf_max (rel)", "best P_mem (W)", "default-capper perf", "gap (%)"],
    );
    let mut series = Vec::new();
    for c in &curve {
        let default_perf = default_policy
            .allocate(c.budget)
            .and_then(|alloc| pbc_powersim::solve(&platform, &bench.demand, alloc))
            .map(|op| op.perf_rel)
            .unwrap_or(0.0);
        let gap = if default_perf > 0.0 {
            (c.perf_max / default_perf - 1.0) * 100.0
        } else {
            0.0
        };
        series.push(c.perf_max);
        t.push(vec![
            fmt(c.budget.value()),
            fmt(c.perf_max),
            fmt(c.best_alloc.mem.value()),
            fmt(default_perf),
            fmt(gap),
        ]);
    }
    out.tables.push(t);

    let mut s = TextTable::new(
        format!("{} on {}: summary", bench.id, platform.id),
        &["shape", "flattens at (W)", "perf at max cap"],
    );
    let flat = flattening_budget(&curve, 0.01);
    s.push(vec![
        sparkline(&series),
        flat.map(|w| fmt(w.value())).unwrap_or_else(|| "-".into()),
        fmt(curve.last().map(|c| c.perf_max).unwrap_or(0.0)),
    ]);
    out.tables.push(s);
    Ok(())
}

/// Run the Fig. 6 reproduction.
#[must_use = "the experiment outcome carries I/O and solver failures"]
pub fn run() -> Result<ExperimentOutput> {
    let mut out = ExperimentOutput::new(
        "fig6",
        "GPU upper performance bound vs power cap (SGEMM, MiniFE on Titan XP and Titan V)",
    );
    for bench_name in ["sgemm", "minife"] {
        let bench = by_name(bench_name).unwrap();
        one_card(titan_xp(), &bench, &mut out)?;
        one_card(titan_v(), &bench, &mut out)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat_of(out: &ExperimentOutput, title: &str) -> Option<f64> {
        let t = out.tables.iter().find(|t| t.title.contains(title)).unwrap();
        t.rows[0][1].parse().ok()
    }

    #[test]
    fn fig6_flattening_points_match_the_paper() {
        let out = run().unwrap();
        // SGEMM on XP: still rising at the top of the range — its
        // flattening point is the last budget (>= 290 W).
        let sgemm_xp = flat_of(&out, "sgemm on titan-xp: summary").unwrap();
        assert!(sgemm_xp >= 290.0, "SGEMM XP flattens at {sgemm_xp}");
        // MiniFE on XP: flattens near 180 W.
        let minife_xp = flat_of(&out, "minife on titan-xp: summary").unwrap();
        assert!((160.0..=200.0).contains(&minife_xp), "MiniFE XP at {minife_xp}");
        // SGEMM on V: flattens near 180 W.
        let sgemm_v = flat_of(&out, "sgemm on titan-v: summary").unwrap();
        assert!((165.0..=205.0).contains(&sgemm_v), "SGEMM V at {sgemm_v}");
        // MiniFE on V: essentially flat — flattening point near the bottom
        // of the studied range.
        let minife_v = flat_of(&out, "minife on titan-v: summary").unwrap();
        assert!(minife_v <= 140.0, "MiniFE V at {minife_v}");
    }

    #[test]
    fn fig6_default_capper_lags_at_small_caps() {
        // §4: "the default power capping mechanism for Nvidia GPUs fails
        // to reach the maximum performance".
        let out = run().unwrap();
        let t = out
            .tables
            .iter()
            .find(|t| t.title.contains("sgemm on titan-xp: perf_max"))
            .unwrap();
        let first = &t.rows[0]; // smallest cap
        let gap: f64 = first[4].parse().unwrap();
        assert!(gap > 5.0, "default-capper gap at the smallest cap: {gap}%");
    }
}
