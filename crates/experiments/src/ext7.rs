//! Extension 7 — cluster-scale coordination under one global budget.
//!
//! The paper coordinates components inside a single node and closes by
//! calling for an "upper level" above it. This extension measures that
//! level at fleet scale: mixed fleets of 8, 32, and 128 nodes share one
//! global budget, and the hierarchical coordinator (marginal-gain
//! water-filling over per-class `perf_max ~ P_b` curves, then per-node
//! COORD on each share) is compared against a uniform split of the same
//! budget and against the per-node oracle ceiling.

use crate::output::{fmt, ExperimentOutput, TextTable};
use pbc_cluster::{ClusterCoordinator, Fleet, SpecLine};
use pbc_types::{Result, Watts};

/// The class mix every fleet cycles through: memory-bound and
/// compute-bound hosts plus two generations of GPU cards.
const MIX: [(&str, &str); 5] = [
    ("ivybridge", "stream"),
    ("haswell", "dgemm"),
    ("ivybridge", "sra"),
    ("titan-xp", "sgemm"),
    ("titan-v", "minife"),
];

/// Fleet sizes the table sweeps.
const SIZES: [usize; 3] = [8, 32, 128];

/// Global budget per node — comfortably above every class floor but
/// well below the fleet's aggregate demand, so the partitioner has real
/// choices to make.
const WATTS_PER_NODE: f64 = 130.0;

/// Build an `n`-node fleet cycling through the class mix (ext8 reuses
/// the same fleets for its survival table).
#[must_use = "building a fleet profiles its classes; the result is the point"]
pub(crate) fn fleet_of(n: usize) -> Result<Fleet> {
    let mut spec = Vec::new();
    for (i, (platform, bench)) in MIX.iter().enumerate() {
        let count = n / MIX.len() + usize::from(i < n % MIX.len());
        if count > 0 {
            spec.push(SpecLine {
                count,
                platform: (*platform).to_string(),
                bench: (*bench).to_string(),
            });
        }
    }
    Fleet::build(&spec)
}

/// Run the extension-7 evaluation.
#[must_use = "the experiment output is the whole point of the run"]
pub fn run() -> Result<ExperimentOutput> {
    let mut out = ExperimentOutput::new(
        "ext7",
        "Cluster coordination: hierarchical COORD vs uniform split vs oracle at 8/32/128 nodes",
    );
    let mut t = TextTable::new(
        "Aggregate relative throughput under one global budget (130 W/node)",
        &[
            "nodes",
            "budget (W)",
            "COORD",
            "uniform",
            "oracle",
            "COORD/uniform",
            "COORD/oracle",
        ],
    );
    for n in SIZES {
        let fleet = fleet_of(n)?;
        let global = Watts::new(WATTS_PER_NODE * n as f64);
        let coordinator = ClusterCoordinator::new(fleet, global)?;
        let smart = coordinator.coordinate()?;
        let naive = coordinator.uniform_decision()?;
        let oracle = coordinator.oracle_aggregate()?;
        t.push(vec![
            n.to_string(),
            fmt(global.value()),
            fmt(smart.aggregate_perf),
            fmt(naive.aggregate_perf),
            fmt(oracle),
            fmt(smart.aggregate_perf / naive.aggregate_perf.max(1e-9)),
            fmt(smart.aggregate_perf / oracle.max(1e-9)),
        ]);
    }
    out.tables.push(t);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coordination_beats_uniform_at_every_scale() {
        for n in SIZES {
            let fleet = fleet_of(n).unwrap();
            assert_eq!(fleet.len(), n);
            let global = Watts::new(WATTS_PER_NODE * n as f64);
            let coordinator = ClusterCoordinator::new(fleet, global).unwrap();
            let smart = coordinator.coordinate().unwrap();
            let naive = coordinator.uniform_decision().unwrap();
            let oracle = coordinator.oracle_aggregate().unwrap();
            assert!(
                smart.aggregate_perf > naive.aggregate_perf,
                "{n} nodes: COORD {} <= uniform {}",
                smart.aggregate_perf,
                naive.aggregate_perf
            );
            assert!(
                smart.aggregate_perf <= oracle + 1e-6,
                "{n} nodes: COORD {} beat the oracle {}",
                smart.aggregate_perf,
                oracle
            );
        }
    }

    #[test]
    fn table_renders_every_scale() {
        let out = run().unwrap();
        let text = out.render();
        for n in SIZES {
            assert!(text.contains(&n.to_string()), "missing {n} in:\n{text}");
        }
        assert!(text.contains("COORD/uniform"));
    }
}
