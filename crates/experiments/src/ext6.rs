//! Extension 6 — chaos survival across the shipped fault plans.
//!
//! The paper assumes clean sensors, reliable cap writes, and a fixed
//! `P_b`. This extension drives the hardened online loop through every
//! named [`pbc_faults::FaultPlan`] and tabulates what it took to keep
//! the budget invariant intact: retries burned, rollbacks forced,
//! observations rejected, watchdog fallbacks — and whether the search
//! still converged once the plan went quiet.

use crate::output::{fmt, ExperimentOutput, TextTable};
use pbc_faults::{plan::NAMES, run_chaos, FaultPlan};
use pbc_platform::presets::ivybridge;
use pbc_types::{PbcError, Result, Watts};

/// Seed every plan is run at (arbitrary, fixed for reproducibility).
const SEED: u64 = 42;
/// Epochs per plan: long enough for every shipped plan to go quiet and
/// the search to re-converge afterwards.
const EPOCHS: usize = 200;

/// Run the extension-6 evaluation.
#[must_use = "the experiment output is the whole point of the run"]
pub fn run() -> Result<ExperimentOutput> {
    let mut out = ExperimentOutput::new(
        "ext6",
        "Chaos survival: the online loop under every shipped fault plan — IvyBridge STREAM, 208 W",
    );
    let platform = ivybridge();
    let budget = Watts::new(208.0);

    let mut t = TextTable::new(
        "Survival under fault injection (seed 42, 200 epochs)",
        &[
            "plan",
            "injected",
            "retries",
            "rollbacks",
            "rejected obs",
            "fallbacks",
            "clamps",
            "max total (W)",
            "violations",
            "final perf",
            "verdict",
        ],
    );
    for name in NAMES {
        let plan = FaultPlan::by_name(name, SEED)
            .ok_or_else(|| PbcError::NotFound(format!("fault plan {name:?}")))?;
        let report = run_chaos(&platform, "stream", budget, &plan, EPOCHS)?;
        t.push(vec![
            name.to_string(),
            report.tally.injected().to_string(),
            report.enforce_retries.to_string(),
            report.enforce_rollbacks.to_string(),
            report.rejected_observations.to_string(),
            report.fallbacks.to_string(),
            report.clamps.to_string(),
            fmt(report.max_enforced_total.value()),
            report.budget_violations.to_string(),
            fmt(report.final_perf),
            if report.survived() { "SURVIVED" } else { "DIED" }.to_string(),
        ]);
    }
    out.tables.push(t);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_plan_survives_and_renders() {
        let out = run().unwrap();
        let text = out.render();
        for name in NAMES {
            assert!(text.contains(name), "missing plan {name} in:\n{text}");
        }
        assert!(text.contains("SURVIVED"));
        assert!(!text.contains("DIED"));
    }
}
