//! Extension 2 — per-socket coordination under workload imbalance (the
//! paper's §2.2 future work).
//!
//! Sweep the imbalance factor on a dual-socket IvyBridge node and compare
//! the even per-socket split (the paper's assumption (b)) against
//! coordinated per-socket caps. The node-level lesson repeats one level
//! down: even splits strand watts on the light socket exactly when the
//! loaded one throttles.

use crate::output::{fmt, ExperimentOutput, TextTable};
use pbc_powersim::{coordinate_sockets, solve_per_socket};
use pbc_platform::presets::ivybridge;
use pbc_types::{Result, Watts};
use pbc_workloads::by_name;

/// Run the extension-2 evaluation.
#[must_use = "the experiment outcome carries I/O and solver failures"]
pub fn run() -> Result<ExperimentOutput> {
    let mut out = ExperimentOutput::new(
        "ext2",
        "Per-socket coordination under imbalance — dual-socket IvyBridge, DGEMM",
    );
    let platform = ivybridge();
    let cpu = platform.cpu().unwrap();
    let dram = platform.dram().unwrap();
    let dgemm = by_name("dgemm").unwrap();
    let mem_cap = Watts::new(80.0);

    for proc_budget in [100.0, 120.0, 140.0] {
        let budget = Watts::new(proc_budget);
        let mut t = TextTable::new(
            format!("proc budget {proc_budget} W: even vs coordinated per-socket caps"),
            &[
                "share split",
                "even perf",
                "coordinated perf",
                "gain (%)",
                "coordinated caps (W)",
                "pacing socket",
            ],
        );
        for heavy in [0.50, 0.55, 0.60, 0.65, 0.70, 0.80] {
            let shares = [heavy, 1.0 - heavy];
            let even = solve_per_socket(
                cpu,
                dram,
                &dgemm.demand,
                &[budget / 2.0, budget / 2.0],
                mem_cap,
                &shares,
            )?;
            let coord = coordinate_sockets(cpu, dram, &dgemm.demand, budget, mem_cap, &shares)?;
            t.push(vec![
                format!("{:.0}/{:.0}", heavy * 100.0, (1.0 - heavy) * 100.0),
                fmt(even.perf_rel),
                fmt(coord.perf_rel),
                fmt((coord.perf_rel / even.perf_rel - 1.0) * 100.0),
                format!(
                    "({:.0}, {:.0})",
                    coord.socket_caps[0].value(),
                    coord.socket_caps[1].value()
                ),
                coord.critical_socket.to_string(),
            ]);
        }
        out.tables.push(t);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coordination_gain_grows_with_imbalance() {
        let out = run().unwrap();
        let t = &out.tables[1]; // 120 W table
        let gain = |row: usize| -> f64 { t.rows[row][3].parse().unwrap() };
        // Balanced row: negligible gain; 70/30 row: substantial.
        assert!(gain(0) < 3.0, "balanced gain {}", gain(0));
        let skewed = gain(4);
        assert!(skewed > 10.0, "70/30 gain {skewed}");
        // Gain is (weakly) monotone in imbalance over the scanned range.
        assert!(gain(5) >= gain(1) - 1.0);
    }
}
