//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro list              # show available experiments
//! repro fig3              # run one experiment, print its tables
//! repro all               # run everything
//! repro fig9 --out results/   # also write CSV series
//! repro all --trace t.jsonl   # also record a pbc-trace of the run
//! ```

use pbc_experiments::{run, EXPERIMENTS};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: repro <experiment|all|list> [--out DIR] [--trace FILE]");
    eprintln!("experiments: {}", EXPERIMENTS.join(", "));
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut target: Option<String> = None;
    let mut out_dir: Option<PathBuf> = None;
    let mut trace_path: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                if i + 1 >= args.len() {
                    return usage();
                }
                out_dir = Some(PathBuf::from(&args[i + 1]));
                i += 2;
            }
            "--trace" => {
                if i + 1 >= args.len() {
                    return usage();
                }
                trace_path = Some(PathBuf::from(&args[i + 1]));
                i += 2;
            }
            "-h" | "--help" => return usage(),
            other if target.is_none() => {
                target = Some(other.to_string());
                i += 1;
            }
            _ => return usage(),
        }
    }
    let Some(target) = target else { return usage() };

    if target == "list" {
        for e in EXPERIMENTS {
            println!("{e}");
        }
        return ExitCode::SUCCESS;
    }

    let names: Vec<&str> = if target == "all" {
        EXPERIMENTS.to_vec()
    } else {
        vec![target.as_str()]
    };

    if trace_path.is_some() {
        pbc_trace::enable();
    }

    for name in names {
        let _span = pbc_trace::span(&format!("experiment.{name}"));
        match run(name) {
            Ok(output) => {
                println!("{}", output.render());
                if let Some(dir) = &out_dir {
                    if let Err(e) = std::fs::create_dir_all(dir) {
                        eprintln!("cannot create {}: {e}", dir.display());
                        return ExitCode::FAILURE;
                    }
                    for (file, contents) in output.csv_files() {
                        let path = dir.join(file);
                        if let Err(e) = std::fs::write(&path, contents) {
                            eprintln!("cannot write {}: {e}", path.display());
                            return ExitCode::FAILURE;
                        }
                        eprintln!("wrote {}", path.display());
                    }
                }
            }
            Err(e) => {
                eprintln!("{name}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some(path) = trace_path {
        pbc_trace::disable();
        if let Err(e) = pbc_trace::export(&path) {
            eprintln!("could not write trace to {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {}", path.display());
    }
    ExitCode::SUCCESS
}
