//! Figure 7 — GPU performance trends as the memory allocation grows,
//! under various total caps.
//!
//! The three application patterns of §4 on the Titan XP (and the
//! memory-bound behaviour of the Titan V):
//!
//! 1. compute-intensive (SGEMM): best at *minimum* memory power; curves
//!    flat (cat. I) at large caps, decreasing (cat. II) at small caps;
//! 2. memory-intensive (STREAM, MiniFE): perf rises with memory power
//!    (cat. III) and the curves for different caps overlap;
//! 3. in-between (Cloverleaf): rises then falls at small caps; curves
//!    diverge.

use crate::output::{fmt, ExperimentOutput, TextTable};
use pbc_core::{classify_gpu_point, sweep_curve, PowerBoundedProblem, DEFAULT_STEP};
use pbc_platform::presets::{titan_v, titan_xp};
use pbc_platform::Platform;
use pbc_types::{Result, Watts};
use pbc_workloads::{by_name, Benchmark};

const CAPS: [f64; 5] = [140.0, 170.0, 200.0, 230.0, 260.0];

fn one_bench(platform: &Platform, bench: &Benchmark, out: &mut ExperimentOutput) -> Result<()> {
    let gpu = platform.gpu().unwrap().clone();
    let bw_demand = gpu.mem.max_bandwidth.value()
        * bench
            .demand
            .phases
            .first()
            .map(|(_, p)| p.bw_saturation)
            .unwrap_or(1.0);
    let mut t = TextTable::new(
        format!("{} on {}: perf vs P_mem under total caps", bench.id, platform.id),
        &["cap (W)", "P_mem (W)", "perf (rel)", "category"],
    );
    let mut trend = TextTable::new(
        format!("{} on {}: per-cap trend", bench.id, platform.id),
        &["cap (W)", "perf @ min P_mem", "perf @ max P_mem", "direction"],
    );
    // One shared-grid curve sweep over all caps: reclaiming cards
    // collapse to a handful of distinct solves per memory level, so most
    // of the union grid is served from the solve memo.
    let tmpl =
        PowerBoundedProblem::new(platform.clone(), bench.demand.clone(), Watts::new(CAPS[0]))?;
    let caps: Vec<Watts> = CAPS.iter().map(|&c| Watts::new(c)).collect();
    let profiles = sweep_curve(&tmpl, &caps, DEFAULT_STEP)?;
    for profile in &profiles {
        let cap = profile.budget.value();
        // A cap below the card's settable range yields an empty profile;
        // skip it exactly as the per-budget sweep did.
        if profile.points.is_empty() {
            continue;
        }
        // Order by memory allocation ascending.
        let mut pts = profile.points.clone();
        pts.sort_by(|a, b| a.alloc.mem.partial_cmp(&b.alloc.mem).unwrap());
        for pt in &pts {
            let cat = classify_gpu_point(&pt.op, &gpu, bw_demand);
            t.push(vec![
                fmt(cap),
                fmt(pt.alloc.mem.value()),
                fmt(pt.op.perf_rel),
                cat.to_string(),
            ]);
        }
        let first = pts.first().unwrap().op.perf_rel;
        let last = pts.last().unwrap().op.perf_rel;
        let dir = if last > first * 1.02 {
            "rising"
        } else if last < first * 0.98 {
            "falling"
        } else {
            "flat"
        };
        trend.push(vec![fmt(cap), fmt(first), fmt(last), dir.into()]);
    }
    out.tables.push(trend);
    out.tables.push(t);
    Ok(())
}

/// Run the Fig. 7 reproduction.
#[must_use = "the experiment outcome carries I/O and solver failures"]
pub fn run() -> Result<ExperimentOutput> {
    let mut out = ExperimentOutput::new(
        "fig7",
        "GPU performance vs memory power allocation under various total caps",
    );
    let xp = titan_xp();
    let v = titan_v();
    for bench_name in ["sgemm", "gpu-stream", "minife", "cloverleaf"] {
        let bench = by_name(bench_name).unwrap();
        one_bench(&xp, &bench, &mut out)?;
    }
    for bench_name in ["sgemm", "gpu-stream", "minife"] {
        let bench = by_name(bench_name).unwrap();
        one_bench(&v, &bench, &mut out)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trend_rows<'a>(out: &'a ExperimentOutput, title: &str) -> &'a TextTable {
        out.tables.iter().find(|t| t.title.contains(title)).unwrap()
    }

    #[test]
    fn fig7_sgemm_never_gains_from_memory_power() {
        let out = run().unwrap();
        let t = trend_rows(&out, "sgemm on titan-xp: per-cap trend");
        for r in &t.rows {
            assert_ne!(r[3], "rising", "SGEMM must not gain from P_mem: {r:?}");
        }
        // And at the smallest cap it actively loses (category II).
        assert_eq!(t.rows[0][3], "falling", "{:?}", t.rows[0]);
    }

    #[test]
    fn fig7_stream_gains_from_memory_power() {
        let out = run().unwrap();
        let t = trend_rows(&out, "gpu-stream on titan-xp: per-cap trend");
        // At generous caps the memory-bound benchmark rises with P_mem.
        let last = t.rows.last().unwrap();
        assert_eq!(last[3], "rising", "{last:?}");
    }

    #[test]
    fn fig7_stream_overlapping_curves_at_large_caps() {
        // §4: for memory-intensive apps "the performance curves with
        // different P_b's overlap" (category III): perf at max P_mem is
        // nearly identical for the two largest caps.
        let out = run().unwrap();
        let t = trend_rows(&out, "gpu-stream on titan-xp: per-cap trend");
        let big: Vec<f64> = t
            .rows
            .iter()
            .rev()
            .take(2)
            .map(|r| r[2].parse().unwrap())
            .collect();
        assert!((big[0] - big[1]).abs() < 0.05, "{big:?}");
    }

    #[test]
    fn fig7_titan_v_is_memory_bound() {
        // §4: "On Titan V, application performance is generally memory
        // bounded, and increases with memory power allocation."
        let out = run().unwrap();
        let t = trend_rows(&out, "minife on titan-v: per-cap trend");
        let last = t.rows.last().unwrap();
        assert!(last[3] == "rising" || last[3] == "flat", "{last:?}");
    }
}
