//! Experiment output: aligned text tables for the terminal, CSV series for
//! plotting, and tiny ASCII sparkline charts for quick shape checks.

use std::fmt::Write as _;

/// One rendered table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextTable {
    /// Table caption.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Row cells (stringified by the producer).
    pub rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Build a table; row widths may be ragged (short rows are padded).
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn push(&mut self, row: Vec<String>) {
        self.rows.push(row);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self
            .headers
            .len()
            .max(self.rows.iter().map(|r| r.len()).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let empty = String::new();
                let cell = cells.get(i).unwrap_or(&empty);
                let _ = write!(line, "{:<width$}  ", cell, width = w);
            }
            line.trim_end().to_string()
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        let _ = writeln!(out, "{}", "-".repeat(total.min(120)));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// The same data as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| -> String {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let _ = writeln!(
            out,
            "{}",
            self.headers.iter().map(|h| esc(h)).collect::<Vec<_>>().join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

/// A complete experiment result.
#[derive(Debug, Clone)]
pub struct ExperimentOutput {
    /// Short name (`fig3`, `table1`, ...).
    pub name: String,
    /// What the paper artifact shows and what to look for here.
    pub description: String,
    /// Rendered tables, in display order.
    pub tables: Vec<TextTable>,
}

impl ExperimentOutput {
    /// Create an output container.
    pub fn new(name: impl Into<String>, description: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            description: description.into(),
            tables: Vec::new(),
        }
    }

    /// Render the whole experiment as terminal text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {} — {}\n", self.name, self.description);
        for t in &self.tables {
            let _ = writeln!(out, "{}", t.render());
        }
        out
    }

    /// `(filename, contents)` pairs for CSV export.
    pub fn csv_files(&self) -> Vec<(String, String)> {
        self.tables
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let slug: String = t
                    .title
                    .chars()
                    .map(|c| if c.is_alphanumeric() { c.to_ascii_lowercase() } else { '_' })
                    .collect::<String>()
                    .split('_')
                    .filter(|s| !s.is_empty())
                    .collect::<Vec<_>>()
                    .join("_");
                (format!("{}_{:02}_{}.csv", self.name, i, slug), t.to_csv())
            })
            .collect()
    }
}

/// A one-line ASCII sparkline of a series (for quick shape checks in the
/// terminal: the Fig. 2 "rise then flatten" is visible at a glance).
pub fn sparkline(values: &[f64]) -> String {
    const TICKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-12);
    values
        .iter()
        .map(|v| {
            let t = ((v - lo) / span * 7.0).round() as usize;
            TICKS[t.min(7)]
        })
        .collect()
}

/// A fixed-size ASCII scatter/line chart for terminal output: `points`
/// are `(x, y)` pairs; the chart is `width x height` characters with
/// simple min/max axis labels. Used by the `repro` harness so the
/// figure *shapes* (the thing this reproduction is judged on) are visible
/// without leaving the terminal.
pub fn ascii_chart(points: &[(f64, f64)], width: usize, height: usize) -> String {
    if points.is_empty() || width < 8 || height < 3 {
        return String::new();
    }
    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in points {
        x_min = x_min.min(x);
        x_max = x_max.max(x);
        y_min = y_min.min(y);
        y_max = y_max.max(y);
    }
    let x_span = (x_max - x_min).max(1e-12);
    let y_span = (y_max - y_min).max(1e-12);
    let mut grid = vec![vec![' '; width]; height];
    for &(x, y) in points {
        let cx = (((x - x_min) / x_span) * (width - 1) as f64).round() as usize;
        let cy = (((y - y_min) / y_span) * (height - 1) as f64).round() as usize;
        grid[height - 1 - cy][cx] = '*';
    }
    let mut out = String::new();
    for (i, row) in grid.iter().enumerate() {
        let label = if i == 0 {
            format!("{y_max:>9.2} |")
        } else if i == height - 1 {
            format!("{y_min:>9.2} |")
        } else {
            format!("{:>9} |", "")
        };
        let _ = writeln!(out, "{label}{}", row.iter().collect::<String>());
    }
    let _ = writeln!(out, "{:>10}+{}", "", "-".repeat(width));
    let _ = writeln!(
        out,
        "{:>11}{:<.1} .. {:.1}",
        "", x_min, x_max
    );
    out
}

/// Format a float with sensible precision for tables.
pub fn fmt(v: f64) -> String {
    if pbc_types::is_zero(v) {
        "0".into()
    } else if v.abs() >= 100.0 {
        format!("{v:.1}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_render_aligns() {
        let mut t = TextTable::new("demo", &["a", "bbbb", "c"]);
        t.push(vec!["1".into(), "2".into(), "3".into()]);
        t.push(vec!["10".into(), "20".into()]);
        let r = t.render();
        assert!(r.contains("== demo =="));
        assert!(r.lines().count() >= 5);
        // Header line pads the short column name to the width of "bbbb".
        let header = r.lines().nth(1).unwrap();
        assert!(header.starts_with("a   bbbb  c"));
    }

    #[test]
    fn csv_escapes() {
        let mut t = TextTable::new("x", &["name", "v"]);
        t.push(vec!["has,comma".into(), "1".into()]);
        t.push(vec!["has\"quote".into(), "2".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"has,comma\""));
        assert!(csv.contains("\"has\"\"quote\""));
    }

    #[test]
    fn sparkline_shape() {
        let s = sparkline(&[0.0, 0.5, 1.0]);
        assert_eq!(s.chars().count(), 3);
        assert!(s.starts_with('▁'));
        assert!(s.ends_with('█'));
        assert_eq!(sparkline(&[]), "");
    }

    #[test]
    fn csv_filenames_are_slugged() {
        let mut out = ExperimentOutput::new("fig1", "demo");
        out.tables.push(TextTable::new("CPU STREAM, perf vs P_b", &["x"]));
        let files = out.csv_files();
        assert_eq!(files.len(), 1);
        assert!(files[0].0.starts_with("fig1_00_cpu_stream"), "{}", files[0].0);
        assert!(files[0].0.ends_with(".csv"));
    }

    #[test]
    fn ascii_chart_shape() {
        let pts: Vec<(f64, f64)> = (0..20).map(|i| (i as f64, (i * i) as f64)).collect();
        let chart = ascii_chart(&pts, 40, 10);
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 12); // 10 rows + axis + x labels
        // Extremes are plotted: top row has a star near the right, bottom
        // row near the left.
        assert!(lines[0].contains('*'));
        assert!(lines[9].contains('*'));
        assert!(lines[0].rfind('*').unwrap() > lines[9].find('*').unwrap());
        // Axis labels show the y range.
        assert!(lines[0].contains("361.00"));
        assert!(lines[9].contains("0.00"));
    }

    #[test]
    fn ascii_chart_degenerate_inputs() {
        assert_eq!(ascii_chart(&[], 40, 10), "");
        assert_eq!(ascii_chart(&[(1.0, 1.0)], 4, 2), "");
        // A single point still renders without panicking.
        let one = ascii_chart(&[(5.0, 5.0)], 20, 5);
        assert!(one.contains('*'));
    }

    #[test]
    fn fmt_precision() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(123.456), "123.5");
        assert_eq!(fmt(12.345), "12.35");
        assert_eq!(fmt(0.1234), "0.1234");
    }
}
