//! Extension 8 — fleet survival under injected faults.
//!
//! Extension 7 asked how much a hierarchical coordinator wins when
//! nothing goes wrong; this one asks what it costs to keep the global
//! bound when things do. Each row replays one deterministic
//! [`pbc_faults::FleetFaultPlan`] through the full chaos harness —
//! health machine, supervised enforcement, static-fallback degraded
//! mode, mock RAPL tree as the cap sink — and reports availability,
//! time-to-reconverge, and work retained against the never-fails
//! oracle (the coordinated aggregate at the initial budget, every
//! epoch). The two invariants every row must hold are the point of the
//! table: zero budget violations and zero quarantine leaks, at every
//! fleet size, under every plan.

use crate::ext7::fleet_of;
use crate::output::{fmt, ExperimentOutput, TextTable};
use pbc_cluster::run_cluster_chaos;
use pbc_faults::FleetFaultPlan;
use pbc_types::{Result, Watts};

/// The plans the table sweeps — the survival-relevant presets, calm
/// first as the control row.
const PLANS: [&str; 6] = [
    "calm",
    "node-crash",
    "node-rejoin",
    "stragglers",
    "report-loss",
    "everything",
];

/// Fleet sizes the table sweeps (128 is ext7's headline scale; chaos
/// replays every epoch, so the survival table stops at 32).
const SIZES: [usize; 2] = [8, 32];

/// Global budget per node, matching ext7.
const WATTS_PER_NODE: f64 = 130.0;

/// The one seed the table prints. The test suite sweeps many more;
/// determinism makes any single seed representative rather than lucky.
const SEED: u64 = 42;

/// Run the extension-8 evaluation.
#[must_use = "the experiment output is the whole point of the run"]
pub fn run() -> Result<ExperimentOutput> {
    let mut out = ExperimentOutput::new(
        "ext8",
        "Fleet fault tolerance: availability, reconvergence, and work retained under chaos plans",
    );
    let mut t = TextTable::new(
        "Survival under injected faults (130 W/node, seed 42; work is relative to the \
         never-fails oracle)",
        &[
            "plan",
            "nodes",
            "epochs",
            "avail",
            "reconv@",
            "work/oracle",
            "drops",
            "quar",
            "rejoin",
            "degr",
            "verdict",
        ],
    );
    for n in SIZES {
        for plan_name in PLANS {
            let plan = FleetFaultPlan::by_name(plan_name, SEED).ok_or_else(|| {
                pbc_types::PbcError::NotFound(format!("fleet fault plan {plan_name}"))
            })?;
            let fleet = fleet_of(n)?;
            let global = Watts::new(WATTS_PER_NODE * n as f64);
            let chaos = run_cluster_chaos(fleet, global, &plan, 0)?;
            let r = &chaos.report;
            t.push(vec![
                plan_name.to_string(),
                n.to_string(),
                chaos.epochs.to_string(),
                fmt(r.availability),
                match r.reconverged_at {
                    Some(tick) => tick.to_string(),
                    None => "never".to_string(),
                },
                fmt(chaos.work_ratio()),
                r.dropouts.to_string(),
                r.quarantines.to_string(),
                r.rejoins.to_string(),
                r.degraded_epochs.to_string(),
                if chaos.survived() { "SURVIVED" } else { "DIED" }.to_string(),
            ]);
        }
    }
    out.tables.push(t);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_row_survives_and_reconverges() {
        let out = run().unwrap();
        let t = &out.tables[0];
        assert_eq!(t.rows.len(), PLANS.len() * SIZES.len());
        for row in &t.rows {
            assert_eq!(
                row.last().unwrap(),
                "SURVIVED",
                "plan {} at {} nodes died",
                row[0],
                row[1]
            );
            assert_ne!(
                row[4], "never",
                "plan {} at {} nodes never reconverged",
                row[0], row[1]
            );
        }
    }

    #[test]
    fn calm_rows_are_the_control() {
        let out = run().unwrap();
        for row in &out.tables[0].rows {
            if row[0] == "calm" {
                assert_eq!(row[6], "0", "calm run dropped nodes");
                assert_eq!(row[9], "0", "calm run degraded");
            }
        }
    }
}
