//! Figure 2 — `perf_max ~ P_b` for DGEMM and RandomAccess on the two CPU
//! platforms.
//!
//! The paper's observations to reproduce: the curve rises monotonically in
//! segments and flattens (DGEMM on IvyBridge near 240 W); DGEMM gains
//! faster and demands more power than the memory-bound workloads; Haswell
//! wins at small budgets (DDR4) while both platforms draw similar power at
//! max performance.

use crate::fig1::budget_grid;
use crate::output::{fmt, sparkline, ExperimentOutput, TextTable};
use pbc_core::{flattening_budget, perf_max_curve, PowerBoundedProblem, DEFAULT_STEP};
use pbc_platform::presets::{haswell, ivybridge};
use pbc_platform::Platform;
use pbc_types::{Result, Watts};
use pbc_workloads::{by_name, Benchmark};

fn one_curve(
    platform: Platform,
    bench: &Benchmark,
    out: &mut ExperimentOutput,
) -> Result<Vec<f64>> {
    let tmpl = PowerBoundedProblem::new(platform, bench.demand.clone(), Watts::new(200.0))?;
    let curve = perf_max_curve(&tmpl, budget_grid(96.0, 300.0, 8.0), DEFAULT_STEP)?;
    let mut t = TextTable::new(
        format!("{} on {}: perf_max vs P_b", bench.id, tmpl.platform.id),
        &["P_b (W)", "perf_max (rel)", "rate", "unit", "best P_cpu", "best P_mem"],
    );
    let mut series = Vec::new();
    for c in &curve {
        let op = pbc_powersim::solve(&tmpl.platform, &tmpl.workload, c.best_alloc)?;
        let rate = bench.natural_rate(&op);
        series.push(rate.rate);
        t.push(vec![
            fmt(c.budget.value()),
            fmt(c.perf_max),
            fmt(rate.rate),
            rate.unit.to_string(),
            fmt(c.best_alloc.proc.value()),
            fmt(c.best_alloc.mem.value()),
        ]);
    }
    out.tables.push(t);
    let flat = flattening_budget(&curve, 0.01);
    let mut s = TextTable::new(
        format!("{} on {}: curve summary", bench.id, tmpl.platform.id),
        &["shape", "flattens at (W)"],
    );
    s.push(vec![
        sparkline(&series),
        flat.map(|w| fmt(w.value())).unwrap_or_else(|| "-".into()),
    ]);
    out.tables.push(s);
    Ok(series)
}

/// Run the Fig. 2 reproduction.
#[must_use = "the experiment outcome carries I/O and solver failures"]
pub fn run() -> Result<ExperimentOutput> {
    let mut out = ExperimentOutput::new(
        "fig2",
        "Upper performance bound perf_max vs total budget P_b (DGEMM, SRA; IvyBridge, Haswell)",
    );
    for bench_name in ["dgemm", "sra"] {
        let bench = by_name(bench_name).unwrap();
        one_curve(ivybridge(), &bench, &mut out)?;
        one_curve(haswell(), &bench, &mut out)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_curves_flatten_where_the_paper_says() {
        let out = run().unwrap();
        // DGEMM on IvyBridge flattens in the 200-250 W band (paper: once
        // P_b exceeds ~240 W performance stops growing).
        let dgemm_ivy = out
            .tables
            .iter()
            .find(|t| t.title.contains("dgemm on ivybridge: curve summary"))
            .unwrap();
        let flat: f64 = dgemm_ivy.rows[0][1].parse().unwrap();
        assert!((200.0..=256.0).contains(&flat), "DGEMM flattens at {flat}");
        // SRA also flattens within the studied range (its demand is
        // ~227 W), well before the 300 W end of the sweep.
        let sra_ivy = out
            .tables
            .iter()
            .find(|t| t.title.contains("sra on ivybridge: curve summary"))
            .unwrap();
        let sra_flat: f64 = sra_ivy.rows[0][1].parse().unwrap();
        assert!((200.0..=256.0).contains(&sra_flat), "SRA flattens at {sra_flat}");
    }
}
