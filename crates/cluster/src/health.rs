//! Per-node health: the state machine that turns report verdicts into
//! membership decisions.
//!
//! The fleet coordinator cannot see a node directly — it sees the
//! node's observation reports, or their absence. This module folds the
//! per-epoch verdict stream into four states:
//!
//! ```text
//!            missed/rejected ≥ suspect_after     ≥ quarantine_after
//!  Healthy ───────────────────────────► Suspect ───────────────► Quarantined
//!     ▲                                   │ valid report              │
//!     │                                   ▼                           │ valid report
//!     │   probation_epochs clean        Healthy                       ▼
//!     └──────────────────────────────────────────────────────── Rejoining
//! ```
//!
//! * **Healthy** — reporting cleanly; full water-fill share.
//! * **Suspect** — a short miss streak; keeps its current cap but wins
//!   no raises until it reports again (the streak may be a blip).
//! * **Quarantined** — silent or lying long enough that its telemetry
//!   cannot be trusted. Its cap is reclaimed down to the class floor,
//!   decreases-first: the watts stay reserved until the decrease is
//!   *confirmed written*, never freed on hope — that is the invariant
//!   `health.quarantine_leaks == 0` certifies.
//! * **Rejoining** — reporting again after quarantine; held at its
//!   floor for a probation period so one good report cannot yo-yo the
//!   partition.
//!
//! A crashed node sends nothing, so it walks Healthy → Suspect →
//! Quarantined on the miss streak alone, and on rejoin walks
//! Rejoining → Healthy — the machine needs no separate crash signal.

use pbc_trace::names;

/// The four health states (see the module docs for the transitions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeHealth {
    /// Reporting cleanly; fully allocatable.
    Healthy,
    /// Missing/invalid reports, below the quarantine threshold.
    Suspect,
    /// Telemetry untrusted; cap reclaimed to the floor.
    Quarantined,
    /// Back from quarantine, on probation at its floor.
    Rejoining,
}

/// What the coordinator concluded about one node's report this epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReportVerdict {
    /// Arrived and passed validation.
    Accepted,
    /// Never arrived (dropped, or the node is down).
    Missing,
    /// Arrived but failed validation (non-finite, out of range, stale).
    Rejected,
}

/// Thresholds driving the state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthConfig {
    /// Consecutive missed/rejected reports before Healthy → Suspect.
    pub suspect_after: u32,
    /// Consecutive missed/rejected reports before → Quarantined.
    pub quarantine_after: u32,
    /// Consecutive accepted reports a Rejoining node must deliver
    /// before it is Healthy again.
    pub probation_epochs: u32,
}

impl Default for HealthConfig {
    fn default() -> Self {
        Self {
            suspect_after: 1,
            quarantine_after: 3,
            probation_epochs: 2,
        }
    }
}

/// Per-epoch census of the fleet's health states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HealthCounts {
    /// Nodes currently Healthy.
    pub healthy: usize,
    /// Nodes currently Suspect.
    pub suspect: usize,
    /// Nodes currently Quarantined.
    pub quarantined: usize,
    /// Nodes currently Rejoining.
    pub rejoining: usize,
}

/// Lifetime transition totals (the in-process mirror of the `health.*`
/// counters, usable even when other coordinators share the process).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HealthTally {
    /// Healthy → Suspect transitions.
    pub suspects: usize,
    /// Transitions into Quarantined.
    pub quarantines: usize,
    /// Quarantined → Rejoining transitions.
    pub rejoins: usize,
    /// Rejoining → Healthy transitions.
    pub recoveries: usize,
}

/// The fleet's health tracker: one state machine per node.
#[derive(Debug, Clone)]
pub struct HealthTracker {
    config: HealthConfig,
    states: Vec<NodeHealth>,
    /// Consecutive missed/rejected reports (reset by an accepted one).
    miss_streak: Vec<u32>,
    /// Consecutive accepted reports while Rejoining.
    clean_streak: Vec<u32>,
    tally: HealthTally,
}

impl HealthTracker {
    /// A tracker for `n` nodes, all Healthy.
    #[must_use]
    pub fn new(n: usize, config: HealthConfig) -> Self {
        // Register the leak counter at zero: its absence from a trace
        // must never read as cleanliness.
        let _ = pbc_trace::counter(names::HEALTH_QUARANTINE_LEAKS);
        Self {
            config,
            states: vec![NodeHealth::Healthy; n],
            miss_streak: vec![0; n],
            clean_streak: vec![0; n],
            tally: HealthTally::default(),
        }
    }

    /// Fold one epoch's verdict for `node` into its state.
    pub fn observe(&mut self, node: usize, verdict: ReportVerdict) {
        let state = self.states[node];
        match verdict {
            ReportVerdict::Accepted => {
                self.miss_streak[node] = 0;
                match state {
                    NodeHealth::Healthy => {}
                    NodeHealth::Suspect => {
                        // A blip, not a failure: back to full service.
                        self.states[node] = NodeHealth::Healthy;
                    }
                    NodeHealth::Quarantined => {
                        self.states[node] = NodeHealth::Rejoining;
                        self.clean_streak[node] = 1;
                        self.tally.rejoins += 1;
                        pbc_trace::counter(names::HEALTH_REJOINS).incr();
                        self.settle(node);
                    }
                    NodeHealth::Rejoining => {
                        self.clean_streak[node] += 1;
                        self.settle(node);
                    }
                }
            }
            ReportVerdict::Missing | ReportVerdict::Rejected => {
                self.miss_streak[node] += 1;
                self.clean_streak[node] = 0;
                let streak = self.miss_streak[node];
                match state {
                    NodeHealth::Healthy if streak >= self.config.suspect_after => {
                        self.states[node] = NodeHealth::Suspect;
                        self.tally.suspects += 1;
                        pbc_trace::counter(names::HEALTH_SUSPECTS).incr();
                        self.escalate(node, streak);
                    }
                    NodeHealth::Suspect => self.escalate(node, streak),
                    // A miss during probation sends the node straight
                    // back: its telemetry is still not trustworthy.
                    NodeHealth::Rejoining => {
                        self.states[node] = NodeHealth::Quarantined;
                        self.tally.quarantines += 1;
                        pbc_trace::counter(names::HEALTH_QUARANTINES).incr();
                    }
                    NodeHealth::Healthy | NodeHealth::Quarantined => {}
                }
            }
        }
    }

    fn escalate(&mut self, node: usize, streak: u32) {
        if streak >= self.config.quarantine_after {
            self.states[node] = NodeHealth::Quarantined;
            self.tally.quarantines += 1;
            pbc_trace::counter(names::HEALTH_QUARANTINES).incr();
        }
    }

    fn settle(&mut self, node: usize) {
        if self.clean_streak[node] >= self.config.probation_epochs {
            self.states[node] = NodeHealth::Healthy;
            self.tally.recoveries += 1;
            pbc_trace::counter(names::HEALTH_RECOVERIES).incr();
        }
    }

    /// Lifetime transition totals for this tracker.
    #[must_use]
    pub fn tally(&self) -> HealthTally {
        self.tally
    }

    /// The current state of `node`.
    #[must_use]
    pub fn state(&self, node: usize) -> NodeHealth {
        self.states[node]
    }

    /// Number of nodes tracked.
    #[must_use]
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// True when no nodes are tracked.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// True when every node is Healthy.
    #[must_use]
    pub fn all_healthy(&self) -> bool {
        self.states.iter().all(|s| *s == NodeHealth::Healthy)
    }

    /// Census of the current states.
    #[must_use]
    pub fn counts(&self) -> HealthCounts {
        let mut c = HealthCounts::default();
        for s in &self.states {
            match s {
                NodeHealth::Healthy => c.healthy += 1,
                NodeHealth::Suspect => c.suspect += 1,
                NodeHealth::Quarantined => c.quarantined += 1,
                NodeHealth::Rejoining => c.rejoining += 1,
            }
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker() -> HealthTracker {
        HealthTracker::new(2, HealthConfig::default())
    }

    #[test]
    fn a_silent_node_walks_to_quarantine_and_back_through_probation() {
        let mut t = tracker();
        // Default thresholds: 1 miss → Suspect, 3 misses → Quarantined.
        t.observe(0, ReportVerdict::Missing);
        assert_eq!(t.state(0), NodeHealth::Suspect);
        t.observe(0, ReportVerdict::Missing);
        assert_eq!(t.state(0), NodeHealth::Suspect);
        t.observe(0, ReportVerdict::Missing);
        assert_eq!(t.state(0), NodeHealth::Quarantined);
        // Silence while quarantined changes nothing.
        t.observe(0, ReportVerdict::Missing);
        assert_eq!(t.state(0), NodeHealth::Quarantined);
        // First valid report: probation, not instant trust.
        t.observe(0, ReportVerdict::Accepted);
        assert_eq!(t.state(0), NodeHealth::Rejoining);
        // Second clean report completes the default 2-epoch probation.
        t.observe(0, ReportVerdict::Accepted);
        assert_eq!(t.state(0), NodeHealth::Healthy);
        // The untouched node never moved.
        assert_eq!(t.state(1), NodeHealth::Healthy);
        let tally = t.tally();
        assert_eq!(tally.suspects, 1);
        assert_eq!(tally.quarantines, 1);
        assert_eq!(tally.rejoins, 1);
        assert_eq!(tally.recoveries, 1);
    }

    #[test]
    fn one_clean_report_clears_a_suspect() {
        let mut t = tracker();
        t.observe(0, ReportVerdict::Rejected);
        assert_eq!(t.state(0), NodeHealth::Suspect);
        t.observe(0, ReportVerdict::Accepted);
        assert_eq!(t.state(0), NodeHealth::Healthy);
    }

    #[test]
    fn a_miss_during_probation_re_quarantines() {
        let mut t = tracker();
        for _ in 0..3 {
            t.observe(0, ReportVerdict::Missing);
        }
        t.observe(0, ReportVerdict::Accepted);
        assert_eq!(t.state(0), NodeHealth::Rejoining);
        t.observe(0, ReportVerdict::Rejected);
        assert_eq!(t.state(0), NodeHealth::Quarantined);
        // And the clean streak restarts from scratch.
        t.observe(0, ReportVerdict::Accepted);
        assert_eq!(t.state(0), NodeHealth::Rejoining);
        t.observe(0, ReportVerdict::Accepted);
        assert_eq!(t.state(0), NodeHealth::Healthy);
    }

    #[test]
    fn rejected_and_missing_count_toward_the_same_streak() {
        let mut t = tracker();
        t.observe(0, ReportVerdict::Rejected);
        t.observe(0, ReportVerdict::Missing);
        t.observe(0, ReportVerdict::Rejected);
        assert_eq!(t.state(0), NodeHealth::Quarantined);
    }

    #[test]
    fn census_adds_up() {
        let mut t = HealthTracker::new(4, HealthConfig::default());
        t.observe(0, ReportVerdict::Missing); // Suspect
        for _ in 0..3 {
            t.observe(1, ReportVerdict::Missing); // Quarantined
        }
        for _ in 0..3 {
            t.observe(2, ReportVerdict::Missing);
        }
        t.observe(2, ReportVerdict::Accepted); // Rejoining
        let c = t.counts();
        assert_eq!(c.healthy, 1);
        assert_eq!(c.suspect, 1);
        assert_eq!(c.quarantined, 1);
        assert_eq!(c.rejoining, 1);
        assert!(!t.all_healthy());
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn a_single_clean_epoch_can_be_required_with_probation_one() {
        let cfg = HealthConfig { suspect_after: 2, quarantine_after: 4, probation_epochs: 1 };
        let mut t = HealthTracker::new(1, cfg);
        t.observe(0, ReportVerdict::Missing);
        assert_eq!(t.state(0), NodeHealth::Healthy, "below suspect_after stays healthy");
        t.observe(0, ReportVerdict::Missing);
        assert_eq!(t.state(0), NodeHealth::Suspect);
        t.observe(0, ReportVerdict::Missing);
        t.observe(0, ReportVerdict::Missing);
        assert_eq!(t.state(0), NodeHealth::Quarantined);
        t.observe(0, ReportVerdict::Accepted);
        assert_eq!(t.state(0), NodeHealth::Healthy, "probation of 1 settles immediately");
    }
}
