//! The cluster chaos harness: run a [`FleetFaultPlan`] against the full
//! fleet coordination loop and report whether it survived.
//!
//! One run wires together everything the plan can hurt:
//!
//! * a [`FleetCoordinator`] partitioning the global budget by marginal
//!   gain, with its health machine, supervised enforcement, and static
//!   fallback all live;
//! * a **real mock RAPL tree** (one package domain per node, actual
//!   files) as the cap sink — every write the coordinator lands goes
//!   through [`pbc_rapl::RaplDomain::set_power_limit`], and the harness
//!   reads the files back at the end rather than trusting the
//!   coordinator's word;
//! * the plan crashing nodes, slowing stragglers, corrupting reports,
//!   and taking out cap writes and the coordinator itself.
//!
//! Survival means three things: `cluster.budget_violations == 0`,
//! `health.quarantine_leaks == 0` (both carried in the embedded
//! [`ClusterReport`]), and zero **sink divergences** — every up node's
//! file cap equals the cap the coordinator believes it enforced. The
//! report also scores the run against the never-fails oracle (the
//! coordinated aggregate at the initial budget, every epoch), so the
//! throughput cost of the faults is a number, not a feeling.

use crate::coordinator::{CapSink, ClusterReport, FleetCoordinator};
use crate::fleet::Fleet;
use crate::partition::Objective;
use crate::tenant::TenantSet;
use pbc_faults::FleetFaultPlan;
use pbc_rapl::{mock, RaplDomain, RaplSysfs};
use pbc_types::{PbcError, Result, Watts};
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Tolerance on cap read-back comparisons (enforcement quantizes to µW).
const EPS_W: f64 = 1e-6;

/// Epochs appended past the plan's quiet point when the caller asks for
/// the default run length (`epochs == 0`) — long enough for every
/// quarantined node to serve probation and reconverge.
const SETTLE_EPOCHS: usize = 16;

/// Monotonic per-process run id so concurrent harness runs (tests on
/// different threads) never share a mock tree.
static RUN_ID: AtomicUsize = AtomicUsize::new(0);

/// A cap sink backed by a mock RAPL tree: node `i` maps to the package
/// domain `intel-rapl:i`. Writes go through the shipping
/// `set_power_limit` path — real files, real validation.
struct MockFleetSink {
    domains: Vec<RaplDomain>,
}

impl MockFleetSink {
    /// Collect the tree's package domains in node order. Discovery
    /// sorts by path *lexically* (`intel-rapl:10` before `intel-rapl:2`),
    /// so order by the numeric suffix instead.
    fn new(rapl: RaplSysfs, nodes: usize) -> Result<Self> {
        let mut domains: Vec<RaplDomain> = rapl
            .packages()
            .cloned()
            .collect();
        domains.sort_by_key(package_index);
        if domains.len() != nodes {
            return Err(PbcError::InvalidInput(format!(
                "mock fleet tree has {} package domains, fleet has {nodes} nodes",
                domains.len()
            )));
        }
        Ok(Self { domains })
    }
}

/// The node index encoded in a package domain's directory name
/// (`intel-rapl:7` → 7). Unparseable names sort last.
fn package_index(d: &RaplDomain) -> usize {
    d.path
        .file_name()
        .and_then(|f| f.to_str())
        .and_then(|s| s.rsplit(':').next())
        .and_then(|s| s.parse().ok())
        .unwrap_or(usize::MAX)
}

impl CapSink for MockFleetSink {
    fn write_cap(&mut self, node: usize, cap: Watts) -> Result<()> {
        let domain = self.domains.get(node).ok_or_else(|| {
            PbcError::InvalidInput(format!("cap write for node {node} beyond the mock tree"))
        })?;
        domain.set_power_limit(cap)
    }
}

/// The survival report for one cluster chaos run. Two runs of the same
/// fleet, plan, and epoch count produce identical reports — the replay
/// guarantee extends through the mock tree.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterChaosReport {
    /// Plan name.
    pub plan: String,
    /// Plan seed.
    pub seed: u64,
    /// Fleet size.
    pub nodes: usize,
    /// Epochs driven.
    pub epochs: usize,
    /// Global budget at the start (budget steps may move it).
    pub global: Watts,
    /// The coordinator's own run report (violations, leaks,
    /// availability, reconvergence, work).
    pub report: ClusterReport,
    /// What the never-fails oracle would have produced: the coordinated
    /// aggregate at the initial budget, every epoch.
    pub oracle_work: f64,
    /// Sum of the caps actually programmed into the mock tree at the
    /// end, read back from the files.
    pub sink_total: Watts,
    /// Up nodes whose file cap disagrees with the coordinator's record
    /// of what it enforced. Must be zero: the sink only acks writes
    /// that landed.
    pub sink_divergences: usize,
}

impl ClusterChaosReport {
    /// Did the run survive? Zero budget violations, zero quarantine
    /// leaks, and the mock tree agrees with the coordinator cap for
    /// cap.
    #[must_use]
    pub fn survived(&self) -> bool {
        self.report.survived() && self.sink_divergences == 0
    }

    /// Work retained vs the never-fails oracle, in `[0, 1]`-ish (can
    /// exceed 1 when budget steps raise the budget mid-run).
    #[must_use]
    pub fn work_ratio(&self) -> f64 {
        if self.oracle_work <= 0.0 {
            return 0.0;
        }
        self.report.work_done / self.oracle_work
    }
}

impl fmt::Display for ClusterChaosReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "cluster chaos `{}` seed {}: {} nodes x {} epochs @ {:.0} W global",
            self.plan,
            self.seed,
            self.nodes,
            self.epochs,
            self.global.value()
        )?;
        let r = &self.report;
        writeln!(
            f,
            "  faults: {} dropouts, {} recoveries, {} quarantines, {} rejoins, \
             {} missed + {} rejected reports",
            r.dropouts, r.recoveries, r.quarantines, r.rejoins, r.missed_reports,
            r.rejected_reports
        )?;
        writeln!(
            f,
            "  enforcement: {} write failures, {} retries, {} round timeouts, \
             {} degraded epochs",
            r.write_failures, r.write_retries, r.round_timeouts, r.degraded_epochs
        )?;
        writeln!(
            f,
            "  availability {:.3}, work {:.2} ({:.0}% of oracle {:.2}), reconverged {}",
            r.availability,
            r.work_done,
            100.0 * self.work_ratio(),
            self.oracle_work,
            match r.reconverged_at {
                Some(t) => format!("@ epoch {t}"),
                None => "never".to_string(),
            }
        )?;
        if r.tenant_spikes + r.tenant_noisy + r.tenant_preemptions + r.tenant_floor_violations > 0
        {
            writeln!(
                f,
                "  tenants: {} demand spikes, {} noisy epochs, {} preemptions, \
                 {} floor violations, min Jain {:.3}",
                r.tenant_spikes,
                r.tenant_noisy,
                r.tenant_preemptions,
                r.tenant_floor_violations,
                r.min_tenant_jain
            )?;
        }
        write!(
            f,
            "  invariants: {} budget violations, {} quarantine leaks, \
             {} sink divergences, sink total {:.1} W — {}",
            r.budget_violations,
            r.quarantine_leaks,
            self.sink_divergences,
            self.sink_total.value(),
            if self.survived() { "SURVIVED" } else { "DIED" }
        )
    }
}

/// Run `plan` against `fleet` under `global` for `epochs` epochs
/// (`epochs == 0` → the plan's quiet point plus a settling margin),
/// with a mock RAPL tree as the cap sink. The tree lives in a unique
/// tempdir and is removed before returning.
#[must_use = "the survival report is the run's entire result"]
pub fn run_cluster_chaos(
    fleet: Fleet,
    global: Watts,
    plan: &FleetFaultPlan,
    epochs: usize,
) -> Result<ClusterChaosReport> {
    run_cluster_chaos_with(fleet, global, plan, epochs, Objective::default(), None)
}

/// [`run_cluster_chaos`] with an explicit allocation objective and an
/// optional tenant set co-located on every node — the multi-tenant
/// harness entry. With tenants present the plan's demand-spike and
/// noisy-neighbor draws go live, and the report's
/// `tenant_floor_violations` joins the survival criteria.
#[must_use = "the survival report is the run's entire result"]
pub fn run_cluster_chaos_with(
    fleet: Fleet,
    global: Watts,
    plan: &FleetFaultPlan,
    epochs: usize,
    objective: Objective,
    tenants: Option<TenantSet>,
) -> Result<ClusterChaosReport> {
    let epochs = if epochs == 0 {
        plan.quiet_after() + SETTLE_EPOCHS
    } else {
        epochs
    };
    let nodes = fleet.len();

    let root = chaos_root(&plan.name)?;
    let result = run_in_tree(&root, fleet, global, plan, epochs, nodes, objective, tenants);
    let _ = std::fs::remove_dir_all(&root);
    result
}

/// The harness body, split out so the tempdir is removed on every exit
/// path.
#[allow(clippy::too_many_arguments)]
fn run_in_tree(
    root: &PathBuf,
    fleet: Fleet,
    global: Watts,
    plan: &FleetFaultPlan,
    epochs: usize,
    nodes: usize,
    objective: Objective,
    tenants: Option<TenantSet>,
) -> Result<ClusterChaosReport> {
    mock::sysfs_tree(root, nodes, 0)?;
    let sink = MockFleetSink::new(RaplSysfs::discover_at(root)?, nodes)?;

    let mut coord = FleetCoordinator::new(fleet, global)?
        .with_plan(plan.clone())?
        .with_objective(objective)
        .with_cap_sink(Box::new(sink));
    if let Some(set) = tenants {
        coord = coord.with_tenants(set);
    }
    // Nodes boot on the known-safe static partition — the tree and the
    // coordinator's enforced state agree before the first fault draw.
    coord.provision()?;

    // The never-fails oracle: coordinated aggregate at the initial
    // budget, every epoch. Scored before the run so faults can't touch
    // it.
    let oracle_work = coord.coordinate()?.aggregate_perf * epochs as f64;

    let report = coord.run(epochs)?;

    // Read the tree back: the files are the ground truth on what got
    // programmed. A down or released node keeps its last written cap
    // in the file while the coordinator carries zero (the draw is
    // physically gone; there was no write to land), so agreement is
    // only demanded where the coordinator believes a write stuck.
    let survivors = RaplSysfs::discover_at(root)?;
    let mut programmed: Vec<(usize, Watts)> = Vec::with_capacity(nodes);
    for d in survivors.packages() {
        programmed.push((package_index(d), d.power_limit()?));
    }
    programmed.sort_by_key(|&(i, _)| i);

    let enforced = coord.enforced_caps();
    let down = coord.down_mask();
    let mut sink_total = Watts::ZERO;
    let mut sink_divergences = 0usize;
    for &(i, cap) in &programmed {
        sink_total += cap;
        let released = i >= nodes || down[i] || enforced[i].value() <= EPS_W;
        if !released && (cap - enforced[i]).abs().value() > EPS_W {
            sink_divergences += 1;
        }
    }

    Ok(ClusterChaosReport {
        plan: plan.name.to_string(),
        seed: plan.seed,
        nodes,
        epochs,
        global,
        report,
        oracle_work,
        sink_total,
        sink_divergences,
    })
}

/// A unique, collision-free tempdir for one run's mock tree.
fn chaos_root(plan: &str) -> Result<PathBuf> {
    let root = std::env::temp_dir().join(format!(
        "pbc-cluster-chaos-{plan}-{}-{}",
        std::process::id(),
        RUN_ID.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&root)
        .map_err(|e| PbcError::Io(format!("{}: {e}", root.display())))?;
    Ok(root)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::parse_spec;
    use pbc_types::Watts;

    fn small_fleet() -> Fleet {
        let spec = parse_spec(
            "3 ivybridge stream\n\
             3 titan-xp sgemm\n",
        )
        .unwrap();
        Fleet::build(&spec).unwrap()
    }

    fn budget(fleet: &Fleet, margin: f64) -> Watts {
        fleet.min_total_power() + Watts::new(margin)
    }

    #[test]
    fn calm_chaos_survives_and_matches_oracle() {
        let fleet = small_fleet();
        let global = budget(&fleet, 140.0);
        let report = run_cluster_chaos(fleet, global, &FleetFaultPlan::calm(3), 6).unwrap();
        assert!(report.survived(), "calm run died:\n{report}");
        assert_eq!(report.report.degraded_epochs, 0);
        assert!(
            (report.work_ratio() - 1.0).abs() < 1e-9,
            "calm work should equal the oracle, got ratio {}",
            report.work_ratio()
        );
        assert!(report.sink_total <= global + Watts::new(1e-6));
    }

    #[test]
    fn everything_chaos_survives_with_degradation() {
        let fleet = small_fleet();
        let global = budget(&fleet, 140.0);
        let plan = FleetFaultPlan::everything(17);
        let report = run_cluster_chaos(fleet, global, &plan, 0).unwrap();
        assert!(report.survived(), "everything run died:\n{report}");
        assert!(report.epochs >= plan.quiet_after());
        assert!(report.work_ratio() < 1.0, "faults should cost work");
        assert!(report.report.missed_reports > 0);
    }

    #[test]
    fn chaos_replays_bit_identically() {
        let plan = FleetFaultPlan::by_name("node-crash", 23).unwrap();
        let fleet = small_fleet();
        let global = budget(&fleet, 120.0);
        let a = run_cluster_chaos(small_fleet(), global, &plan, 20).unwrap();
        let b = run_cluster_chaos(fleet, global, &plan, 20).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn sink_total_respects_the_global_budget() {
        let plan = FleetFaultPlan::by_name("flaky-writes", 5).unwrap();
        let fleet = small_fleet();
        let global = budget(&fleet, 110.0);
        let report = run_cluster_chaos(fleet, global, &plan, 0).unwrap();
        assert!(report.survived(), "flaky-writes run died:\n{report}");
        assert!(
            report.sink_total <= global + Watts::new(1e-6),
            "programmed caps exceed the global budget: {} > {}",
            report.sink_total.value(),
            global.value()
        );
    }
}
