//! Fleet specs: which nodes exist, what they run, and their profiled
//! coordination state.
//!
//! A fleet is described by a plain text spec, one node group per line:
//!
//! ```text
//! # count  platform   benchmark
//! 16 ivybridge stream
//! 8  haswell   dgemm
//! 4  titan-xp  sgemm
//! ```
//!
//! Nodes of the same `(platform, benchmark)` pair form one *class*:
//! they share a demand model, a floor, a COORD profile, and a
//! [`PerfCurve`], so a 128-node fleet with six classes profiles six
//! curves, not 128. Per-class profiling goes through the shared-grid
//! oracle (one pooled sweep per class); per-node coordination later fans
//! out across nodes on the same pool.

use crate::curve::{node_ceiling, node_floor, PerfCurve};
use pbc_core::{CriticalPowers, GpuCoordParams};
use pbc_par::Pool;
use pbc_platform::{presets, NodeSpec, Platform, PlatformId};
use pbc_powersim::WorkloadDemand;
use pbc_types::{PbcError, Result, Watts};
use pbc_workloads::{by_name, Target};

/// One line of a fleet spec: `count` nodes of `platform` running
/// `bench`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecLine {
    /// How many identical nodes this line declares.
    pub count: usize,
    /// Platform slug (`pbc_platform::PlatformId::from_slug`).
    pub platform: String,
    /// Benchmark slug (`pbc_workloads::by_name`).
    pub bench: String,
}

/// Parse a fleet spec. Blank lines and `#` comments are skipped; each
/// remaining line is `[COUNT] PLATFORM BENCH` (COUNT defaults to 1).
#[must_use = "the parsed spec lines are the function's entire output"]
pub fn parse_spec(text: &str) -> Result<Vec<SpecLine>> {
    let mut lines = Vec::new();
    for (ln, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        let (count, platform, bench) = match fields.as_slice() {
            [p, b] => (1usize, *p, *b),
            [c, p, b] => {
                let count = c.parse::<usize>().map_err(|e| {
                    PbcError::InvalidInput(format!("spec line {}: bad count {c:?}: {e}", ln + 1))
                })?;
                (count, *p, *b)
            }
            _ => {
                return Err(PbcError::InvalidInput(format!(
                    "spec line {}: expected `[COUNT] PLATFORM BENCH`, got {raw:?}",
                    ln + 1
                )))
            }
        };
        if count == 0 {
            return Err(PbcError::InvalidInput(format!(
                "spec line {}: a node group needs at least one node",
                ln + 1
            )));
        }
        lines.push(SpecLine {
            count,
            platform: platform.to_string(),
            bench: bench.to_string(),
        });
    }
    if lines.is_empty() {
        return Err(PbcError::InvalidInput(
            "fleet spec declares no nodes (every line blank or a comment)".into(),
        ));
    }
    Ok(lines)
}

/// The class's profiled COORD inputs, by platform kind.
#[derive(Debug, Clone)]
pub enum ClassCoord {
    /// Host nodes coordinate from the seven critical power values.
    Cpu(CriticalPowers),
    /// GPU nodes coordinate from the Algorithm-2 parameters.
    Gpu(GpuCoordParams),
}

/// One node class: a `(platform, benchmark)` pair with its profiled
/// coordination state, shared by every node of the class.
#[derive(Debug, Clone)]
pub struct NodeClass {
    /// The platform preset.
    pub platform: Platform,
    /// Benchmark slug (for display).
    pub bench: String,
    /// The workload's demand model.
    pub demand: WorkloadDemand,
    /// Minimum budget a node of this class can run on.
    pub floor: Watts,
    /// Budget past which extra watts are stranded.
    pub ceiling: Watts,
    /// COORD inputs (critical powers / Algorithm-2 parameters).
    pub coord: ClassCoord,
    /// Oracle `perf_max ~ P_b` curve.
    pub curve: PerfCurve,
}

impl NodeClass {
    /// Run the paper's per-node COORD on a budget share, dispatching to
    /// Algorithm 1 (hosts) or Algorithm 2 (GPU cards) with the class's
    /// precomputed profile.
    #[must_use = "the coordination result carries either the allocation or the refusal"]
    pub fn coordinate(&self, budget: Watts) -> Result<pbc_core::CoordResult> {
        match (&self.coord, &self.platform.spec) {
            (ClassCoord::Cpu(c), _) => pbc_core::coord_cpu(budget, c),
            (ClassCoord::Gpu(p), NodeSpec::Gpu(g)) => pbc_core::coord_gpu(budget, g, p),
            (ClassCoord::Gpu(_), NodeSpec::Cpu { .. }) => Err(PbcError::InvalidInput(format!(
                "class {}/{} carries GPU coordination state on a CPU platform",
                self.platform.id, self.bench
            ))),
        }
    }
}

/// A profiled fleet: deduplicated classes plus the per-node class map.
#[derive(Debug, Clone)]
pub struct Fleet {
    /// The distinct `(platform, benchmark)` classes.
    pub classes: Vec<NodeClass>,
    /// `nodes[i]` is the class index of node `i`.
    pub nodes: Vec<usize>,
}

impl Fleet {
    /// Build a fleet on the global pool.
    #[must_use = "the fleet result carries either the profiled fleet or the failure"]
    pub fn build(spec: &[SpecLine]) -> Result<Fleet> {
        Self::build_with_pool(spec, Pool::global())
    }

    /// Build a fleet, profiling every class's curve on an explicit pool.
    /// Classes profile sequentially; each class's shared-grid sweep is
    /// internally pooled, so the curves are bit-identical across thread
    /// counts.
    #[must_use = "the fleet result carries either the profiled fleet or the failure"]
    pub fn build_with_pool(spec: &[SpecLine], pool: &Pool) -> Result<Fleet> {
        let mut classes: Vec<NodeClass> = Vec::new();
        let mut keys: Vec<(PlatformId, String)> = Vec::new();
        let mut nodes = Vec::new();
        for line in spec {
            let id = PlatformId::from_slug(&line.platform).ok_or_else(|| {
                PbcError::NotFound(format!(
                    "platform {:?}; known: ivybridge, haswell, titan-xp, titan-v",
                    line.platform
                ))
            })?;
            let bench = by_name(&line.bench).ok_or_else(|| {
                PbcError::NotFound(format!("benchmark {:?} (see `pbc benchmarks`)", line.bench))
            })?;
            let platform = presets::by_id(id);
            match (&platform.spec, bench.target) {
                (NodeSpec::Cpu { .. }, Target::Cpu) | (NodeSpec::Gpu(_), Target::Gpu) => {}
                _ => {
                    return Err(PbcError::InvalidInput(format!(
                        "benchmark {:?} does not target platform {:?}",
                        line.bench, line.platform
                    )))
                }
            }
            let key = (id, line.bench.clone());
            let class = match keys.iter().position(|k| *k == key) {
                Some(ci) => ci,
                None => {
                    let demand = bench.demand.clone();
                    let coord = match &platform.spec {
                        NodeSpec::Cpu { cpu, dram } => {
                            ClassCoord::Cpu(CriticalPowers::probe(cpu, dram, &demand))
                        }
                        NodeSpec::Gpu(gpu) => ClassCoord::Gpu(GpuCoordParams::profile(gpu, &demand)?),
                    };
                    let curve = PerfCurve::profile_with_pool(&platform, &demand, pool)?;
                    classes.push(NodeClass {
                        floor: node_floor(&platform, &demand),
                        ceiling: node_ceiling(&platform, &demand),
                        platform,
                        bench: line.bench.clone(),
                        demand,
                        coord,
                        curve,
                    });
                    keys.push(key);
                    classes.len() - 1
                }
            };
            nodes.extend(std::iter::repeat(class).take(line.count));
        }
        Ok(Fleet { classes, nodes })
    }

    /// Number of nodes in the fleet.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the fleet has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The class of node `i`.
    #[must_use]
    pub fn class_of(&self, node: usize) -> &NodeClass {
        &self.classes[self.nodes[node]]
    }

    /// Sum of every node's floor — the smallest global budget the whole
    /// fleet can run on.
    #[must_use]
    pub fn min_total_power(&self) -> Watts {
        self.nodes
            .iter()
            .fold(Watts::ZERO, |acc, &c| acc + self.classes[c].floor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_counts_comments_and_defaults() {
        let spec = parse_spec(
            "# my fleet\n\
             16 ivybridge stream\n\
             \n\
             haswell dgemm   # one node, no count\n\
             2 titan-xp sgemm\n",
        )
        .unwrap();
        assert_eq!(spec.len(), 3);
        assert_eq!(spec[0].count, 16);
        assert_eq!(spec[1].count, 1);
        assert_eq!(spec[2].platform, "titan-xp");
    }

    #[test]
    fn rejects_garbage_specs() {
        assert!(parse_spec("").is_err());
        assert!(parse_spec("# only comments\n").is_err());
        assert!(parse_spec("nope ivybridge stream extra").is_err());
        assert!(parse_spec("0 ivybridge stream").is_err());
        assert!(parse_spec("x ivybridge stream").is_err());
    }

    #[test]
    fn build_dedupes_classes_and_validates_targets() {
        let spec = parse_spec("4 ivybridge stream\n2 ivybridge stream\n1 haswell dgemm\n").unwrap();
        let fleet = Fleet::build(&spec).unwrap();
        assert_eq!(fleet.len(), 7);
        assert_eq!(fleet.classes.len(), 2, "identical lines share one class");
        assert!(fleet.min_total_power() > Watts::ZERO);
        // A GPU benchmark on a CPU platform is refused.
        let bad = parse_spec("1 ivybridge sgemm").unwrap();
        assert!(Fleet::build(&bad).is_err());
        // Unknown slugs are typed errors.
        assert!(Fleet::build(&parse_spec("1 nope stream").unwrap()).is_err());
        assert!(Fleet::build(&parse_spec("1 ivybridge nope").unwrap()).is_err());
    }
}
