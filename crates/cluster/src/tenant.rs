//! Multi-tenant sub-partition: several tenants share every node's
//! budget.
//!
//! FastCap's argument (PAPERS.md) is that a power budget is not just a
//! throughput resource but an *entitlement*: when co-located workloads
//! compete for one node budget, each tenant owns a weighted slice of it
//! regardless of how loudly its neighbors demand watts. This module
//! layers that entitlement under the per-node COORD: the fleet
//! partitioner hands a node its share, and [`TenantSet::split_node`]
//! divides that share among the node's tenants —
//!
//! * **weighted floors first**: each tenant is guaranteed
//!   `weight_i / Σ weights` of the node *floor*, funded before any
//!   surplus moves — a demand spike on one tenant can never push a
//!   neighbor below its floor;
//! * **surplus by SLA tier**: watts above the floor flow tier by tier
//!   (Gold before Silver before BestEffort), within a tier in
//!   proportion to `weight × demand`. When a global budget cut shrinks
//!   the node share, lower tiers are preempted first — the
//!   deadline-aware half of the FastCap story;
//! * **conservation**: the sub-shares always sum to the node share, so
//!   the fleet-level budget invariant is untouched by tenancy.
//!
//! Fairness is scored with Jain's index over the weight-normalized
//! per-tenant allocations ([`jain_index`]), exported per epoch as the
//! `cluster.tenant_jain` gauge.

use pbc_types::{PbcError, Result, Watts};

/// Tolerance when checking a tenant allocation against its floor.
const FLOOR_EPS: f64 = 1e-9;

/// Service tier of a tenant, in preemption order: during a budget
/// crunch, `BestEffort` surplus is revoked before `Silver`, `Silver`
/// before `Gold`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SlaClass {
    /// Deadline-critical: surplus demand is funded first.
    Gold,
    /// Standard service.
    Silver,
    /// Scavenger class: runs on whatever is left.
    BestEffort,
}

impl SlaClass {
    /// Every tier, in funding order.
    pub const ALL: [Self; 3] = [Self::Gold, Self::Silver, Self::BestEffort];

    /// Parse a CLI/wire spelling.
    #[must_use = "the parse result carries either the tier or the refusal"]
    pub fn parse(s: &str) -> Result<Self> {
        match s {
            "gold" => Ok(Self::Gold),
            "silver" => Ok(Self::Silver),
            "best-effort" => Ok(Self::BestEffort),
            other => Err(PbcError::InvalidInput(format!(
                "unknown SLA class {other:?}: expected gold, silver, or best-effort"
            ))),
        }
    }

    /// The wire spelling `parse` accepts.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Gold => "gold",
            Self::Silver => "silver",
            Self::BestEffort => "best-effort",
        }
    }
}

/// One tenant: a name, a positive entitlement weight, and an SLA tier.
#[derive(Debug, Clone, PartialEq)]
pub struct Tenant {
    /// Display/wire name (unique within a [`TenantSet`]).
    pub name: String,
    /// Entitlement weight; floors and surplus shares scale with it.
    pub weight: f64,
    /// Preemption tier during budget cuts.
    pub sla: SlaClass,
}

/// A validated set of tenants co-located on every node of the fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSet {
    tenants: Vec<Tenant>,
}

/// One node's share divided among its tenants.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeSplit {
    /// Watts per tenant, in [`TenantSet`] order; sums to the node
    /// share.
    pub shares: Vec<Watts>,
    /// Tenants whose surplus demand went unfunded because higher tiers
    /// drained the node surplus first.
    pub preemptions: usize,
    /// Tenants allocated below their weighted floor — structurally
    /// zero; counted so the chaos harness can assert it from traces.
    pub floor_violations: usize,
}

impl TenantSet {
    /// Build a tenant set, validating names and weights.
    #[must_use = "the build result carries either the set or the refusal"]
    pub fn new(tenants: Vec<Tenant>) -> Result<Self> {
        if tenants.is_empty() {
            return Err(PbcError::InvalidInput("a tenant set needs at least one tenant".into()));
        }
        for t in &tenants {
            if t.name.is_empty() {
                return Err(PbcError::InvalidInput("tenant names must be non-empty".into()));
            }
            if !t.weight.is_finite() || t.weight <= 0.0 {
                return Err(PbcError::InvalidInput(format!(
                    "tenant {:?}: weight {} must be positive and finite",
                    t.name, t.weight
                )));
            }
        }
        for (i, t) in tenants.iter().enumerate() {
            if tenants[..i].iter().any(|u| u.name == t.name) {
                return Err(PbcError::InvalidInput(format!("duplicate tenant name {:?}", t.name)));
            }
        }
        Ok(Self { tenants })
    }

    /// Parse the wire/CLI spelling: `name:weight[:sla]` groups joined
    /// by commas, e.g. `prod:3:gold,batch:1:best-effort`. The SLA
    /// defaults to `best-effort`.
    #[must_use = "the parse result carries either the set or the refusal"]
    pub fn parse(spec: &str) -> Result<Self> {
        let mut tenants = Vec::new();
        for group in spec.split(',').filter(|g| !g.is_empty()) {
            let fields: Vec<&str> = group.split(':').collect();
            let (name, weight, sla) = match fields.as_slice() {
                [name, weight] => (*name, *weight, SlaClass::BestEffort),
                [name, weight, sla] => (*name, *weight, SlaClass::parse(sla)?),
                _ => {
                    return Err(PbcError::InvalidInput(format!(
                        "tenant group {group:?} is not name:weight[:sla]"
                    )))
                }
            };
            let weight: f64 = weight.parse().map_err(|_| {
                PbcError::InvalidInput(format!("tenant {name:?}: weight {weight:?} is not a number"))
            })?;
            tenants.push(Tenant { name: name.to_string(), weight, sla });
        }
        Self::new(tenants)
    }

    /// Number of tenants.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// A tenant set is never empty (see [`TenantSet::new`]).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }

    /// The tenants, in declaration order.
    #[must_use]
    pub fn tenants(&self) -> &[Tenant] {
        &self.tenants
    }

    fn total_weight(&self) -> f64 {
        self.tenants.iter().map(|t| t.weight).sum()
    }

    /// Each tenant's guaranteed fraction of a node's floor:
    /// `weight_i / Σ weights`.
    #[must_use]
    pub fn floor_fractions(&self) -> Vec<f64> {
        let total = self.total_weight();
        self.tenants.iter().map(|t| t.weight / total).collect()
    }

    /// Divide one node's `share` among the tenants. `floor` is the
    /// node's class floor (the sub-floor entitlements scale from it);
    /// `demand` is one multiplier ≥ 1 per tenant (spiking and noisy
    /// tenants want more surplus). The returned sub-shares sum to
    /// `share` exactly (± float dust), and every tenant is at or above
    /// its weighted floor whenever `share ≥ floor` — which the fleet
    /// partitioner guarantees.
    #[must_use]
    pub fn split_node(&self, share: Watts, floor: Watts, demand: &[f64]) -> NodeSplit {
        let n = self.tenants.len();
        let fractions = self.floor_fractions();
        // Weighted floors first. If the share somehow sits below the
        // node floor (a degenerate caller), scale the floors down
        // proportionally rather than invent watts.
        let floor_base = floor.value().min(share.value());
        let mut sub_w: Vec<f64> = fractions.iter().map(|f| f * floor_base).collect();
        let mut surplus = (share.value() - floor_base).max(0.0);
        // Surplus wants: fair share of the surplus scaled by demand.
        let wants: Vec<f64> = fractions
            .iter()
            .enumerate()
            .map(|(i, f)| f * surplus * demand.get(i).copied().unwrap_or(1.0).max(1.0))
            .collect();
        let mut granted = vec![0.0f64; n];
        let mut preemptions = 0usize;
        let mut higher_tier_fed = false;
        for tier in SlaClass::ALL {
            let members: Vec<usize> =
                (0..n).filter(|&i| self.tenants[i].sla == tier).collect();
            if members.is_empty() {
                continue;
            }
            let tier_want: f64 = members.iter().map(|&i| wants[i]).sum();
            if tier_want <= 0.0 {
                continue;
            }
            let give = tier_want.min(surplus);
            if give < tier_want - FLOOR_EPS && higher_tier_fed {
                // A higher tier drained the pool before this one was
                // made whole: its hungry members were preempted. (The
                // topmost demanding tier falling short is not
                // preemption — nobody outranked it.)
                preemptions += members.iter().filter(|&&i| wants[i] > FLOOR_EPS).count();
            }
            higher_tier_fed = true;
            for &i in &members {
                granted[i] = give * wants[i] / tier_want;
            }
            surplus -= give;
            if surplus <= 0.0 {
                surplus = 0.0;
            }
        }
        // Conservation: residual surplus (every tier fully fed) goes
        // out by weight so the sub-shares sum to the node share.
        if surplus > 0.0 {
            let total = self.total_weight();
            for (i, t) in self.tenants.iter().enumerate() {
                granted[i] += surplus * t.weight / total;
            }
        }
        let mut floor_violations = 0usize;
        for i in 0..n {
            sub_w[i] += granted[i];
            let floor_w = floor.value() * fractions[i];
            if share.value() >= floor.value() && sub_w[i] < floor_w - FLOOR_EPS {
                floor_violations += 1;
            }
        }
        NodeSplit {
            shares: sub_w.into_iter().map(Watts::new).collect(),
            preemptions,
            floor_violations,
        }
    }
}

/// Jain's fairness index `(Σx)² / (n · Σx²)` over non-negative
/// allocations: 1 when perfectly even, `1/n` when one tenant holds
/// everything. Empty or all-zero input scores 1 (nothing is unfair
/// about nothing).
#[must_use]
pub fn jain_index(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    let sum: f64 = xs.iter().sum();
    let sq: f64 = xs.iter().map(|x| x * x).sum();
    if sq <= 0.0 {
        return 1.0;
    }
    (sum * sum) / (xs.len() as f64 * sq)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(spec: &str) -> TenantSet {
        TenantSet::parse(spec).unwrap()
    }

    #[test]
    fn parse_round_trips_and_validates() {
        let ts = set("prod:3:gold,web:2:silver,batch:1");
        assert_eq!(ts.len(), 3);
        assert_eq!(ts.tenants()[0].sla, SlaClass::Gold);
        assert_eq!(ts.tenants()[2].sla, SlaClass::BestEffort);
        assert!((ts.tenants()[1].weight - 2.0).abs() < 1e-12);
        for bad in ["", "a", "a:b", "a:0", "a:-1", "a:1:platinum", "a:1,a:2"] {
            assert!(TenantSet::parse(bad).is_err(), "{bad:?} should be refused");
        }
        for sla in SlaClass::ALL {
            assert_eq!(SlaClass::parse(sla.name()).unwrap(), sla);
        }
    }

    #[test]
    fn split_conserves_and_funds_floors() {
        let ts = set("prod:3:gold,web:2:silver,batch:1:best-effort");
        let split = ts.split_node(Watts::new(120.0), Watts::new(60.0), &[1.0, 1.0, 1.0]);
        let total: f64 = split.shares.iter().map(|s| s.value()).sum();
        assert!((total - 120.0).abs() < 1e-9, "sub-shares must sum to the node share");
        assert_eq!(split.floor_violations, 0);
        assert_eq!(split.preemptions, 0, "flat demand fits the surplus exactly");
        // Weighted floors: 30/20/10 of the 60 W floor, plus surplus.
        for (i, frac) in ts.floor_fractions().iter().enumerate() {
            assert!(split.shares[i].value() >= frac * 60.0 - 1e-9);
        }
    }

    #[test]
    fn spike_cannot_starve_a_neighbor_below_its_floor() {
        let ts = set("prod:1:gold,hog:1:best-effort");
        // The hog demands 10x its fair surplus share…
        let split = ts.split_node(Watts::new(100.0), Watts::new(80.0), &[1.0, 10.0]);
        let total: f64 = split.shares.iter().map(|s| s.value()).sum();
        assert!((total - 100.0).abs() < 1e-9);
        assert_eq!(split.floor_violations, 0);
        // …but prod keeps its 40 W weighted floor and its gold-tier
        // surplus comes out first.
        assert!(split.shares[0].value() >= 40.0 - 1e-9);
        assert!(split.shares[0].value() >= 50.0 - 1e-9, "gold surplus is funded before the hog");
    }

    #[test]
    fn budget_cut_preempts_lower_tiers_first() {
        let ts = set("prod:1:gold,web:1:silver,batch:1:best-effort");
        // Gold alone wants more than the whole surplus: lower tiers get
        // nothing but their floors, and both count as preempted.
        let split = ts.split_node(Watts::new(93.0), Watts::new(90.0), &[10.0, 1.0, 1.0]);
        assert_eq!(split.preemptions, 2);
        assert_eq!(split.floor_violations, 0);
        assert!((split.shares[1].value() - 30.0).abs() < 1e-9, "silver is pinned at its floor");
        assert!((split.shares[2].value() - 30.0).abs() < 1e-9, "best-effort is pinned at its floor");
        let total: f64 = split.shares.iter().map(|s| s.value()).sum();
        assert!((total - 93.0).abs() < 1e-9);
    }

    #[test]
    fn jain_index_brackets() {
        assert!((jain_index(&[]) - 1.0).abs() < 1e-12);
        assert!((jain_index(&[5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
        let skewed = jain_index(&[10.0, 0.0, 0.0, 0.0]);
        assert!((skewed - 0.25).abs() < 1e-12, "one-holds-all scores 1/n");
        let mid = jain_index(&[4.0, 2.0]);
        assert!(mid > 0.25 && mid < 1.0);
    }
}
