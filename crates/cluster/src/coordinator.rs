//! The fleet coordinator: one global budget, N nodes, two layers of
//! coordination — and the fault tolerance that keeps the bound honest
//! when nodes crash, lag, or lie.
//!
//! Layer one is the water-filling partition ([`crate::partition`]): the
//! global budget becomes per-node shares ranked by marginal gain. Layer
//! two is the paper's per-node COORD on each share, with the resulting
//! allocation priced by the memo-backed power simulator — fanned out
//! across nodes on the `pbc-par` pool, since every node's solve is
//! independent.
//!
//! The dynamic mode ([`FleetCoordinator::step`]) runs the full failure
//! pipeline each epoch:
//!
//! 1. **Faults roll** from the armed [`FleetFaultPlan`] — crashes,
//!    stragglers, write outages — each from a fresh `XorShift64Star`
//!    keyed `(seed, tick, stream, node)`
//!    ([`pbc_faults::inject::decision_rng`]), never shared state, so a
//!    chaos run is bit-identical under any `PBC_THREADS`.
//! 2. **Reports arrive** (or don't): every node's observation of the
//!    previous epoch passes the same validation gate
//!    `OnlineCoordinator` applies — non-finite, out-of-range, and
//!    stale-cap rejection — before it may steer the partition.
//! 3. **Health updates**: verdicts drive the per-node Healthy →
//!    Suspect → Quarantined → Rejoining machine ([`crate::health`]).
//! 4. **Mode decides**: a coordinator outage, a timed-out previous
//!    round, or an infeasible fill drops the epoch to the precomputed
//!    [`StaticFallback`] partition, whose shares sum ≤ the global
//!    budget by construction ([`crate::degrade`]).
//! 5. **Targets partition**: water-fill over Healthy + Suspect nodes,
//!    with Quarantined/Rejoining nodes reserved at their class floors
//!    and Suspects capped at their standing grant (no raises on
//!    untrusted telemetry).
//! 6. **Enforcement lands**, decreases first, each write supervised by
//!    a [`RetryPolicy`] under a per-round attempt deadline: watts freed
//!    by confirmed lowerings (and by dead nodes) fund the raises; a
//!    failed lowering keeps its watts reserved; a blown deadline ends
//!    the round and degrades the next epoch. The pot for raises only
//!    ever shrinks, so `Σ enforced ≤ global` is an invariant —
//!    `cluster.budget_violations` and `health.quarantine_leaks` stay
//!    zero by construction, not by luck.

use crate::degrade::StaticFallback;
use crate::fleet::Fleet;
use crate::health::{HealthConfig, HealthCounts, HealthTracker, NodeHealth, ReportVerdict};
use crate::partition::{fill_shares, uniform_split, NodeCurve, Objective, DEFAULT_GRANT};
use crate::tenant::{jain_index, TenantSet};
use pbc_faults::inject::{decision_rng, write_key};
use pbc_faults::{FaultClock, FleetFaultPlan};
use pbc_par::Pool;
use pbc_powersim::SolveMemo;
use pbc_rapl::RetryPolicy;
use pbc_trace::names;
use pbc_types::{PbcError, PowerAllocation, Result, Watts, CAP_QUANTUM};
use std::sync::{Arc, Mutex};

/// Weyl-ish odd constant spreading ticks across the seed space (the
/// same one `pbc_faults::inject` uses, so cluster draws mix as well).
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;
/// Stream constant for node crash/rejoin decisions.
const STREAM_NODE: u64 = 0x5EED_0011;
/// Stream constant for cap-write fault decisions.
const STREAM_CAP: u64 = 0x5EED_0012;
/// Stream constant for observation-report fault decisions.
const STREAM_REPORT: u64 = 0x5EED_0013;
/// Stream constant for straggler onset decisions.
const STREAM_STRAGGLE: u64 = 0x5EED_0014;
/// Stream constant for per-node write-outage onset decisions.
const STREAM_WRITE_OUTAGE: u64 = 0x5EED_0015;
/// Stream constant for per-tenant demand-spike onset decisions.
const STREAM_TENANT_SPIKE: u64 = 0x5EED_0016;
/// Stream constant for per-tenant noisy-neighbor onset decisions.
const STREAM_TENANT_NOISY: u64 = 0x5EED_0017;
/// Watt slack below which a cap move is not worth a write.
const EPS_W: f64 = 1e-6;
/// Reported throughput surrogates above this are sensor garbage — the
/// same bar `OnlineConfig::max_credible_perf` defaults to.
const MAX_CREDIBLE_PERF: f64 = 8.0;
/// How far a reported cap may sit from the cap we enforced before the
/// report is judged stale (one enforcement quantum, as in
/// `pbc_core::online`).
const STALE_CAP_TOLERANCE: f64 = CAP_QUANTUM;

/// Where a node's cap writes land. The simulated chaos runs wire this
/// to a mock RAPL sysfs tree so "enforced" means a real file changed;
/// a daemon would wire it to per-host RPC.
pub trait CapSink {
    /// Persist `cap` as node `node`'s power limit. An `Err` counts as a
    /// failed write attempt and is retried under the round's policy.
    fn write_cap(&mut self, node: usize, cap: Watts) -> Result<()>;
}

/// One evaluated partition: the shares, what COORD made of them, and
/// the simulator-priced performance.
#[derive(Debug, Clone)]
pub struct ClusterDecision {
    /// Per-node budget shares (the caps to enforce).
    pub shares: Vec<Watts>,
    /// Per-node COORD allocations; `None` when the share was
    /// unschedulable on that node.
    pub allocs: Vec<Option<PowerAllocation>>,
    /// Per-node simulated relative throughput (0.0 for unschedulable or
    /// down nodes).
    pub perfs: Vec<f64>,
    /// Sum of `perfs` — the cluster's aggregate throughput.
    pub aggregate_perf: f64,
    /// How many nodes could not schedule their share.
    pub infeasible: usize,
}

/// What one dynamic epoch did.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochReport {
    /// The completed tick this report covers.
    pub tick: usize,
    /// Nodes live at the end of the epoch.
    pub nodes_up: usize,
    /// Nodes that crashed this epoch.
    pub dropped: usize,
    /// Nodes that came back up this epoch.
    pub recovered: usize,
    /// Cap writes that failed after exhausting their retries.
    pub write_failures: usize,
    /// Retry attempts spent absorbing transient write failures.
    pub write_retries: usize,
    /// Observation reports that never arrived.
    pub missed_reports: usize,
    /// Observation reports rejected by validation.
    pub rejected_reports: usize,
    /// Did this epoch run on the static fallback partition?
    pub degraded: bool,
    /// Did enforcement blow its attempt deadline this epoch?
    pub round_timed_out: bool,
    /// Health census at the end of the epoch.
    pub health: HealthCounts,
    /// Aggregate relative throughput across live nodes.
    pub aggregate_perf: f64,
    /// Sum of enforced caps after the epoch (must stay ≤ global).
    pub enforced_total: Watts,
    /// Watts that changed hands between nodes this epoch.
    pub moved: Watts,
    /// Watts freed for the healthy pool by down/quarantined/rejoining
    /// nodes, relative to the static fallback partition.
    pub reclaimed: Watts,
    /// Tenant demand spikes that started this epoch.
    pub tenant_spikes: usize,
    /// Noisy-neighbor stretches that started this epoch.
    pub tenant_noisy: usize,
    /// Lower-SLA tenants preempted on some node this epoch (summed over
    /// live nodes).
    pub tenant_preemptions: usize,
    /// Tenants allocated below their weighted floor on some node —
    /// structurally zero.
    pub tenant_floor_violations: usize,
    /// Jain fairness index over the weight-normalized per-tenant fleet
    /// allocations (1.0 when the fleet runs single-tenant).
    pub tenant_jain: f64,
}

/// Survival summary of a dynamic run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ClusterReport {
    /// Epochs executed.
    pub epochs: usize,
    /// Total crash events.
    pub dropouts: usize,
    /// Total nodes-came-back events.
    pub recoveries: usize,
    /// Total cap writes that failed after retries.
    pub write_failures: usize,
    /// Total retry attempts spent on transient write failures.
    pub write_retries: usize,
    /// Epochs whose enforced total exceeded the global budget. The
    /// decreases-first discipline makes this zero by construction.
    pub budget_violations: usize,
    /// Epochs where raises were funded by watts not yet confirmed freed
    /// — also structurally zero.
    pub quarantine_leaks: usize,
    /// Enforcement rounds that blew their attempt deadline.
    pub round_timeouts: usize,
    /// Epochs served from the static fallback partition.
    pub degraded_epochs: usize,
    /// Observation reports that never arrived.
    pub missed_reports: usize,
    /// Observation reports rejected by validation.
    pub rejected_reports: usize,
    /// Transitions into Quarantined.
    pub quarantines: usize,
    /// Quarantined → Rejoining transitions.
    pub rejoins: usize,
    /// Smallest live-node count seen.
    pub min_nodes_up: usize,
    /// Aggregate throughput at the final epoch.
    pub final_aggregate: f64,
    /// Mean aggregate throughput across epochs.
    pub mean_aggregate: f64,
    /// Healthy node-epochs over total node-epochs (1.0 = nobody ever
    /// left full service).
    pub availability: f64,
    /// Σ aggregate throughput across epochs — the run's useful work, in
    /// node-epoch units, for comparison against a never-fails oracle.
    pub work_done: f64,
    /// First tick at or past the plan's quiet point where every node
    /// was Healthy on an undegraded epoch; `None` if the run ended
    /// before reconverging.
    pub reconverged_at: Option<usize>,
    /// Total tenant demand-spike events.
    pub tenant_spikes: usize,
    /// Total noisy-neighbor events.
    pub tenant_noisy: usize,
    /// Total tenant preemption events (lower tiers squeezed out by
    /// higher-SLA demand).
    pub tenant_preemptions: usize,
    /// Node-epoch × tenant allocations below the weighted floor — the
    /// third structural invariant; must be zero.
    pub tenant_floor_violations: usize,
    /// Smallest per-epoch Jain fairness index seen (1.0 for runs with
    /// no tenants attached, or zero epochs).
    pub min_tenant_jain: f64,
}

impl ClusterReport {
    /// Did the run hold the structural invariants — no budget overdraw,
    /// no quarantine leak, no tenant starved below its weighted floor?
    #[must_use]
    pub fn survived(&self) -> bool {
        self.budget_violations == 0
            && self.quarantine_leaks == 0
            && self.tenant_floor_violations == 0
    }
}

/// What supervised enforcement did in one round.
#[derive(Debug, Clone, Copy, Default)]
struct WriteStats {
    failures: usize,
    retries: usize,
    timed_out: bool,
}

/// What the tenant sub-partition did in one epoch.
#[derive(Debug, Clone, Copy)]
struct TenancyStats {
    jain: f64,
    preemptions: usize,
    floor_violations: usize,
}

impl Default for TenancyStats {
    fn default() -> Self {
        // No tenants, nothing unfair: a perfect score, zero events.
        Self { jain: 1.0, preemptions: 0, floor_violations: 0 }
    }
}

/// Hierarchical, fault-tolerant coordinator for a fleet under one
/// global budget.
pub struct FleetCoordinator {
    fleet: Fleet,
    global: Watts,
    /// The budget the coordinator was built with; plan budget steps are
    /// factors of this.
    initial_global: Watts,
    grant: Watts,
    plan: FleetFaultPlan,
    clock: FaultClock,
    retry: RetryPolicy,
    health: HealthTracker,
    fallback: StaticFallback,
    /// Cap currently enforced on each node (starts at zero: nothing has
    /// been granted before the first epoch).
    enforced: Vec<Watts>,
    /// Enforced caps as of one epoch earlier — what a delayed or
    /// straggling report describes.
    enforced_hist: Vec<Watts>,
    /// Target shares of the previous epoch, for redistribution stats.
    prev_targets: Vec<Watts>,
    /// Per-node throughput of the previous epoch (what reports carry).
    last_perfs: Vec<f64>,
    /// `Some(t)` when the node is down until tick `t`.
    down_until: Vec<Option<usize>>,
    /// `Some(t)` when the node straggles until tick `t`.
    straggle_until: Vec<Option<usize>>,
    /// `Some(t)` when the node's cap-write path is out until tick `t`.
    write_outage_until: Vec<Option<usize>>,
    /// The previous enforcement round blew its deadline; this epoch
    /// must run degraded.
    prev_round_timed_out: bool,
    sink: Option<Box<dyn CapSink + Send>>,
    /// What the partitioner optimizes (throughput water-fill by
    /// default; max-min or weighted shares for multi-tenant fleets).
    objective: Objective,
    /// Tenants co-located on every node; `None` runs single-tenant.
    tenants: Option<TenantSet>,
    /// `Some(t)` when the tenant's demand spike lasts until tick `t`.
    tenant_spike_until: Vec<Option<usize>>,
    /// `Some(t)` when the tenant hogs as a noisy neighbor until `t`.
    tenant_noisy_until: Vec<Option<usize>>,
}

/// The historical name, kept alive for callers from the pre-health era.
pub type ClusterCoordinator = FleetCoordinator;

impl std::fmt::Debug for FleetCoordinator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetCoordinator")
            .field("nodes", &self.fleet.len())
            .field("global", &self.global)
            .field("plan", &self.plan.name)
            .field("health", &self.health.counts())
            .field("sink", &self.sink.is_some())
            .finish_non_exhaustive()
    }
}

impl FleetCoordinator {
    /// Build a coordinator over `fleet` with `global` watts to divide.
    /// Fails fast when the budget cannot cover every node's floor —
    /// which also guarantees a static fallback partition exists.
    #[must_use = "the coordinator result carries either the coordinator or the infeasibility"]
    pub fn new(fleet: Fleet, global: Watts) -> Result<Self> {
        if !global.is_valid() || global.value() <= 0.0 {
            return Err(PbcError::InvalidInput(format!(
                "global budget must be a positive finite wattage, got {global:?}"
            )));
        }
        let minimum = fleet.min_total_power();
        if global < minimum {
            return Err(PbcError::BudgetTooSmall { requested: global, minimum });
        }
        let fallback = StaticFallback::compute(&fleet, global)?;
        let n = fleet.len();
        pbc_trace::gauge(names::CLUSTER_NODES).set(n as f64);
        // Register the invariant counters so every trace exports them
        // even at zero — absence must never read as cleanliness.
        let _ = pbc_trace::counter(names::CLUSTER_BUDGET_VIOLATIONS);
        let _ = pbc_trace::counter(names::CLUSTER_WRITE_FAILURES);
        let _ = pbc_trace::counter(names::HEALTH_QUARANTINE_LEAKS);
        Ok(Self {
            global,
            initial_global: global,
            grant: DEFAULT_GRANT,
            plan: FleetFaultPlan::calm(0),
            clock: FaultClock::new(),
            retry: RetryPolicy::no_backoff(),
            health: HealthTracker::new(n, HealthConfig::default()),
            fallback,
            enforced: vec![Watts::ZERO; n],
            enforced_hist: vec![Watts::ZERO; n],
            prev_targets: vec![Watts::ZERO; n],
            last_perfs: vec![0.0; n],
            down_until: vec![None; n],
            straggle_until: vec![None; n],
            write_outage_until: vec![None; n],
            prev_round_timed_out: false,
            sink: None,
            objective: Objective::Throughput,
            tenants: None,
            tenant_spike_until: Vec::new(),
            tenant_noisy_until: Vec::new(),
            fleet,
        })
    }

    /// Arm a fault plan for the dynamic mode.
    #[must_use = "the armed coordinator is returned by value"]
    pub fn with_plan(mut self, plan: FleetFaultPlan) -> Result<Self> {
        plan.validate()?;
        self.plan = plan;
        Ok(self)
    }

    /// Override the per-write retry policy (defaults to
    /// [`RetryPolicy::no_backoff`], so fault storms replay at full
    /// speed).
    #[must_use = "the configured coordinator is returned by value"]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = RetryPolicy { max_attempts: retry.max_attempts.max(1), ..retry };
        self
    }

    /// Override the health thresholds.
    #[must_use = "the configured coordinator is returned by value"]
    pub fn with_health_config(mut self, config: HealthConfig) -> Self {
        self.health = HealthTracker::new(self.fleet.len(), config);
        self
    }

    /// Land every successful cap write in `sink` as well (e.g. a mock
    /// RAPL tree). A sink error counts as a failed attempt.
    #[must_use = "the configured coordinator is returned by value"]
    pub fn with_cap_sink(mut self, sink: Box<dyn CapSink + Send>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Choose the allocation objective (defaults to
    /// [`Objective::Throughput`], the historical water-fill).
    #[must_use = "the configured coordinator is returned by value"]
    pub fn with_objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self
    }

    /// Attach a tenant set: every node's share is sub-partitioned among
    /// these tenants (weighted floors first, then surplus by SLA tier),
    /// and per-epoch fairness is scored with Jain's index.
    #[must_use = "the configured coordinator is returned by value"]
    pub fn with_tenants(mut self, tenants: TenantSet) -> Self {
        pbc_trace::gauge(names::CLUSTER_TENANTS).set(tenants.len() as f64);
        // Register the invariant counter so every multi-tenant trace
        // exports it even at zero (see the same pattern in `new`).
        let _ = pbc_trace::counter(names::CLUSTER_TENANT_FLOOR_VIOLATIONS);
        self.tenant_spike_until = vec![None; tenants.len()];
        self.tenant_noisy_until = vec![None; tenants.len()];
        self.tenants = Some(tenants);
        self
    }

    /// The allocation objective in force.
    #[must_use]
    pub fn objective(&self) -> Objective {
        self.objective
    }

    /// The attached tenants, when the fleet runs multi-tenant.
    #[must_use]
    pub fn tenants(&self) -> Option<&TenantSet> {
        self.tenants.as_ref()
    }

    /// The fleet being coordinated.
    #[must_use]
    pub fn fleet(&self) -> &Fleet {
        &self.fleet
    }

    /// The global budget.
    #[must_use]
    pub fn global_budget(&self) -> Watts {
        self.global
    }

    /// The node health tracker.
    #[must_use]
    pub fn health(&self) -> &HealthTracker {
        &self.health
    }

    /// The precomputed degraded-mode partition.
    #[must_use]
    pub fn fallback(&self) -> &StaticFallback {
        &self.fallback
    }

    /// Sum of the caps currently enforced.
    #[must_use]
    pub fn enforced_total(&self) -> Watts {
        self.enforced.iter().copied().sum()
    }

    /// The caps currently enforced, node-indexed.
    #[must_use]
    pub fn enforced_caps(&self) -> &[Watts] {
        &self.enforced
    }

    /// Which nodes are currently down.
    #[must_use]
    pub fn down_mask(&self) -> Vec<bool> {
        self.down_until.iter().map(Option::is_some).collect()
    }

    /// Boot-time provisioning: program every node to its static
    /// fallback share — through the sink when one is armed, with no
    /// fault draws, because the experiment clock has not started — and
    /// record the shares as enforced. The fallback sums to ≤ the global
    /// budget by construction, so `Σ enforced ≤ global` holds from the
    /// first tick instead of starting vacuously at zero.
    #[must_use = "a failed provisioning write leaves the sink and coordinator disagreeing"]
    pub fn provision(&mut self) -> Result<()> {
        for i in 0..self.fleet.len() {
            let share = self.fallback.share(i);
            if let Some(sink) = self.sink.as_mut() {
                sink.write_cap(i, share)?;
            }
            self.enforced[i] = share;
        }
        self.enforced_hist = self.enforced.clone();
        Ok(())
    }

    /// Re-negotiate the global budget mid-run. Rejects non-finite,
    /// non-positive, and below-fleet-floor budgets (counted under
    /// `cluster.rejected_budgets`); an accepted budget recomputes the
    /// static fallback so degraded mode stays safe under the new bound.
    #[must_use = "a rejected budget means the old bound is still in force"]
    pub fn set_global_budget(&mut self, budget: Watts) -> Result<()> {
        if !budget.is_valid() || budget.value() <= 0.0 {
            pbc_trace::counter(names::CLUSTER_REJECTED_BUDGETS).incr();
            return Err(PbcError::InvalidInput(format!(
                "global budget must be a positive finite wattage, got {budget:?}"
            )));
        }
        let minimum = self.fleet.min_total_power();
        if budget < minimum {
            pbc_trace::counter(names::CLUSTER_REJECTED_BUDGETS).incr();
            return Err(PbcError::BudgetTooSmall { requested: budget, minimum });
        }
        self.fallback = StaticFallback::compute(&self.fleet, budget)?;
        self.global = budget;
        pbc_trace::counter(names::CLUSTER_BUDGET_RESETS).incr();
        Ok(())
    }

    /// Water-fill the global budget and evaluate every node's share, on
    /// the global pool.
    #[must_use = "the decision result carries either the partition or the failure"]
    pub fn coordinate(&self) -> Result<ClusterDecision> {
        self.coordinate_with_pool(Pool::global())
    }

    /// [`FleetCoordinator::coordinate`] on an explicit pool.
    #[must_use = "the decision result carries either the partition or the failure"]
    pub fn coordinate_with_pool(&self, pool: &Pool) -> Result<ClusterDecision> {
        let curves = self.node_curves();
        let shares = fill_shares(&curves, &[], self.global, self.grant, self.objective)?;
        evaluate(&self.fleet, &shares, &vec![false; self.fleet.len()], pool)
    }

    /// The baseline: split the global budget evenly, floors and curves
    /// ignored, and evaluate the same way. On a heterogeneous fleet the
    /// even share under-feeds hungry nodes and strands watts on
    /// saturated ones — the gap the experiments measure.
    #[must_use = "the decision result carries either the partition or the failure"]
    pub fn uniform_decision(&self) -> Result<ClusterDecision> {
        self.uniform_decision_with_pool(Pool::global())
    }

    /// [`FleetCoordinator::uniform_decision`] on an explicit pool.
    #[must_use = "the decision result carries either the partition or the failure"]
    pub fn uniform_decision_with_pool(&self, pool: &Pool) -> Result<ClusterDecision> {
        let shares = uniform_split(self.fleet.len(), self.global);
        evaluate(&self.fleet, &shares, &vec![false; self.fleet.len()], pool)
    }

    /// The oracle aggregate at the water-filled shares: what the
    /// interpolated sweep curves promise, with no COORD heuristic or
    /// enforcement in the way. An upper reference line for `ext7`.
    #[must_use = "the oracle result carries either the aggregate or the infeasibility"]
    pub fn oracle_aggregate(&self) -> Result<f64> {
        let curves = self.node_curves();
        let shares = fill_shares(&curves, &[], self.global, self.grant, self.objective)?;
        Ok(shares
            .iter()
            .zip(curves.iter())
            .map(|(s, c)| c.curve.perf_at(*s))
            .sum())
    }

    /// One dynamic epoch on the global pool (see the module docs for
    /// the pipeline).
    #[must_use = "the epoch result carries either the report or the failure"]
    pub fn step(&mut self) -> Result<EpochReport> {
        self.step_with_pool(Pool::global())
    }

    /// [`FleetCoordinator::step`] on an explicit pool.
    #[must_use = "the epoch result carries either the report or the failure"]
    pub fn step_with_pool(&mut self, pool: &Pool) -> Result<EpochReport> {
        let tick = self.clock.advance();
        let n = self.fleet.len();

        // Scheduled budget re-negotiations, factors of the initial
        // budget. A rejection (e.g. a cut below the fleet floor) is
        // counted and ignored — a lying schedule must not crash the
        // fleet.
        for k in 0..self.plan.budget_steps.len() {
            let s = self.plan.budget_steps[k];
            if s.at == tick {
                let _ = self.set_global_budget(self.initial_global * s.factor);
            }
        }

        let (dropped, recovered) = self.roll_membership(tick);
        self.roll_stragglers(tick);
        self.roll_write_outages(tick);
        let (tenant_spikes, tenant_noisy) = self.roll_tenant_demand(tick);
        let down: Vec<bool> = self.down_until.iter().map(Option::is_some).collect();
        let up = down.iter().filter(|d| !**d).count();

        // Reports describe the previous epoch; collect, validate, and
        // fold the verdicts into the health machine.
        let prev_enforced = self.enforced.clone();
        let (missed_reports, rejected_reports) =
            self.observe_reports(tick, &prev_enforced, &down);

        // Decide the mode and the targets.
        let mut degraded =
            self.plan.coordinator_outage.active(tick) || self.prev_round_timed_out;
        let mut targets = vec![Watts::ZERO; n];
        if !degraded && !self.fill_targets(&down, &mut targets) {
            degraded = true;
        }
        if degraded {
            pbc_trace::counter(names::CLUSTER_DEGRADED_EPOCHS).incr();
            for i in 0..n {
                if !down[i] {
                    targets[i] = self.fallback.share(i);
                }
            }
        }

        let mut decision = evaluate(&self.fleet, &targets, &down, pool)?;
        // Stragglers run slow: their contribution shrinks by the plan's
        // slowdown factor.
        let mut dirty = false;
        for i in 0..n {
            if self.straggle_until[i].is_some() && !down[i] {
                decision.perfs[i] *= self.plan.nodes.slowdown;
                dirty = true;
            }
        }
        if dirty {
            decision.aggregate_perf = decision.perfs.iter().sum();
        }

        let stats = self.enforce_supervised(tick, &targets, &down);
        self.prev_round_timed_out = stats.timed_out;
        if stats.timed_out {
            pbc_trace::counter(names::CLUSTER_ROUND_TIMEOUTS).incr();
        }

        // The budget invariant. Decreases-first makes a violation
        // structurally impossible; the counter is the proof the trace
        // carries out to the chaos assertions.
        let enforced_total = self.enforced_total();
        if enforced_total.value() > self.global.value() + EPS_W {
            pbc_trace::counter(names::CLUSTER_BUDGET_VIOLATIONS).incr();
        }

        let moved_raw: f64 = targets
            .iter()
            .zip(self.prev_targets.iter())
            .map(|(now, was)| (*now - *was).abs().value())
            .sum();
        let moved = Watts::new(moved_raw / 2.0);
        if moved.value() > EPS_W {
            pbc_trace::counter(names::CLUSTER_REDISTRIBUTIONS).incr();
        }
        self.prev_targets = targets;
        self.enforced_hist = prev_enforced;
        self.last_perfs = decision.perfs.clone();

        // Watts the healthy pool gained from nodes that are down or
        // held at their floors, measured against the known-safe static
        // partition.
        let reclaimed: Watts = (0..n)
            .filter(|&i| {
                down[i]
                    || matches!(
                        self.health.state(i),
                        NodeHealth::Quarantined | NodeHealth::Rejoining
                    )
            })
            .map(|i| (self.fallback.share(i) - self.enforced[i]).max(Watts::ZERO))
            .sum();

        // Tenant accounting: sub-partition every live node's enforced
        // cap, score fleet-level fairness, and verify the weighted
        // floors held — the multi-tenant mirror of the budget audit.
        let tenancy = self.tenant_epoch(&down);

        let health = self.health.counts();
        pbc_trace::counter(names::CLUSTER_EPOCHS).incr();
        pbc_trace::gauge(names::CLUSTER_NODES_UP).set(up as f64);
        pbc_trace::gauge(names::CLUSTER_MOVED_W).set(moved.value());
        pbc_trace::gauge(names::CLUSTER_AGGREGATE_PERF).set(decision.aggregate_perf);
        pbc_trace::gauge(names::CLUSTER_RECLAIMED_W).set(reclaimed.value());
        pbc_trace::gauge(names::HEALTH_HEALTHY_NODES).set(health.healthy as f64);

        Ok(EpochReport {
            tick,
            nodes_up: up,
            dropped,
            recovered,
            write_failures: stats.failures,
            write_retries: stats.retries,
            missed_reports,
            rejected_reports,
            degraded,
            round_timed_out: stats.timed_out,
            health,
            aggregate_perf: decision.aggregate_perf,
            enforced_total,
            moved,
            reclaimed,
            tenant_spikes,
            tenant_noisy,
            tenant_preemptions: tenancy.preemptions,
            tenant_floor_violations: tenancy.floor_violations,
            tenant_jain: tenancy.jain,
        })
    }

    /// Run `epochs` dynamic epochs and summarize.
    #[must_use = "the run result carries either the survival report or the failure"]
    pub fn run(&mut self, epochs: usize) -> Result<ClusterReport> {
        self.run_with_pool(epochs, Pool::global())
    }

    /// [`FleetCoordinator::run`] on an explicit pool.
    #[must_use = "the run result carries either the survival report or the failure"]
    pub fn run_with_pool(&mut self, epochs: usize, pool: &Pool) -> Result<ClusterReport> {
        let n = self.fleet.len();
        let quiet = self.plan.quiet_after();
        let tally_before = self.health.tally();
        let leaks_before = pbc_trace::counter(names::HEALTH_QUARANTINE_LEAKS).get();
        let mut report = ClusterReport {
            min_nodes_up: n,
            min_tenant_jain: 1.0,
            ..ClusterReport::default()
        };
        let mut healthy_node_epochs = 0usize;
        for _ in 0..epochs {
            let e = self.step_with_pool(pool)?;
            report.epochs += 1;
            report.dropouts += e.dropped;
            report.recoveries += e.recovered;
            report.write_failures += e.write_failures;
            report.write_retries += e.write_retries;
            report.missed_reports += e.missed_reports;
            report.rejected_reports += e.rejected_reports;
            report.tenant_spikes += e.tenant_spikes;
            report.tenant_noisy += e.tenant_noisy;
            report.tenant_preemptions += e.tenant_preemptions;
            report.tenant_floor_violations += e.tenant_floor_violations;
            report.min_tenant_jain = report.min_tenant_jain.min(e.tenant_jain);
            if e.degraded {
                report.degraded_epochs += 1;
            }
            if e.round_timed_out {
                report.round_timeouts += 1;
            }
            if e.enforced_total.value() > self.global.value() + EPS_W {
                report.budget_violations += 1;
            }
            report.min_nodes_up = report.min_nodes_up.min(e.nodes_up);
            report.final_aggregate = e.aggregate_perf;
            report.work_done += e.aggregate_perf;
            healthy_node_epochs += e.health.healthy;
            if report.reconverged_at.is_none()
                && e.tick >= quiet
                && !e.degraded
                && e.health.healthy == n
            {
                report.reconverged_at = Some(e.tick);
            }
        }
        let tally = self.health.tally();
        report.quarantines = tally.quarantines - tally_before.quarantines;
        report.rejoins = tally.rejoins - tally_before.rejoins;
        report.quarantine_leaks = (pbc_trace::counter(names::HEALTH_QUARANTINE_LEAKS).get()
            - leaks_before) as usize;
        if report.epochs > 0 {
            report.mean_aggregate = report.work_done / report.epochs as f64;
            report.availability = healthy_node_epochs as f64 / (report.epochs * n.max(1)) as f64;
        }
        Ok(report)
    }

    fn node_curves(&self) -> Vec<NodeCurve<'_>> {
        self.fleet
            .nodes
            .iter()
            .map(|&c| NodeCurve {
                floor: self.fleet.classes[c].floor,
                curve: &self.fleet.classes[c].curve,
            })
            .collect()
    }

    /// Crash/rejoin decisions for this tick. Each node draws from a
    /// fresh generator keyed `(seed, tick, STREAM_NODE, node)` — the
    /// inject.rs contract — so membership replays bit-identically.
    fn roll_membership(&mut self, tick: usize) -> (usize, usize) {
        let mut dropped = 0;
        let mut recovered = 0;
        for i in 0..self.down_until.len() {
            if let Some(until) = self.down_until[i] {
                if tick >= until {
                    self.down_until[i] = None;
                    recovered += 1;
                    pbc_trace::counter(names::CLUSTER_RECOVERIES).incr();
                }
                continue;
            }
            let faults = &self.plan.nodes;
            if faults.crash_prob > 0.0 && faults.crash_window.active(tick) {
                let mut rng = decision_rng(self.plan.seed, tick, STREAM_NODE, i as u64);
                if rng.next_f64() < faults.crash_prob {
                    self.down_until[i] = Some(tick + faults.outage_epochs.max(1));
                    dropped += 1;
                    pbc_trace::counter(names::CLUSTER_DROPOUTS).incr();
                }
            }
        }
        (dropped, recovered)
    }

    /// Straggler onset/expiry for this tick. A down node cannot also
    /// straggle; a straggler that crashes stays down-dominated.
    fn roll_stragglers(&mut self, tick: usize) {
        let faults = self.plan.nodes;
        for i in 0..self.straggle_until.len() {
            if let Some(until) = self.straggle_until[i] {
                if tick >= until {
                    self.straggle_until[i] = None;
                }
                continue;
            }
            if faults.straggler_prob > 0.0
                && faults.straggler_window.active(tick)
                && self.down_until[i].is_none()
            {
                let mut rng = decision_rng(self.plan.seed, tick, STREAM_STRAGGLE, i as u64);
                if rng.next_f64() < faults.straggler_prob {
                    self.straggle_until[i] = Some(tick + faults.straggle_epochs.max(1));
                }
            }
        }
    }

    /// Tenant demand-spike and noisy-neighbor onset/expiry for this
    /// tick. Inert without tenants: no draws, so single-tenant runs
    /// replay exactly as before tenancy existed. Returns `(spikes,
    /// noisy)` onset counts.
    fn roll_tenant_demand(&mut self, tick: usize) -> (usize, usize) {
        if self.tenants.is_none() {
            return (0, 0);
        }
        let faults = self.plan.tenants;
        let mut spikes = 0;
        let mut noisy = 0;
        for t in 0..self.tenant_spike_until.len() {
            match self.tenant_spike_until[t] {
                Some(until) if tick >= until => self.tenant_spike_until[t] = None,
                Some(_) => {}
                None if faults.spike_prob > 0.0 && faults.spike_window.active(tick) => {
                    let mut rng = decision_rng(self.plan.seed, tick, STREAM_TENANT_SPIKE, t as u64);
                    if rng.next_f64() < faults.spike_prob {
                        self.tenant_spike_until[t] = Some(tick + faults.spike_epochs.max(1));
                        spikes += 1;
                        pbc_trace::counter(names::CLUSTER_TENANT_SPIKES).incr();
                    }
                }
                None => {}
            }
            match self.tenant_noisy_until[t] {
                Some(until) if tick >= until => self.tenant_noisy_until[t] = None,
                Some(_) => {}
                None if faults.noisy_prob > 0.0 && faults.noisy_window.active(tick) => {
                    let mut rng = decision_rng(self.plan.seed, tick, STREAM_TENANT_NOISY, t as u64);
                    if rng.next_f64() < faults.noisy_prob {
                        self.tenant_noisy_until[t] = Some(tick + faults.noisy_epochs.max(1));
                        noisy += 1;
                        pbc_trace::counter(names::CLUSTER_TENANT_NOISY).incr();
                    }
                }
                None => {}
            }
        }
        (spikes, noisy)
    }

    /// The demand multiplier each tenant currently runs at: 1 when
    /// calm, the plan's spike/noisy factor (whichever is larger) while
    /// an event is active.
    fn tenant_demand(&self) -> Vec<f64> {
        let faults = self.plan.tenants;
        (0..self.tenant_spike_until.len())
            .map(|t| {
                let mut d = 1.0f64;
                if self.tenant_spike_until[t].is_some() {
                    d = d.max(faults.spike_factor);
                }
                if self.tenant_noisy_until[t].is_some() {
                    d = d.max(faults.noisy_factor);
                }
                d
            })
            .collect()
    }

    /// Per-node cap-write-path outage onset/expiry for this tick.
    fn roll_write_outages(&mut self, tick: usize) {
        let faults = self.plan.writes;
        for i in 0..self.write_outage_until.len() {
            if let Some(until) = self.write_outage_until[i] {
                if tick >= until {
                    self.write_outage_until[i] = None;
                }
                continue;
            }
            if faults.outage_prob > 0.0 && faults.outage_window.active(tick) {
                let mut rng = decision_rng(self.plan.seed, tick, STREAM_WRITE_OUTAGE, i as u64);
                if rng.next_f64() < faults.outage_prob {
                    self.write_outage_until[i] = Some(tick + faults.outage_epochs.max(1));
                }
            }
        }
    }

    /// Simulate, validate, and ingest every node's observation report.
    /// Returns `(missed, rejected)` counts for the epoch.
    fn observe_reports(
        &mut self,
        tick: usize,
        prev_enforced: &[Watts],
        down: &[bool],
    ) -> (usize, usize) {
        let mut missed = 0;
        let mut rejected = 0;
        for i in 0..self.fleet.len() {
            let verdict = self.node_report_verdict(tick, i, prev_enforced, down[i]);
            match verdict {
                ReportVerdict::Missing => {
                    missed += 1;
                    pbc_trace::counter(names::CLUSTER_MISSED_REPORTS).incr();
                }
                ReportVerdict::Rejected => {
                    rejected += 1;
                    pbc_trace::counter(names::CLUSTER_REJECTED_REPORTS).incr();
                }
                ReportVerdict::Accepted => {}
            }
            self.health.observe(i, verdict);
        }
        (missed, rejected)
    }

    /// One node's report for this epoch, faults applied, then passed
    /// through the same validation gate `OnlineCoordinator` applies to
    /// observations: non-finite, out-of-range, and stale-cap rejection.
    fn node_report_verdict(
        &self,
        tick: usize,
        node: usize,
        prev_enforced: &[Watts],
        down: bool,
    ) -> ReportVerdict {
        if down {
            return ReportVerdict::Missing;
        }
        // The honest report: the cap the node ran on last epoch and the
        // throughput it measured. A straggler lags one epoch further
        // behind, so its cap snapshot is one epoch staler.
        let mut cap = prev_enforced[node];
        let mut perf = self.last_perfs[node];
        if self.straggle_until[node].is_some() {
            cap = self.enforced_hist[node];
        }
        let faults = self.plan.reports;
        if faults.window.active(tick) {
            let mut rng = decision_rng(self.plan.seed, tick, STREAM_REPORT, node as u64);
            let u = rng.next_f64();
            if u < faults.drop_prob {
                return ReportVerdict::Missing;
            } else if u < faults.drop_prob + faults.delay_prob {
                cap = self.enforced_hist[node];
            } else if u < faults.drop_prob + faults.delay_prob + faults.garble_prob {
                let g = rng.next_f64();
                if g < 1.0 / 3.0 {
                    perf = f64::NAN;
                } else if g < 2.0 / 3.0 {
                    perf = 1.0e9;
                } else {
                    cap = Watts::new(-5.0);
                }
            }
        }
        // The validation gate (mirrors `OnlineCoordinator::validate`).
        if !perf.is_finite() || perf < 0.0 {
            return ReportVerdict::Rejected;
        }
        if perf > MAX_CREDIBLE_PERF || !cap.is_valid() {
            return ReportVerdict::Rejected;
        }
        if (cap - prev_enforced[node]).abs().value() > STALE_CAP_TOLERANCE {
            return ReportVerdict::Rejected;
        }
        ReportVerdict::Accepted
    }

    /// Water-fill targets over the trusted membership. Healthy and
    /// Suspect nodes participate; Quarantined and Rejoining nodes are
    /// reserved at their class floors (a possibly-alive node is never
    /// starved below its floor); Suspects are then capped at their
    /// standing grant so untrusted telemetry cannot win raises. Returns
    /// `false` when the fill is infeasible — the caller degrades.
    fn fill_targets(&self, down: &[bool], targets: &mut [Watts]) -> bool {
        let n = self.fleet.len();
        let curves = self.node_curves();
        let mut allocatable = Vec::new();
        let mut reserved = Watts::ZERO;
        for i in 0..n {
            if down[i] {
                continue;
            }
            match self.health.state(i) {
                NodeHealth::Healthy | NodeHealth::Suspect => allocatable.push(i),
                NodeHealth::Quarantined | NodeHealth::Rejoining => {
                    let floor = self.fleet.class_of(i).floor;
                    targets[i] = floor;
                    reserved += floor;
                }
            }
        }
        if reserved > self.global {
            return false;
        }
        if allocatable.is_empty() {
            return true;
        }
        let avail = self.global - reserved;
        let live_curves: Vec<NodeCurve<'_>> = allocatable.iter().map(|&i| curves[i]).collect();
        let shares = match fill_shares(&live_curves, &[], avail, self.grant, self.objective) {
            Ok(s) => s,
            Err(e) if e.is_infeasible() => return false,
            // The fill only fails on infeasibility today; treat
            // anything else the same way — degraded is the safe floor.
            Err(_) => return false,
        };
        for (k, &i) in allocatable.iter().enumerate() {
            targets[i] = shares[k];
            if self.health.state(i) == NodeHealth::Suspect {
                // No raises on untrusted telemetry: hold at the larger
                // of the standing cap and the floor. The clamped watts
                // stay unspent this epoch — the safe direction.
                let hold = self.enforced[i].max(self.fleet.class_of(i).floor);
                targets[i] = targets[i].min(hold);
            }
        }
        true
    }

    /// Sub-partition every live node's enforced cap among the tenants
    /// and score the epoch: fleet-level Jain index on weight-normalized
    /// tenant watts, preemption events, and weighted-floor violations
    /// (structurally zero). Single-tenant fleets score a perfect 1.
    fn tenant_epoch(&self, down: &[bool]) -> TenancyStats {
        let Some(tenants) = self.tenants.as_ref() else {
            return TenancyStats::default();
        };
        let demand = self.tenant_demand();
        let mut watts = vec![0.0f64; tenants.len()];
        let mut preemptions = 0;
        let mut floor_violations = 0;
        for i in 0..self.fleet.len() {
            if down[i] || self.enforced[i].value() <= EPS_W {
                continue;
            }
            let floor = self.fleet.class_of(i).floor;
            let split = tenants.split_node(self.enforced[i], floor, &demand);
            preemptions += split.preemptions;
            floor_violations += split.floor_violations;
            for (t, s) in split.shares.iter().enumerate() {
                watts[t] += s.value();
            }
        }
        let normalized: Vec<f64> = watts
            .iter()
            .zip(tenants.tenants().iter())
            .map(|(w, t)| w / t.weight)
            .collect();
        let jain = jain_index(&normalized);
        if preemptions > 0 {
            pbc_trace::counter(names::CLUSTER_TENANT_PREEMPTIONS).add(preemptions as u64);
        }
        if floor_violations > 0 {
            pbc_trace::counter(names::CLUSTER_TENANT_FLOOR_VIOLATIONS)
                .add(floor_violations as u64);
        }
        pbc_trace::gauge(names::CLUSTER_TENANT_JAIN).set(jain);
        TenancyStats { jain, preemptions, floor_violations }
    }

    /// Move enforced caps toward `targets`, decreases first, each write
    /// supervised by the retry policy under a per-round attempt
    /// deadline. A down node's cap releases unconditionally (its draw
    /// is gone whether or not a write lands); a failed decrease keeps
    /// its watts reserved; raises are funded strictly from the pot the
    /// confirmed decreases left, so `Σ enforced ≤ global` is an
    /// invariant, not an aspiration.
    fn enforce_supervised(&mut self, tick: usize, targets: &[Watts], down: &[bool]) -> WriteStats {
        let n = targets.len();
        let mut stats = WriteStats::default();
        // The round's write-attempt deadline: enough for every node's
        // write to retry once on average. A fault storm that needs more
        // is a timed-out round, not a wedged fleet.
        let mut attempts_left = n * (self.retry.max_attempts as usize).max(1);

        // Phase 1: releases.
        for i in 0..n {
            if down[i] {
                self.enforced[i] = Watts::ZERO;
                continue;
            }
            if targets[i] < self.enforced[i] {
                if stats.timed_out {
                    continue; // watts stay reserved — the safe direction
                }
                if self.try_write(tick, i, targets[i], &mut attempts_left, &mut stats) {
                    self.enforced[i] = targets[i];
                }
            }
        }

        // Phase 2: raises, funded only by what phase 1 actually freed.
        let spent = self.enforced_total();
        let pot_legit = (self.global - spent).max(Watts::ZERO);
        let mut pot = pot_legit;
        let mut raised = Watts::ZERO;
        for i in 0..n {
            if stats.timed_out {
                break;
            }
            if down[i] || targets[i] <= self.enforced[i] {
                continue;
            }
            let want = targets[i] - self.enforced[i];
            let raise = want.min(pot);
            if raise.value() <= EPS_W {
                continue;
            }
            let next = self.enforced[i] + raise;
            if self.try_write(tick, i, next, &mut attempts_left, &mut stats) {
                self.enforced[i] = next;
                pot = pot - raise;
                raised += raise;
            }
        }

        // The leak audit: raises applied must never exceed the pot the
        // confirmed decreases legitimately left. Structurally zero —
        // the counter is the exported proof.
        if raised.value() > pot_legit.value() + EPS_W {
            pbc_trace::counter(names::HEALTH_QUARANTINE_LEAKS).incr();
        }
        stats
    }

    /// One supervised cap write: up to `max_attempts` tries against the
    /// plan's fault draw (and the sink, when armed), spending from the
    /// round's shared attempt budget. Returns `true` when the write
    /// landed.
    fn try_write(
        &mut self,
        tick: usize,
        node: usize,
        target: Watts,
        attempts_left: &mut usize,
        stats: &mut WriteStats,
    ) -> bool {
        for attempt in 0..self.retry.max_attempts.max(1) {
            if *attempts_left == 0 {
                stats.timed_out = true;
                return false;
            }
            *attempts_left -= 1;
            if attempt > 0 {
                stats.retries += 1;
                pbc_trace::counter(names::CLUSTER_WRITE_RETRIES).incr();
                let ms = self.retry.backoff_ms(attempt - 1);
                if ms > 0 {
                    std::thread::sleep(std::time::Duration::from_millis(ms));
                }
            }
            if self.write_attempt_fails(tick, node, target, attempt) {
                continue;
            }
            if let Some(sink) = self.sink.as_mut() {
                if sink.write_cap(node, target).is_err() {
                    continue;
                }
            }
            return true;
        }
        stats.failures += 1;
        pbc_trace::counter(names::CLUSTER_WRITE_FAILURES).incr();
        false
    }

    /// Does this write attempt fail under the plan? An active per-node
    /// write outage fails every attempt (retries cannot absorb it);
    /// stochastic failures re-draw per attempt, so retries can.
    fn write_attempt_fails(&self, tick: usize, node: usize, target: Watts, attempt: u32) -> bool {
        if self.write_outage_until[node].is_some() {
            return true;
        }
        let faults = self.plan.writes;
        if faults.fail_prob <= 0.0 || !faults.window.active(tick) {
            return false;
        }
        let key = write_key(&format!("cluster.node{node}"), target);
        let stream = STREAM_CAP ^ key.wrapping_mul(GOLDEN);
        let mut rng = decision_rng(self.plan.seed, tick, stream, u64::from(attempt));
        rng.next_f64() < faults.fail_prob
    }
}

/// Coordinate and price every node's share, fanned out on `pool`. Down
/// nodes contribute nothing without touching the infeasibility counter;
/// an infeasible share (COORD or the solver refusing it) scores 0.0;
/// real solver errors fail the whole evaluation; worker panics re-raise
/// on the caller.
fn evaluate(fleet: &Fleet, shares: &[Watts], down: &[bool], pool: &Pool) -> Result<ClusterDecision> {
    let n = shares.len();
    type Slot = Mutex<Option<Result<(Option<PowerAllocation>, f64)>>>;
    let slots: Vec<Slot> = (0..n).map(|_| Mutex::new(None)).collect();
    let memos: Vec<Arc<SolveMemo>> = fleet
        .classes
        .iter()
        .map(|c| SolveMemo::for_problem(&c.platform, &c.demand))
        .collect();
    let task = |i: usize| {
        let out = if down[i] {
            Ok((None, 0.0))
        } else {
            eval_node(fleet, &memos, i, shares[i])
        };
        if let Ok(mut slot) = slots[i].lock() {
            *slot = Some(out);
        }
    };
    let stats = pool.run(n, &task);
    if let Some(payload) = stats.panic {
        std::panic::resume_unwind(payload);
    }
    let mut allocs = Vec::with_capacity(n);
    let mut perfs = Vec::with_capacity(n);
    let mut infeasible = 0;
    for (i, slot) in slots.into_iter().enumerate() {
        let taken = slot.into_inner().unwrap_or(None);
        match taken {
            Some(Ok((alloc, perf))) => {
                if alloc.is_none() && !down[i] {
                    infeasible += 1;
                    pbc_trace::counter(names::CLUSTER_INFEASIBLE_NODES).incr();
                }
                allocs.push(alloc);
                perfs.push(perf);
            }
            Some(Err(e)) => return Err(e),
            None => {
                return Err(PbcError::InvalidInput(format!(
                    "cluster evaluation lost node {i} (worker never reported)"
                )))
            }
        }
    }
    let aggregate_perf = perfs.iter().sum();
    Ok(ClusterDecision { shares: shares.to_vec(), allocs, perfs, aggregate_perf, infeasible })
}

fn eval_node(
    fleet: &Fleet,
    memos: &[Arc<SolveMemo>],
    node: usize,
    share: Watts,
) -> Result<(Option<PowerAllocation>, f64)> {
    let class = fleet.class_of(node);
    let coord = match class.coordinate(share) {
        Ok(r) => r,
        Err(e) if e.is_infeasible() => return Ok((None, 0.0)),
        Err(e) => return Err(e),
    };
    match memos[fleet.nodes[node]].solve(coord.alloc) {
        Ok(op) => Ok((Some(coord.alloc), op.perf_rel)),
        Err(e) if e.is_infeasible() => Ok((None, 0.0)),
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::parse_spec;
    use pbc_faults::FaultWindow;

    fn mixed_fleet() -> Fleet {
        let spec = parse_spec(
            "4 ivybridge stream\n\
             4 haswell dgemm\n\
             2 titan-xp sgemm\n",
        )
        .unwrap();
        Fleet::build(&spec).unwrap()
    }

    #[test]
    fn coordinated_beats_uniform_on_a_mixed_fleet() {
        let fleet = mixed_fleet();
        let global = fleet.min_total_power() + Watts::new(220.0);
        let coord = FleetCoordinator::new(fleet, global).unwrap();
        let smart = coord.coordinate().unwrap();
        let naive = coord.uniform_decision().unwrap();
        let total: f64 = smart.shares.iter().map(|s| s.value()).sum();
        assert!((total - global.value()).abs() < 1e-6, "shares must conserve the budget");
        assert!(
            smart.aggregate_perf > naive.aggregate_perf,
            "water-filling {:.3} must beat uniform {:.3}",
            smart.aggregate_perf,
            naive.aggregate_perf
        );
    }

    #[test]
    fn budget_below_the_fleet_floor_is_refused() {
        let fleet = mixed_fleet();
        let too_small = fleet.min_total_power() - Watts::new(1.0);
        assert!(FleetCoordinator::new(fleet, too_small).is_err());
    }

    #[test]
    fn calm_run_never_violates_and_keeps_every_node_up() {
        let fleet = mixed_fleet();
        let global = fleet.min_total_power() + Watts::new(150.0);
        let n = fleet.len();
        let mut coord = FleetCoordinator::new(fleet, global).unwrap();
        let report = coord.run(6).unwrap();
        assert!(report.survived());
        assert_eq!(report.min_nodes_up, n);
        assert_eq!(report.dropouts, 0);
        assert_eq!(report.degraded_epochs, 0);
        assert!((report.availability - 1.0).abs() < 1e-12);
        assert!(report.final_aggregate > 0.0);
        assert_eq!(report.reconverged_at, Some(0), "a calm run is converged from tick 0");
    }

    #[test]
    fn crashes_quarantine_reclaim_and_rejoin() {
        let fleet = mixed_fleet();
        let global = fleet.min_total_power() + Watts::new(150.0);
        let mut coord = FleetCoordinator::new(fleet, global)
            .unwrap()
            .with_plan(FleetFaultPlan::node_crash(7))
            .unwrap();
        let quiet = FleetFaultPlan::node_crash(7).quiet_after();
        let report = coord.run(quiet + 12).unwrap();
        assert!(report.dropouts > 0, "node-crash at seed 7 should drop nodes");
        assert!(report.recoveries > 0, "crashed nodes should come back");
        assert!(report.quarantines > 0, "silent nodes must be quarantined");
        assert!(report.rejoins > 0, "returning nodes must pass through Rejoining");
        assert!(report.missed_reports > 0, "down nodes send nothing");
        assert_eq!(report.budget_violations, 0);
        assert_eq!(report.quarantine_leaks, 0);
        assert!(report.survived());
        assert!(
            report.reconverged_at.is_some(),
            "the fleet must reconverge to all-Healthy after the plan goes quiet"
        );
        assert!(report.availability < 1.0, "crashes must dent availability");
    }

    #[test]
    fn everything_plan_survives_with_health_and_degraded_epochs() {
        let fleet = mixed_fleet();
        let global = fleet.min_total_power() + Watts::new(150.0);
        let plan = FleetFaultPlan::everything(7);
        let quiet = plan.quiet_after();
        let mut coord = FleetCoordinator::new(fleet, global)
            .unwrap()
            .with_plan(plan)
            .unwrap();
        let report = coord.run(quiet + 12).unwrap();
        assert!(report.dropouts > 0);
        assert!(report.degraded_epochs > 0, "the coordinator outage must degrade epochs");
        assert!(report.rejected_reports > 0, "garbled reports must be rejected");
        assert_eq!(report.budget_violations, 0, "decreases-first must hold the cap");
        assert_eq!(report.quarantine_leaks, 0);
        assert!(report.survived());
    }

    #[test]
    fn coordinator_outage_serves_the_fallback_partition() {
        let fleet = mixed_fleet();
        let global = fleet.min_total_power() + Watts::new(150.0);
        let plan = FleetFaultPlan {
            coordinator_outage: FaultWindow::new(0, 3),
            ..FleetFaultPlan::calm(1)
        };
        let mut coord = FleetCoordinator::new(fleet, global)
            .unwrap()
            .with_plan(plan)
            .unwrap();
        let fallback_total = coord.fallback().total();
        let e = coord.step().unwrap();
        assert!(e.degraded);
        assert!(e.enforced_total <= global + Watts::new(1e-6));
        assert!((e.enforced_total.value() - fallback_total.value()).abs() < 1e-6);
        let report = coord.run(5).unwrap();
        assert_eq!(report.degraded_epochs, 2, "outage covers ticks 1 and 2 of the run");
        assert!(report.survived());
    }

    #[test]
    fn budget_cut_mid_run_is_applied_and_bad_budgets_are_rejected() {
        let fleet = mixed_fleet();
        let floor = fleet.min_total_power();
        let global = floor + Watts::new(150.0);
        let mut coord = FleetCoordinator::new(fleet, global).unwrap();
        let _ = coord.run(3).unwrap();
        let cut = floor + Watts::new(40.0);
        coord.set_global_budget(cut).unwrap();
        assert_eq!(coord.global_budget(), cut);
        let report = coord.run(4).unwrap();
        assert_eq!(report.budget_violations, 0);
        assert!(coord.enforced_total() <= cut + Watts::new(1e-6));
        // Garbage budgets are typed rejections, not panics.
        assert!(coord.set_global_budget(Watts::new(f64::NAN)).is_err());
        assert!(coord.set_global_budget(Watts::new(-5.0)).is_err());
        assert!(coord.set_global_budget(floor - Watts::new(1.0)).is_err());
        assert_eq!(coord.global_budget(), cut, "rejected budgets must not stick");
    }

    #[test]
    fn chaos_replays_are_bit_identical() {
        let fleet = mixed_fleet();
        let global = fleet.min_total_power() + Watts::new(150.0);
        let run = |threads: usize| {
            let pool = Pool::new(threads);
            let mut coord = FleetCoordinator::new(fleet.clone(), global)
                .unwrap()
                .with_plan(FleetFaultPlan::everything(11))
                .unwrap();
            coord.run_with_pool(30, &pool).unwrap()
        };
        let a = run(1);
        let b = run(4);
        assert_eq!(a, b, "the same plan must replay identically across thread counts");
    }

    #[test]
    fn tenant_chaos_never_overdraws_or_starves_a_floor() {
        let fleet = mixed_fleet();
        let global = fleet.min_total_power() + Watts::new(150.0);
        let tenants = TenantSet::parse("batch:1:best-effort,web:3:gold,etl:2:silver").unwrap();
        let plan = FleetFaultPlan::noisy_neighbor(9);
        let quiet = plan.quiet_after();
        let mut coord = FleetCoordinator::new(fleet, global)
            .unwrap()
            .with_plan(plan)
            .unwrap()
            .with_tenants(tenants);
        let report = coord.run(quiet + 8).unwrap();
        assert!(report.tenant_spikes + report.tenant_noisy > 0, "seed 9 must fire tenant events");
        assert_eq!(report.budget_violations, 0, "demand spikes must never overdraw the budget");
        assert_eq!(report.tenant_floor_violations, 0, "no weighted tenant may fall below its floor");
        assert!(report.survived());
        assert!(report.min_tenant_jain > 0.0 && report.min_tenant_jain <= 1.0 + 1e-12);
    }

    #[test]
    fn objective_runs_replay_bit_identically() {
        let fleet = mixed_fleet();
        let global = fleet.min_total_power() + Watts::new(150.0);
        for objective in [Objective::MaxMin, Objective::WeightedShares] {
            let run = |threads: usize| {
                let pool = Pool::new(threads);
                let mut coord = FleetCoordinator::new(fleet.clone(), global)
                    .unwrap()
                    .with_plan(FleetFaultPlan::demand_spike(13))
                    .unwrap()
                    .with_objective(objective)
                    .with_tenants(TenantSet::parse("a:1:gold,b:2").unwrap());
                coord.run_with_pool(24, &pool).unwrap()
            };
            let a = run(1);
            let b = run(4);
            assert_eq!(a, b, "{} runs must replay identically across thread counts", objective.name());
        }
    }

    #[test]
    fn single_tenant_runs_match_the_untenanted_baseline() {
        let fleet = mixed_fleet();
        let global = fleet.min_total_power() + Watts::new(150.0);
        let plan = FleetFaultPlan::everything(11);
        let mut plain = FleetCoordinator::new(fleet.clone(), global)
            .unwrap()
            .with_plan(plan.clone())
            .unwrap();
        let mut tenanted = FleetCoordinator::new(fleet, global)
            .unwrap()
            .with_plan(plan)
            .unwrap()
            .with_tenants(TenantSet::parse("solo:1").unwrap());
        let a = plain.run(20).unwrap();
        let b = tenanted.run(20).unwrap();
        assert_eq!(a.budget_violations, b.budget_violations);
        assert_eq!(a.dropouts, b.dropouts, "tenant rolls must not perturb the fault streams");
        assert_eq!(a.work_done, b.work_done, "a lone tenant owns every watt the node gets");
        assert_eq!(b.tenant_floor_violations, 0);
        assert!((b.min_tenant_jain - 1.0).abs() < 1e-12, "one tenant is perfectly fair");
    }

    #[test]
    fn stragglers_dent_throughput_and_get_quarantined() {
        let fleet = mixed_fleet();
        let global = fleet.min_total_power() + Watts::new(150.0);
        let plan = FleetFaultPlan::stragglers(5);
        let quiet = plan.quiet_after();
        let mut coord = FleetCoordinator::new(fleet.clone(), global)
            .unwrap()
            .with_plan(plan)
            .unwrap();
        let report = coord.run(quiet + 8).unwrap();
        assert!(report.survived());
        let mut calm = FleetCoordinator::new(fleet, global).unwrap();
        let baseline = calm.run(quiet + 8).unwrap();
        assert!(
            report.work_done < baseline.work_done,
            "straggling epochs must do less work than the calm run ({} vs {})",
            report.work_done,
            baseline.work_done
        );
    }
}
