//! The cluster coordinator: one global budget, N nodes, two layers of
//! coordination.
//!
//! Layer one is the water-filling partition ([`crate::partition`]): the
//! global budget becomes per-node shares ranked by marginal gain. Layer
//! two is the paper's per-node COORD on each share, with the resulting
//! allocation priced by the memo-backed power simulator — fanned out
//! across nodes on the `pbc-par` pool, since every node's solve is
//! independent.
//!
//! The dynamic mode ([`ClusterCoordinator::step`]) replays the
//! `pbc-faults` determinism contract at cluster scale: node dropouts and
//! cap-write failures are drawn from fresh `XorShift64Star` generators
//! keyed on `(seed, tick, stream, node)`, never from shared state, so a
//! chaos run is bit-identical under any `PBC_THREADS`. Enforcement is
//! decreases-first: watts freed by lowered caps (and by dropped nodes)
//! fund the raises, and a failed lowering keeps its watts reserved —
//! the pot for raises only ever shrinks — so the total enforced cap
//! never exceeds the global budget and `cluster.budget_violations`
//! stays at zero by construction, not by luck.

use crate::fleet::Fleet;
use crate::partition::{uniform_split, water_fill, NodeCurve, DEFAULT_GRANT};
use pbc_faults::inject::write_key;
use pbc_faults::{FaultClock, FaultWindow};
use pbc_par::Pool;
use pbc_powersim::SolveMemo;
use pbc_trace::names;
use pbc_types::rng::XorShift64Star;
use pbc_types::{PbcError, PowerAllocation, Result, Watts};
use std::sync::{Arc, Mutex};

/// Weyl-ish odd constant spreading ticks across the seed space (the
/// same one `pbc_faults::inject` uses, so cluster draws mix as well).
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;
/// Stream constant for node-dropout decisions.
const STREAM_NODE: u64 = 0x5EED_0011;
/// Stream constant for cluster cap-write decisions.
const STREAM_CAP: u64 = 0x5EED_0012;
/// Watt slack below which a cap move is not worth a write.
const EPS_W: f64 = 1e-6;

/// Deterministic fault plan for a cluster run: node dropouts and
/// cap-write failures, windowed in epochs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterFaultPlan {
    /// Preset name (for reports).
    pub name: &'static str,
    /// Seed all draws derive from.
    pub seed: u64,
    /// Per-node, per-epoch probability of dropping out while the
    /// dropout window is active.
    pub dropout_prob: f64,
    /// Epochs `[from, until)` during which dropouts can fire.
    pub dropout_window: FaultWindow,
    /// How many epochs a dropped node stays down before rejoining.
    pub outage_epochs: usize,
    /// Per-write probability of a cap write failing while the write
    /// window is active.
    pub write_fail_prob: f64,
    /// Epochs `[from, until)` during which cap writes can fail.
    pub write_window: FaultWindow,
}

/// The preset plan names [`ClusterFaultPlan::by_name`] accepts.
pub const PLAN_NAMES: [&str; 4] = ["calm", "node-dropouts", "flaky-writes", "everything"];

impl ClusterFaultPlan {
    /// No faults at all — the control run.
    #[must_use]
    pub fn calm(seed: u64) -> Self {
        Self {
            name: "calm",
            seed,
            dropout_prob: 0.0,
            dropout_window: FaultWindow::NEVER,
            outage_epochs: 0,
            write_fail_prob: 0.0,
            write_window: FaultWindow::NEVER,
        }
    }

    /// Nodes drop out mid-run and rejoin a few epochs later.
    #[must_use]
    pub fn node_dropouts(seed: u64) -> Self {
        Self {
            name: "node-dropouts",
            seed,
            dropout_prob: 0.08,
            dropout_window: FaultWindow::new(2, 30),
            outage_epochs: 4,
            write_fail_prob: 0.0,
            write_window: FaultWindow::NEVER,
        }
    }

    /// Cap writes fail stochastically; the pot accounting must hold.
    #[must_use]
    pub fn flaky_writes(seed: u64) -> Self {
        Self {
            name: "flaky-writes",
            seed,
            dropout_prob: 0.0,
            dropout_window: FaultWindow::NEVER,
            outage_epochs: 0,
            write_fail_prob: 0.2,
            write_window: FaultWindow::new(1, 40),
        }
    }

    /// Dropouts and flaky writes together.
    #[must_use]
    pub fn everything(seed: u64) -> Self {
        Self {
            name: "everything",
            dropout_prob: 0.08,
            dropout_window: FaultWindow::new(2, 30),
            outage_epochs: 4,
            write_fail_prob: 0.2,
            write_window: FaultWindow::new(1, 40),
            ..Self::calm(seed)
        }
    }

    /// Look a preset up by name.
    #[must_use]
    pub fn by_name(name: &str, seed: u64) -> Option<Self> {
        match name {
            "calm" => Some(Self::calm(seed)),
            "node-dropouts" => Some(Self::node_dropouts(seed)),
            "flaky-writes" => Some(Self::flaky_writes(seed)),
            "everything" => Some(Self::everything(seed)),
            _ => None,
        }
    }

    /// Check the plan's internal consistency.
    #[must_use = "an invalid plan must not be armed"]
    pub fn validate(&self) -> Result<()> {
        for (what, p) in [("dropout_prob", self.dropout_prob), ("write_fail_prob", self.write_fail_prob)] {
            if !(0.0..=1.0).contains(&p) {
                return Err(PbcError::InvalidInput(format!(
                    "{what} must be a probability in [0, 1], got {p}"
                )));
            }
        }
        if self.dropout_prob > 0.0 && self.outage_epochs == 0 {
            return Err(PbcError::InvalidInput(
                "outage_epochs must be >= 1 when dropouts can fire".into(),
            ));
        }
        Ok(())
    }
}

/// One evaluated partition: the shares, what COORD made of them, and
/// the simulator-priced performance.
#[derive(Debug, Clone)]
pub struct ClusterDecision {
    /// Per-node budget shares (the caps to enforce).
    pub shares: Vec<Watts>,
    /// Per-node COORD allocations; `None` when the share was
    /// unschedulable on that node.
    pub allocs: Vec<Option<PowerAllocation>>,
    /// Per-node simulated relative throughput (0.0 for unschedulable or
    /// down nodes).
    pub perfs: Vec<f64>,
    /// Sum of `perfs` — the cluster's aggregate throughput.
    pub aggregate_perf: f64,
    /// How many nodes could not schedule their share.
    pub infeasible: usize,
}

/// What one dynamic epoch did.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochReport {
    /// The completed tick this report covers.
    pub tick: usize,
    /// Nodes live at the end of the epoch.
    pub nodes_up: usize,
    /// Nodes that dropped out this epoch.
    pub dropped: usize,
    /// Nodes that rejoined this epoch.
    pub recovered: usize,
    /// Cap writes that failed this epoch.
    pub write_failures: usize,
    /// Aggregate relative throughput across live nodes.
    pub aggregate_perf: f64,
    /// Sum of enforced caps after the epoch (must stay ≤ global).
    pub enforced_total: Watts,
    /// Watts that changed hands between nodes this epoch.
    pub moved: Watts,
}

/// Survival summary of a dynamic run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ClusterReport {
    /// Epochs executed.
    pub epochs: usize,
    /// Total dropout events.
    pub dropouts: usize,
    /// Total recovery events.
    pub recoveries: usize,
    /// Total failed cap writes.
    pub write_failures: usize,
    /// Epochs whose enforced total exceeded the global budget. The
    /// decreases-first discipline makes this zero by construction.
    pub budget_violations: usize,
    /// Smallest live-node count seen.
    pub min_nodes_up: usize,
    /// Aggregate throughput at the final epoch.
    pub final_aggregate: f64,
    /// Mean aggregate throughput across epochs.
    pub mean_aggregate: f64,
}

impl ClusterReport {
    /// Did the run stay inside the global budget throughout?
    #[must_use]
    pub fn survived(&self) -> bool {
        self.budget_violations == 0
    }
}

/// Hierarchical coordinator for a fleet under one global budget.
#[derive(Debug)]
pub struct ClusterCoordinator {
    fleet: Fleet,
    global: Watts,
    grant: Watts,
    plan: ClusterFaultPlan,
    clock: FaultClock,
    /// Cap currently enforced on each node (starts at zero: nothing has
    /// been granted before the first epoch).
    enforced: Vec<Watts>,
    /// Target shares of the previous epoch, for redistribution stats.
    prev_targets: Vec<Watts>,
    /// `Some(t)` when the node is down until tick `t`.
    down_until: Vec<Option<usize>>,
}

impl ClusterCoordinator {
    /// Build a coordinator over `fleet` with `global` watts to divide.
    /// Fails fast when the budget cannot cover every node's floor.
    #[must_use = "the coordinator result carries either the coordinator or the infeasibility"]
    pub fn new(fleet: Fleet, global: Watts) -> Result<Self> {
        if !global.is_valid() || global.value() <= 0.0 {
            return Err(PbcError::InvalidInput(format!(
                "global budget must be a positive finite wattage, got {global:?}"
            )));
        }
        let minimum = fleet.min_total_power();
        if global < minimum {
            return Err(PbcError::BudgetTooSmall { requested: global, minimum });
        }
        let n = fleet.len();
        pbc_trace::gauge(names::CLUSTER_NODES).set(n as f64);
        // Register the invariant counters so every trace exports them
        // even at zero — absence must never read as cleanliness.
        let _ = pbc_trace::counter(names::CLUSTER_BUDGET_VIOLATIONS);
        let _ = pbc_trace::counter(names::CLUSTER_WRITE_FAILURES);
        Ok(Self {
            fleet,
            global,
            grant: DEFAULT_GRANT,
            plan: ClusterFaultPlan::calm(0),
            clock: FaultClock::new(),
            enforced: vec![Watts::ZERO; n],
            prev_targets: vec![Watts::ZERO; n],
            down_until: vec![None; n],
        })
    }

    /// Arm a fault plan for the dynamic mode.
    #[must_use = "the armed coordinator is returned by value"]
    pub fn with_plan(mut self, plan: ClusterFaultPlan) -> Result<Self> {
        plan.validate()?;
        self.plan = plan;
        Ok(self)
    }

    /// The fleet being coordinated.
    #[must_use]
    pub fn fleet(&self) -> &Fleet {
        &self.fleet
    }

    /// The global budget.
    #[must_use]
    pub fn global_budget(&self) -> Watts {
        self.global
    }

    /// Water-fill the global budget and evaluate every node's share, on
    /// the global pool.
    #[must_use = "the decision result carries either the partition or the failure"]
    pub fn coordinate(&self) -> Result<ClusterDecision> {
        self.coordinate_with_pool(Pool::global())
    }

    /// [`ClusterCoordinator::coordinate`] on an explicit pool.
    #[must_use = "the decision result carries either the partition or the failure"]
    pub fn coordinate_with_pool(&self, pool: &Pool) -> Result<ClusterDecision> {
        let curves = self.node_curves();
        let shares = water_fill(&curves, self.global, self.grant)?;
        evaluate(&self.fleet, &shares, &vec![false; self.fleet.len()], pool)
    }

    /// The baseline: split the global budget evenly, floors and curves
    /// ignored, and evaluate the same way. On a heterogeneous fleet the
    /// even share under-feeds hungry nodes and strands watts on
    /// saturated ones — the gap the experiments measure.
    #[must_use = "the decision result carries either the partition or the failure"]
    pub fn uniform_decision(&self) -> Result<ClusterDecision> {
        self.uniform_decision_with_pool(Pool::global())
    }

    /// [`ClusterCoordinator::uniform_decision`] on an explicit pool.
    #[must_use = "the decision result carries either the partition or the failure"]
    pub fn uniform_decision_with_pool(&self, pool: &Pool) -> Result<ClusterDecision> {
        let shares = uniform_split(self.fleet.len(), self.global);
        evaluate(&self.fleet, &shares, &vec![false; self.fleet.len()], pool)
    }

    /// The oracle aggregate at the water-filled shares: what the
    /// interpolated sweep curves promise, with no COORD heuristic or
    /// enforcement in the way. An upper reference line for `ext7`.
    #[must_use = "the oracle result carries either the aggregate or the infeasibility"]
    pub fn oracle_aggregate(&self) -> Result<f64> {
        let curves = self.node_curves();
        let shares = water_fill(&curves, self.global, self.grant)?;
        Ok(shares
            .iter()
            .zip(curves.iter())
            .map(|(s, c)| c.curve.perf_at(*s))
            .sum())
    }

    /// One dynamic epoch on the global pool: advance the fault clock,
    /// apply dropouts/recoveries, re-partition across live nodes,
    /// re-coordinate, and enforce decreases-first under write faults.
    #[must_use = "the epoch result carries either the report or the failure"]
    pub fn step(&mut self) -> Result<EpochReport> {
        self.step_with_pool(Pool::global())
    }

    /// [`ClusterCoordinator::step`] on an explicit pool.
    #[must_use = "the epoch result carries either the report or the failure"]
    pub fn step_with_pool(&mut self, pool: &Pool) -> Result<EpochReport> {
        let tick = self.clock.advance();
        let n = self.fleet.len();
        let (dropped, recovered) = self.roll_membership(tick);
        let down: Vec<bool> = self.down_until.iter().map(Option::is_some).collect();
        let up = down.iter().filter(|d| !**d).count();

        // Re-partition across the live nodes only; down nodes target 0.
        let live: Vec<usize> = (0..n).filter(|i| !down[*i]).collect();
        let curves = self.node_curves();
        let live_curves: Vec<NodeCurve<'_>> = live.iter().map(|&i| curves[i]).collect();
        let live_shares = water_fill(&live_curves, self.global, self.grant)?;
        let mut targets = vec![Watts::ZERO; n];
        for (k, &i) in live.iter().enumerate() {
            targets[i] = live_shares[k];
        }

        let decision = evaluate(&self.fleet, &targets, &down, pool)?;
        let write_failures = self.enforce(tick, &targets, &down);

        // The budget invariant. Decreases-first makes a violation
        // structurally impossible; the counter is the proof the trace
        // carries out to the chaos assertions.
        let enforced_total = self.enforced.iter().fold(Watts::ZERO, |a, w| a + *w);
        if enforced_total.value() > self.global.value() + EPS_W {
            pbc_trace::counter(names::CLUSTER_BUDGET_VIOLATIONS).incr();
        }

        let moved_raw: f64 = targets
            .iter()
            .zip(self.prev_targets.iter())
            .map(|(now, was)| (*now - *was).abs().value())
            .sum();
        let moved = Watts::new(moved_raw / 2.0);
        if moved.value() > EPS_W {
            pbc_trace::counter(names::CLUSTER_REDISTRIBUTIONS).incr();
        }
        self.prev_targets = targets;

        pbc_trace::counter(names::CLUSTER_EPOCHS).incr();
        pbc_trace::gauge(names::CLUSTER_NODES_UP).set(up as f64);
        pbc_trace::gauge(names::CLUSTER_MOVED_W).set(moved.value());
        pbc_trace::gauge(names::CLUSTER_AGGREGATE_PERF).set(decision.aggregate_perf);

        Ok(EpochReport {
            tick,
            nodes_up: up,
            dropped,
            recovered,
            write_failures,
            aggregate_perf: decision.aggregate_perf,
            enforced_total,
            moved,
        })
    }

    /// Run `epochs` dynamic epochs and summarize.
    #[must_use = "the run result carries either the survival report or the failure"]
    pub fn run(&mut self, epochs: usize) -> Result<ClusterReport> {
        self.run_with_pool(epochs, Pool::global())
    }

    /// [`ClusterCoordinator::run`] on an explicit pool.
    #[must_use = "the run result carries either the survival report or the failure"]
    pub fn run_with_pool(&mut self, epochs: usize, pool: &Pool) -> Result<ClusterReport> {
        let mut report = ClusterReport {
            min_nodes_up: self.fleet.len(),
            ..ClusterReport::default()
        };
        let mut perf_sum = 0.0;
        for _ in 0..epochs {
            let e = self.step_with_pool(pool)?;
            report.epochs += 1;
            report.dropouts += e.dropped;
            report.recoveries += e.recovered;
            report.write_failures += e.write_failures;
            if e.enforced_total.value() > self.global.value() + EPS_W {
                report.budget_violations += 1;
            }
            report.min_nodes_up = report.min_nodes_up.min(e.nodes_up);
            report.final_aggregate = e.aggregate_perf;
            perf_sum += e.aggregate_perf;
        }
        if report.epochs > 0 {
            report.mean_aggregate = perf_sum / report.epochs as f64;
        }
        Ok(report)
    }

    fn node_curves(&self) -> Vec<NodeCurve<'_>> {
        self.fleet
            .nodes
            .iter()
            .map(|&c| NodeCurve {
                floor: self.fleet.classes[c].floor,
                curve: &self.fleet.classes[c].curve,
            })
            .collect()
    }

    /// Dropout/recovery decisions for this tick. Each node draws from a
    /// fresh generator keyed `(seed, tick, STREAM_NODE, node)` — the
    /// inject.rs contract — so membership replays bit-identically.
    fn roll_membership(&mut self, tick: usize) -> (usize, usize) {
        let mut dropped = 0;
        let mut recovered = 0;
        for i in 0..self.down_until.len() {
            if let Some(until) = self.down_until[i] {
                if tick >= until {
                    self.down_until[i] = None;
                    recovered += 1;
                    pbc_trace::counter(names::CLUSTER_RECOVERIES).incr();
                }
                continue;
            }
            if self.plan.dropout_prob > 0.0 && self.plan.dropout_window.active(tick) {
                let stream = STREAM_NODE ^ (i as u64).wrapping_mul(GOLDEN);
                let mut rng = XorShift64Star::new(
                    self.plan.seed ^ (tick as u64).wrapping_mul(GOLDEN) ^ stream,
                );
                if rng.next_f64() < self.plan.dropout_prob {
                    self.down_until[i] = Some(tick + self.plan.outage_epochs.max(1));
                    dropped += 1;
                    pbc_trace::counter(names::CLUSTER_DROPOUTS).incr();
                }
            }
        }
        (dropped, recovered)
    }

    /// Move enforced caps toward `targets`, decreases first. A down
    /// node's cap releases unconditionally (its draw is gone whether or
    /// not a write lands); a failed decrease keeps its watts reserved;
    /// raises are funded strictly from the pot the decreases left, so
    /// `Σ enforced ≤ global` is an invariant, not an aspiration.
    fn enforce(&mut self, tick: usize, targets: &[Watts], down: &[bool]) -> usize {
        let mut failures = 0;
        for i in 0..targets.len() {
            if down[i] {
                self.enforced[i] = Watts::ZERO;
                continue;
            }
            if targets[i] < self.enforced[i] {
                if self.write_fails(tick, i, targets[i]) {
                    failures += 1;
                    pbc_trace::counter(names::CLUSTER_WRITE_FAILURES).incr();
                } else {
                    self.enforced[i] = targets[i];
                }
            }
        }
        let spent = self.enforced.iter().fold(Watts::ZERO, |a, w| a + *w);
        let mut pot = (self.global - spent).max(Watts::ZERO);
        for i in 0..targets.len() {
            if down[i] || targets[i] <= self.enforced[i] {
                continue;
            }
            let want = targets[i] - self.enforced[i];
            let raise = want.min(pot);
            if raise.value() <= EPS_W {
                continue;
            }
            let next = self.enforced[i] + raise;
            if self.write_fails(tick, i, next) {
                failures += 1;
                pbc_trace::counter(names::CLUSTER_WRITE_FAILURES).incr();
            } else {
                self.enforced[i] = next;
                pot = pot - raise;
            }
        }
        failures
    }

    fn write_fails(&self, tick: usize, node: usize, target: Watts) -> bool {
        if self.plan.write_fail_prob <= 0.0 || !self.plan.write_window.active(tick) {
            return false;
        }
        let key = write_key(&format!("cluster.node{node}"), target);
        let stream = STREAM_CAP ^ key.wrapping_mul(GOLDEN);
        let mut rng =
            XorShift64Star::new(self.plan.seed ^ (tick as u64).wrapping_mul(GOLDEN) ^ stream);
        rng.next_f64() < self.plan.write_fail_prob
    }
}

/// Coordinate and price every node's share, fanned out on `pool`. Down
/// nodes contribute nothing without touching the infeasibility counter;
/// an infeasible share (COORD or the solver refusing it) scores 0.0;
/// real solver errors fail the whole evaluation; worker panics re-raise
/// on the caller.
fn evaluate(fleet: &Fleet, shares: &[Watts], down: &[bool], pool: &Pool) -> Result<ClusterDecision> {
    let n = shares.len();
    type Slot = Mutex<Option<Result<(Option<PowerAllocation>, f64)>>>;
    let slots: Vec<Slot> = (0..n).map(|_| Mutex::new(None)).collect();
    let memos: Vec<Arc<SolveMemo>> = fleet
        .classes
        .iter()
        .map(|c| SolveMemo::for_problem(&c.platform, &c.demand))
        .collect();
    let task = |i: usize| {
        let out = if down[i] {
            Ok((None, 0.0))
        } else {
            eval_node(fleet, &memos, i, shares[i])
        };
        if let Ok(mut slot) = slots[i].lock() {
            *slot = Some(out);
        }
    };
    let stats = pool.run(n, &task);
    if let Some(payload) = stats.panic {
        std::panic::resume_unwind(payload);
    }
    let mut allocs = Vec::with_capacity(n);
    let mut perfs = Vec::with_capacity(n);
    let mut infeasible = 0;
    for (i, slot) in slots.into_iter().enumerate() {
        let taken = slot.into_inner().unwrap_or(None);
        match taken {
            Some(Ok((alloc, perf))) => {
                if alloc.is_none() && !down[i] {
                    infeasible += 1;
                    pbc_trace::counter(names::CLUSTER_INFEASIBLE_NODES).incr();
                }
                allocs.push(alloc);
                perfs.push(perf);
            }
            Some(Err(e)) => return Err(e),
            None => {
                return Err(PbcError::InvalidInput(format!(
                    "cluster evaluation lost node {i} (worker never reported)"
                )))
            }
        }
    }
    let aggregate_perf = perfs.iter().sum();
    Ok(ClusterDecision { shares: shares.to_vec(), allocs, perfs, aggregate_perf, infeasible })
}

fn eval_node(
    fleet: &Fleet,
    memos: &[Arc<SolveMemo>],
    node: usize,
    share: Watts,
) -> Result<(Option<PowerAllocation>, f64)> {
    let class = fleet.class_of(node);
    let coord = match class.coordinate(share) {
        Ok(r) => r,
        Err(e) if e.is_infeasible() => return Ok((None, 0.0)),
        Err(e) => return Err(e),
    };
    match memos[fleet.nodes[node]].solve(coord.alloc) {
        Ok(op) => Ok((Some(coord.alloc), op.perf_rel)),
        Err(e) if e.is_infeasible() => Ok((None, 0.0)),
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::parse_spec;

    fn mixed_fleet() -> Fleet {
        let spec = parse_spec(
            "4 ivybridge stream\n\
             4 haswell dgemm\n\
             2 titan-xp sgemm\n",
        )
        .unwrap();
        Fleet::build(&spec).unwrap()
    }

    #[test]
    fn coordinated_beats_uniform_on_a_mixed_fleet() {
        let fleet = mixed_fleet();
        let global = fleet.min_total_power() + Watts::new(220.0);
        let coord = ClusterCoordinator::new(fleet, global).unwrap();
        let smart = coord.coordinate().unwrap();
        let naive = coord.uniform_decision().unwrap();
        let total: f64 = smart.shares.iter().map(|s| s.value()).sum();
        assert!((total - global.value()).abs() < 1e-6, "shares must conserve the budget");
        assert!(
            smart.aggregate_perf > naive.aggregate_perf,
            "water-filling {:.3} must beat uniform {:.3}",
            smart.aggregate_perf,
            naive.aggregate_perf
        );
    }

    #[test]
    fn budget_below_the_fleet_floor_is_refused() {
        let fleet = mixed_fleet();
        let too_small = fleet.min_total_power() - Watts::new(1.0);
        assert!(ClusterCoordinator::new(fleet, too_small).is_err());
    }

    #[test]
    fn calm_run_never_violates_and_keeps_every_node_up() {
        let fleet = mixed_fleet();
        let global = fleet.min_total_power() + Watts::new(150.0);
        let n = fleet.len();
        let mut coord = ClusterCoordinator::new(fleet, global).unwrap();
        let report = coord.run(6).unwrap();
        assert!(report.survived());
        assert_eq!(report.min_nodes_up, n);
        assert_eq!(report.dropouts, 0);
        assert!(report.final_aggregate > 0.0);
    }

    #[test]
    fn dropouts_fire_and_the_budget_invariant_holds() {
        let fleet = mixed_fleet();
        let global = fleet.min_total_power() + Watts::new(150.0);
        let mut coord = ClusterCoordinator::new(fleet, global)
            .unwrap()
            .with_plan(ClusterFaultPlan::everything(7))
            .unwrap();
        let report = coord.run(40).unwrap();
        assert!(report.dropouts > 0, "the everything plan at seed 7 should drop nodes");
        assert!(report.recoveries > 0, "dropped nodes should rejoin");
        assert_eq!(report.budget_violations, 0, "decreases-first must hold the cap");
        assert!(report.survived());
    }

    #[test]
    fn chaos_replays_are_bit_identical() {
        let fleet = mixed_fleet();
        let global = fleet.min_total_power() + Watts::new(150.0);
        let run = |threads: usize| {
            let pool = Pool::new(threads);
            let mut coord = ClusterCoordinator::new(fleet.clone(), global)
                .unwrap()
                .with_plan(ClusterFaultPlan::everything(11))
                .unwrap();
            coord.run_with_pool(30, &pool).unwrap()
        };
        let a = run(1);
        let b = run(4);
        assert_eq!(a, b, "the same plan must replay identically across thread counts");
    }

    #[test]
    fn plan_presets_parse_and_validate() {
        for name in PLAN_NAMES {
            let plan = ClusterFaultPlan::by_name(name, 3).unwrap();
            plan.validate().unwrap();
            assert_eq!(plan.name, name);
        }
        assert!(ClusterFaultPlan::by_name("nope", 3).is_none());
        let bad = ClusterFaultPlan { dropout_prob: 1.5, ..ClusterFaultPlan::calm(1) };
        assert!(bad.validate().is_err());
    }
}
