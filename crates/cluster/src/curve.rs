//! Per-node performance~budget curves — the marginal-utility signal the
//! water-filling partitioner redistributes on.
//!
//! A [`PerfCurve`] samples `perf_max(P_b)` for one `(platform, workload)`
//! class on a regular budget ladder from the node's floor to its
//! saturation ceiling. The samples come from the shared-grid oracle
//! ([`pbc_core::sweep_curve_with_pool`]): every ladder budget's sweep
//! runs as one pooled job over the union grid through the class's
//! [`pbc_powersim::SolveMemo`], so profiling a class costs one sweep, not
//! one per ladder rung — and the samples are bit-identical regardless of
//! thread count, which is what makes cluster partitions replayable.
//!
//! Between samples the curve interpolates linearly. §3.1 of the paper
//! shows `perf_max ~ P_b` is monotone non-decreasing and concave-ish
//! (steep while a component is starved, flat past the demand point), so
//! piecewise-linear interpolation preserves exactly the structure the
//! water-filling pass needs: marginal gain per granted watt that shrinks
//! as a node approaches its flattening point.

use pbc_core::{sweep_curve_with_pool, PowerBoundedProblem, DEFAULT_STEP};
use pbc_core::CriticalPowers;
use pbc_par::Pool;
use pbc_platform::{NodeSpec, Platform};
use pbc_powersim::WorkloadDemand;
use pbc_types::{PbcError, Result, Watts};

/// Budget spacing of the curve samples. Coarser than the 4 W sweep grid
/// — the curve only has to rank marginal gains, not pick allocations.
pub const SAMPLE_STEP: Watts = Watts::new(8.0);

/// The smallest node budget this class can run on: the platform's
/// hardware floor, raised to the workload's COORD minimum (regime D's
/// `P_cpu,L4 + P_mem,L3` boundary on hosts, the minimum settable card
/// cap on GPUs). A water-filling share at or above this floor is
/// guaranteed to coordinate and solve.
#[must_use]
pub fn node_floor(platform: &Platform, demand: &WorkloadDemand) -> Watts {
    let floor = platform.min_node_power();
    match &platform.spec {
        NodeSpec::Cpu { cpu, dram } => {
            let c = CriticalPowers::probe(cpu, dram, demand);
            floor.max(c.cpu_l4 + c.mem_l3)
        }
        NodeSpec::Gpu(g) => floor.max(g.min_card_cap),
    }
}

/// The budget past which this class stops gaining: full component demand
/// on hosts, the maximum settable card cap on GPUs. Watts granted past
/// the ceiling are stranded (§2.1 RQ4's "acceptable band" upper edge).
#[must_use]
pub fn node_ceiling(platform: &Platform, demand: &WorkloadDemand) -> Watts {
    match &platform.spec {
        NodeSpec::Cpu { cpu, dram } => {
            let c = CriticalPowers::probe(cpu, dram, demand);
            c.max_demand()
        }
        NodeSpec::Gpu(g) => g.max_card_cap,
    }
}

/// A sampled, piecewise-linear `perf_max ~ P_b` curve for one node
/// class.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfCurve {
    /// Budget of the first sample (the class floor).
    pub floor: Watts,
    /// Spacing between samples.
    pub step: Watts,
    /// `perf[k]` = oracle `perf_max` at `floor + k * step`.
    pub perf: Vec<f64>,
}

impl PerfCurve {
    /// Profile a class on the global pool.
    #[must_use = "the curve result carries either the samples or the solver failure"]
    pub fn profile(platform: &Platform, demand: &WorkloadDemand) -> Result<PerfCurve> {
        Self::profile_with_pool(platform, demand, Pool::global())
    }

    /// Profile a class on an explicit pool (the determinism property
    /// tests pin the executor count; production code wants
    /// [`PerfCurve::profile`]).
    #[must_use = "the curve result carries either the samples or the solver failure"]
    pub fn profile_with_pool(
        platform: &Platform,
        demand: &WorkloadDemand,
        pool: &Pool,
    ) -> Result<PerfCurve> {
        let floor = node_floor(platform, demand);
        let ceiling = node_ceiling(platform, demand).max(floor + SAMPLE_STEP);
        let mut ladder = Vec::new();
        let mut b = floor;
        while b < ceiling {
            ladder.push(b);
            b = b + SAMPLE_STEP;
        }
        ladder.push(ceiling);
        let problem = PowerBoundedProblem::new(platform.clone(), demand.clone(), ladder[0])?;
        let profiles = sweep_curve_with_pool(&problem, &ladder, DEFAULT_STEP, pool)?;
        // An empty profile means the budget is not schedulable (GPU
        // budgets below the settable cap range); `perf_max()` reports it
        // as 0.0, which is exactly the marginal signal we want.
        let perf: Vec<f64> = profiles.iter().map(|p| p.perf_max()).collect();
        if perf.iter().any(|v| !v.is_finite()) {
            return Err(PbcError::InvalidInput(format!(
                "non-finite perf sample while profiling {}",
                platform.id
            )));
        }
        Ok(PerfCurve { floor, step: SAMPLE_STEP, perf })
    }

    /// The last sampled budget; grants past it gain nothing.
    #[must_use]
    pub fn ceiling(&self) -> Watts {
        // The final rung is pinned to the class ceiling, which is not in
        // general a whole number of steps past the floor; the index
        // arithmetic below saturates there, so reporting the regular
        // grid position keeps `perf_at` and `ceiling` consistent.
        self.floor + self.step * (self.perf.len().saturating_sub(1) as f64)
    }

    /// Interpolated oracle performance at budget `b`: 0 below the floor
    /// (the class cannot run), clamped flat past the ceiling (stranded
    /// watts gain nothing).
    #[must_use]
    pub fn perf_at(&self, b: Watts) -> f64 {
        if self.perf.is_empty() || b < self.floor {
            return 0.0;
        }
        let offset = (b - self.floor).value() / self.step.value();
        let k = offset.floor() as usize;
        if k + 1 >= self.perf.len() {
            return *self.perf.last().unwrap_or(&0.0);
        }
        let frac = offset - k as f64;
        self.perf[k] + (self.perf[k + 1] - self.perf[k]) * frac
    }

    /// The marginal performance of granting `grant` more watts to a node
    /// currently holding `share` — the quantity the water-filling pass
    /// maximizes per quantum.
    #[must_use]
    pub fn marginal_gain(&self, share: Watts, grant: Watts) -> f64 {
        self.perf_at(share + grant) - self.perf_at(share)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbc_platform::presets::{ivybridge, titan_xp};
    use pbc_workloads::by_name;

    #[test]
    fn cpu_curve_is_monotone_and_saturates() {
        let p = ivybridge();
        let d = by_name("stream").unwrap().demand;
        let curve = PerfCurve::profile(&p, &d).unwrap();
        assert!(curve.floor >= p.min_node_power());
        for w in curve.perf.windows(2) {
            assert!(w[1] >= w[0] - 1e-9, "perf_max must be non-decreasing");
        }
        // Past the ceiling the curve is flat.
        let top = curve.perf_at(curve.ceiling());
        assert!((curve.perf_at(curve.ceiling() + Watts::new(100.0)) - top).abs() < 1e-12);
        // Below the floor the class cannot run.
        assert_eq!(curve.perf_at(curve.floor - Watts::new(1.0)).to_bits(), 0f64.to_bits());
    }

    #[test]
    fn interpolation_brackets_the_samples() {
        let p = ivybridge();
        let d = by_name("dgemm").unwrap().demand;
        let curve = PerfCurve::profile(&p, &d).unwrap();
        let mid = curve.floor + curve.step * 0.5;
        let lo = curve.perf[0];
        let hi = curve.perf[1];
        let v = curve.perf_at(mid);
        assert!(v >= lo.min(hi) - 1e-12 && v <= lo.max(hi) + 1e-12);
    }

    #[test]
    fn gpu_floor_respects_the_card_minimum() {
        let p = titan_xp();
        let d = by_name("sgemm").unwrap().demand;
        let floor = node_floor(&p, &d);
        assert!(floor >= p.gpu().unwrap().min_card_cap);
        let curve = PerfCurve::profile(&p, &d).unwrap();
        assert!(curve.perf_at(curve.ceiling()) > 0.0);
    }

    #[test]
    fn marginal_gain_shrinks_toward_the_ceiling() {
        let p = ivybridge();
        let d = by_name("stream").unwrap().demand;
        let curve = PerfCurve::profile(&p, &d).unwrap();
        // Wide enough to step over stream's flat first rung at the floor.
        let grant = Watts::new(24.0);
        let steep = curve.marginal_gain(curve.floor, grant);
        let flat = curve.marginal_gain(curve.ceiling(), grant);
        assert!(steep > flat, "gain at the floor {steep} must beat gain at the ceiling {flat}");
        assert!(flat.abs() < 1e-9);
    }
}
