//! Per-node performance~budget curves — the marginal-utility signal the
//! water-filling partitioner redistributes on.
//!
//! The curve type itself now lives in the core crate as
//! [`pbc_core::fastpath::CurveTable`]: the cluster water-filler and the
//! single-node steady-state fast path interpolate the *same* table (one
//! shared-grid oracle pass per class, bit-identical regardless of thread
//! count), so there is exactly one `perf_max ~ P_b` representation in
//! the workspace. This module re-exports it under its historical cluster
//! name, along with the class floor/ceiling helpers the partitioner
//! uses to bound shares.
//!
//! Between samples the curve interpolates linearly. §3.1 of the paper
//! shows `perf_max ~ P_b` is monotone non-decreasing and concave-ish
//! (steep while a component is starved, flat past the demand point), so
//! piecewise-linear interpolation preserves exactly the structure the
//! water-filling pass needs: marginal gain per granted watt that shrinks
//! as a node approaches its flattening point. On top of the perf
//! samples, the shared table carries the oracle's best *allocation* per
//! rung, so a share granted by the water-filler can be turned into
//! component caps without a solve (see `pbc_core::fastpath`).

pub use pbc_core::fastpath::{node_ceiling, node_floor, CurveTable as PerfCurve};
use pbc_types::Watts;

/// Budget spacing of the curve samples — the core table step. Coarser
/// than the 4 W sweep grid: the curve only has to rank marginal gains.
pub const SAMPLE_STEP: Watts = pbc_core::fastpath::TABLE_STEP;

#[cfg(test)]
mod tests {
    use super::*;
    use pbc_platform::presets::{ivybridge, titan_xp};
    use pbc_workloads::by_name;

    #[test]
    fn cpu_curve_is_monotone_and_saturates() {
        let p = ivybridge();
        let d = by_name("stream").unwrap().demand;
        let curve = PerfCurve::profile(&p, &d).unwrap();
        assert!(curve.floor >= p.min_node_power());
        for w in curve.perf.windows(2) {
            assert!(w[1] >= w[0] - 1e-9, "perf_max must be non-decreasing");
        }
        // Past the ceiling the curve is flat.
        let top = curve.perf_at(curve.ceiling());
        assert!((curve.perf_at(curve.ceiling() + Watts::new(100.0)) - top).abs() < 1e-12);
        // Below the floor the class cannot run.
        assert_eq!(curve.perf_at(curve.floor - Watts::new(1.0)).to_bits(), 0f64.to_bits());
    }

    #[test]
    fn interpolation_brackets_the_samples() {
        let p = ivybridge();
        let d = by_name("dgemm").unwrap().demand;
        let curve = PerfCurve::profile(&p, &d).unwrap();
        let mid = curve.floor + curve.step * 0.5;
        let lo = curve.perf[0];
        let hi = curve.perf[1];
        let v = curve.perf_at(mid);
        assert!(v >= lo.min(hi) - 1e-12 && v <= lo.max(hi) + 1e-12);
    }

    #[test]
    fn gpu_floor_respects_the_card_minimum() {
        let p = titan_xp();
        let d = by_name("sgemm").unwrap().demand;
        let floor = node_floor(&p, &d);
        assert!(floor >= p.gpu().unwrap().min_card_cap);
        let curve = PerfCurve::profile(&p, &d).unwrap();
        assert!(curve.perf_at(curve.ceiling()) > 0.0);
    }

    #[test]
    fn marginal_gain_shrinks_toward_the_ceiling() {
        let p = ivybridge();
        let d = by_name("stream").unwrap().demand;
        let curve = PerfCurve::profile(&p, &d).unwrap();
        // Wide enough to step over stream's flat first rung at the floor.
        let grant = Watts::new(24.0);
        let steep = curve.marginal_gain(curve.floor, grant);
        let flat = curve.marginal_gain(curve.ceiling(), grant);
        assert!(steep > flat, "gain at the floor {steep} must beat gain at the ceiling {flat}");
        assert!(flat.abs() < 1e-9);
    }

    /// The cluster curve and the core fast-path table are literally the
    /// same type: a share granted by the water-filler can be served as
    /// component caps straight off the profile the partitioner already
    /// holds.
    #[test]
    fn water_fill_shares_are_servable_as_allocations() {
        let p = ivybridge();
        let d = by_name("sra").unwrap().demand;
        let curve = PerfCurve::profile(&p, &d).unwrap();
        let share = curve.floor + Watts::new(30.0);
        let alloc = curve.alloc_at(share).expect("in-range share must serve");
        assert!(alloc.total().value() <= share.value() + 1e-9);
    }
}
