//! Graceful degradation: the precomputed static partition every node
//! falls back to when global coordination is unavailable.
//!
//! Water-filling needs a coordinator that can hear every node and land
//! every cap write inside the epoch. When it can't — the coordinator is
//! partitioned away, a redistribution round blows its write deadline,
//! or the live membership makes the fill infeasible — the fleet must
//! still respect the global bound *without* coordinating. The answer is
//! the oldest trick in power management: a static partition computed
//! once, from profile data alone, whose shares sum to at most the
//! global budget **by construction**. Any subset of nodes running their
//! fallback shares is safe, because a sum of non-negative shares only
//! shrinks when nodes drop out.
//!
//! The shares themselves are floors plus headroom split proportionally
//! to each node's profiled dynamic range (`ceiling − floor`): a node
//! that can convert more watts into work gets more of the slack, but
//! nobody is pushed past its ceiling (where extra watts strand) or
//! below its floor (where it cannot run at all).

use crate::fleet::Fleet;
use pbc_types::{PbcError, Result, Watts};

/// Slack below this is not worth spreading.
const SLACK_EPS_W: f64 = 1e-9;

/// A precomputed, known-safe static partition of the global budget.
///
/// Invariant: `shares.iter().sum() ≤ global` (by construction, verified
/// in debug builds and by property tests), and every share is at least
/// its node's floor.
#[derive(Debug, Clone)]
pub struct StaticFallback {
    shares: Vec<Watts>,
    global: Watts,
}

impl StaticFallback {
    /// Precompute the fallback partition for a fleet under `global`.
    ///
    /// Fails only when the budget cannot cover the fleet's floors —
    /// the same infeasibility that stops the water-fill, surfaced at
    /// construction time so a coordinator is never built without a
    /// safe place to land.
    #[must_use = "the precomputed partition is the constructor's entire result"]
    pub fn compute(fleet: &Fleet, global: Watts) -> Result<Self> {
        let floors: Vec<Watts> = fleet.nodes.iter().map(|&c| fleet.classes[c].floor).collect();
        let ceilings: Vec<Watts> = fleet
            .nodes
            .iter()
            .map(|&c| fleet.classes[c].ceiling)
            .collect();
        Self::from_parts(&floors, &ceilings, global)
    }

    /// Precompute from raw floors/ceilings (the property-test entry
    /// point; [`StaticFallback::compute`] is this over a fleet's
    /// profile data).
    #[must_use = "the precomputed partition is the constructor's entire result"]
    pub fn from_parts(floors: &[Watts], ceilings: &[Watts], global: Watts) -> Result<Self> {
        if floors.len() != ceilings.len() {
            return Err(PbcError::InvalidInput(format!(
                "{} floors but {} ceilings",
                floors.len(),
                ceilings.len()
            )));
        }
        let floor_sum: Watts = floors.iter().copied().sum();
        if floor_sum > global {
            return Err(PbcError::InvalidInput(format!(
                "global budget {global} is below the fleet floor sum {floor_sum}; \
                 no static partition can run every node"
            )));
        }
        // Split the slack proportionally to dynamic range, capping each
        // node at its ceiling. One pass is enough: weights are the
        // ranges themselves, so slack · wᵢ/Σw ≤ rangeᵢ exactly when
        // slack ≤ Σw, and when slack exceeds the total range every node
        // simply lands on its ceiling (the leftover stays unspent —
        // spending it would strand watts, not add work).
        let slack = (global - floor_sum).value();
        let ranges: Vec<f64> = floors
            .iter()
            .zip(ceilings)
            .map(|(f, c)| (c.value() - f.value()).max(0.0))
            .collect();
        let total_range: f64 = ranges.iter().sum();
        let shares: Vec<Watts> = floors
            .iter()
            .zip(&ranges)
            .map(|(floor, range)| {
                let extra = if slack <= SLACK_EPS_W || total_range <= SLACK_EPS_W {
                    0.0
                } else {
                    (slack * range / total_range).min(*range)
                };
                *floor + Watts(extra)
            })
            .collect();
        debug_assert!(
            shares.iter().copied().sum::<Watts>() <= global + Watts(1e-6),
            "fallback shares exceed the global budget"
        );
        Ok(Self { shares, global })
    }

    /// The fallback share of node `i`.
    #[must_use]
    pub fn share(&self, node: usize) -> Watts {
        self.shares[node]
    }

    /// All shares, node-indexed.
    #[must_use]
    pub fn shares(&self) -> &[Watts] {
        &self.shares
    }

    /// The global budget the partition was computed against.
    #[must_use]
    pub fn global(&self) -> Watts {
        self.global
    }

    /// Sum of every share — by construction at most [`Self::global`].
    #[must_use]
    pub fn total(&self) -> Watts {
        self.shares.iter().copied().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(v: f64) -> Watts {
        Watts(v)
    }

    #[test]
    fn shares_sum_at_most_global_and_respect_floors_and_ceilings() {
        let floors = [w(30.0), w(50.0), w(40.0)];
        let ceilings = [w(80.0), w(90.0), w(60.0)];
        let fb = StaticFallback::from_parts(&floors, &ceilings, w(200.0)).unwrap();
        assert!(fb.total() <= w(200.0) + w(1e-9));
        for i in 0..3 {
            assert!(fb.share(i) >= floors[i]);
            assert!(fb.share(i) <= ceilings[i] + w(1e-9));
        }
        // Slack 80 over total range 110 → proportional, nobody capped.
        assert!((fb.total().value() - 200.0).abs() < 1e-6, "all slack spent");
    }

    #[test]
    fn abundant_budget_caps_everyone_at_ceiling() {
        let floors = [w(30.0), w(40.0)];
        let ceilings = [w(50.0), w(70.0)];
        let fb = StaticFallback::from_parts(&floors, &ceilings, w(1000.0)).unwrap();
        assert_eq!(fb.share(0), w(50.0));
        assert_eq!(fb.share(1), w(70.0));
        assert!(fb.total() <= w(1000.0));
    }

    #[test]
    fn exact_floor_budget_gives_floors() {
        let floors = [w(30.0), w(40.0)];
        let ceilings = [w(50.0), w(70.0)];
        let fb = StaticFallback::from_parts(&floors, &ceilings, w(70.0)).unwrap();
        assert_eq!(fb.share(0), w(30.0));
        assert_eq!(fb.share(1), w(40.0));
    }

    #[test]
    fn below_floor_sum_is_refused() {
        let floors = [w(30.0), w(40.0)];
        let ceilings = [w(50.0), w(70.0)];
        assert!(StaticFallback::from_parts(&floors, &ceilings, w(69.0)).is_err());
        assert!(StaticFallback::from_parts(&floors, &ceilings[..1], w(100.0)).is_err());
    }

    #[test]
    fn degenerate_ranges_fall_back_to_floors() {
        // Ceiling == floor everywhere: no slack can be spent.
        let floors = [w(30.0), w(40.0)];
        let ceilings = [w(30.0), w(40.0)];
        let fb = StaticFallback::from_parts(&floors, &ceilings, w(500.0)).unwrap();
        assert_eq!(fb.share(0), w(30.0));
        assert_eq!(fb.share(1), w(40.0));
    }
}
