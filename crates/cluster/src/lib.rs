//! # pbc-cluster
//!
//! Hierarchical cross-component power coordination for a fleet of
//! simulated nodes under one global budget — the layer above the
//! paper's single-node COORD.
//!
//! The paper (§2, §5) coordinates CPU/memory or SM/DRAM power *within*
//! one node; its closing argument is that the same marginal-utility
//! reasoning should span nodes. Medhat et al. show MPI cluster
//! performance under a global cap hinges on moving watts *between*
//! nodes, and FastCap shows the per-entity decision must stay cheap at
//! scale. This crate supplies that layer on top of everything the
//! workspace already has:
//!
//! * [`curve::PerfCurve`] — per-class `perf_max ~ P_b` curves from the
//!   shared-grid sweep oracle, memo-backed and bit-deterministic;
//! * [`partition::water_fill`] — the global budget partitioned by
//!   marginal gain: watts drain from nodes past their flattening point
//!   toward nodes still on the steep part of their curve;
//! * [`fleet::Fleet`] — heterogeneous node specs (`COUNT PLATFORM
//!   BENCH` text lines), deduplicated into profiled classes;
//! * [`coordinator::ClusterCoordinator`] — water-fill, then per-node
//!   COORD and memo-priced simulation fanned out on the `pbc-par`
//!   pool; a dynamic mode replays node dropouts and cap-write failures
//!   under the `pbc-faults` determinism contract, with decreases-first
//!   enforcement keeping `Σ enforced ≤ global` invariant.
//!
//! Everything emits `cluster.*` trace counters/gauges (see
//! `docs/OBSERVABILITY.md`); `cluster.budget_violations == 0` is the
//! survival criterion chaos runs assert from real trace files.

pub mod coordinator;
pub mod curve;
pub mod fleet;
pub mod partition;

pub use coordinator::{
    ClusterCoordinator, ClusterDecision, ClusterFaultPlan, ClusterReport, EpochReport, PLAN_NAMES,
};
pub use curve::{node_ceiling, node_floor, PerfCurve, SAMPLE_STEP};
pub use fleet::{parse_spec, ClassCoord, Fleet, NodeClass, SpecLine};
pub use partition::{uniform_split, water_fill, NodeCurve, DEFAULT_GRANT};
