//! # pbc-cluster
//!
//! Hierarchical cross-component power coordination for a fleet of
//! simulated nodes under one global budget — the layer above the
//! paper's single-node COORD.
//!
//! The paper (§2, §5) coordinates CPU/memory or SM/DRAM power *within*
//! one node; its closing argument is that the same marginal-utility
//! reasoning should span nodes. Medhat et al. show MPI cluster
//! performance under a global cap hinges on moving watts *between*
//! nodes, and FastCap shows the per-entity decision must stay cheap at
//! scale. This crate supplies that layer on top of everything the
//! workspace already has:
//!
//! * [`curve::PerfCurve`] — per-class `perf_max ~ P_b` curves from the
//!   shared-grid sweep oracle, memo-backed and bit-deterministic;
//! * [`partition::water_fill`] — the global budget partitioned by
//!   marginal gain: watts drain from nodes past their flattening point
//!   toward nodes still on the steep part of their curve;
//! * [`fleet::Fleet`] — heterogeneous node specs (`COUNT PLATFORM
//!   BENCH` text lines), deduplicated into profiled classes;
//! * [`coordinator::FleetCoordinator`] — water-fill, then per-node
//!   COORD and memo-priced simulation fanned out on the `pbc-par`
//!   pool; a dynamic mode replays `pbc_faults::FleetFaultPlan`
//!   scenarios (crashes, stragglers, report loss, write outages,
//!   coordinator outages, budget steps) under the determinism
//!   contract, with decreases-first enforcement keeping
//!   `Σ enforced ≤ global` invariant;
//! * [`health::HealthTracker`] — the per-node Healthy → Suspect →
//!   Quarantined → Rejoining machine driven by validated observation
//!   reports;
//! * [`degrade::StaticFallback`] — the precomputed partition every
//!   node falls back to when coordination is unavailable, summing ≤
//!   the global budget by construction;
//! * [`chaos::run_cluster_chaos`] — the end-to-end harness: a fleet, a
//!   plan, a mock RAPL tree as the cap sink, and a survival report.
//!
//! Everything emits `cluster.*`/`health.*` trace counters/gauges (see
//! `docs/OBSERVABILITY.md`); `cluster.budget_violations == 0` and
//! `health.quarantine_leaks == 0` are the survival criteria chaos runs
//! assert from real trace files.

pub mod chaos;
pub mod coordinator;
pub mod curve;
pub mod degrade;
pub mod fleet;
pub mod health;
pub mod partition;
pub mod tenant;

pub use chaos::{run_cluster_chaos, run_cluster_chaos_with, ClusterChaosReport};
pub use coordinator::{
    CapSink, ClusterCoordinator, ClusterDecision, ClusterReport, EpochReport, FleetCoordinator,
};
pub use curve::{node_ceiling, node_floor, PerfCurve, SAMPLE_STEP};
pub use degrade::StaticFallback;
pub use fleet::{parse_spec, ClassCoord, Fleet, NodeClass, SpecLine};
pub use health::{HealthConfig, HealthCounts, HealthTally, HealthTracker, NodeHealth, ReportVerdict};
pub use partition::{fill_shares, uniform_split, water_fill, NodeCurve, Objective, DEFAULT_GRANT};
pub use tenant::{jain_index, NodeSplit, SlaClass, Tenant, TenantSet};

/// The fleet fault-plan preset names, re-exported so CLI callers can
/// list them without depending on `pbc-faults` directly.
pub use pbc_faults::FLEET_PLAN_NAMES as PLAN_NAMES;
