//! Water-filling partition of a global budget across heterogeneous
//! nodes.
//!
//! Every node starts at its class floor (below which it cannot run at
//! all), then the remaining watts are granted one quantum at a time to
//! whichever node's [`PerfCurve`] promises the largest marginal gain for
//! that quantum. Nodes past their flattening point stop winning grants;
//! nodes still on the steep part of their curve keep collecting — the
//! cluster-level mirror of the paper's single-node insight that watts
//! should sit wherever the marginal performance per watt is highest.
//!
//! The pass is pure sequential arithmetic over already-profiled curves
//! (ties broken by lowest node index), so a partition is a deterministic
//! function of `(curves, global, grant)` — independent of `PBC_THREADS`,
//! which the property tests in `tests/partition_properties.rs` pin down.

use crate::curve::PerfCurve;
use pbc_types::{PbcError, Result, Watts};

/// Default grant quantum for the water-filling pass.
pub const DEFAULT_GRANT: Watts = Watts::new(4.0);

/// Marginal gains below this are treated as "flat" — the node has
/// saturated and stops competing for grants.
const GAIN_EPS: f64 = 1e-12;

/// Slack tolerated when checking the global budget against the summed
/// floors, so a budget computed as `fleet.min_total_power()` passes.
const BUDGET_EPS: f64 = 1e-6;

/// One node as the partitioner sees it: a floor and a marginal-gain
/// curve.
#[derive(Debug, Clone, Copy)]
pub struct NodeCurve<'a> {
    /// Smallest share this node can run on.
    pub floor: Watts,
    /// The node's profiled `perf_max ~ P_b` curve.
    pub curve: &'a PerfCurve,
}

/// Partition `global` watts across `nodes` by water-filling in `grant`
/// quanta. Returns one share per node, in node order.
///
/// Guarantees (the property-test contract):
/// - conservation: the shares sum to exactly `global` (± float dust);
/// - feasibility: every share ≥ that node's floor;
/// - determinism: a pure function of its arguments.
///
/// Fails with [`PbcError::BudgetTooSmall`] when `global` cannot cover
/// every node's floor — there is no feasible partition at all.
#[must_use = "the partition result carries either the shares or the infeasibility"]
pub fn water_fill(nodes: &[NodeCurve<'_>], global: Watts, grant: Watts) -> Result<Vec<Watts>> {
    if nodes.is_empty() {
        return Ok(Vec::new());
    }
    if !global.is_valid() || global.value() <= 0.0 {
        return Err(PbcError::InvalidInput(format!(
            "global budget must be a positive finite wattage, got {global:?}"
        )));
    }
    if !grant.is_valid() || grant.value() <= 0.0 {
        return Err(PbcError::InvalidInput(format!(
            "grant quantum must be a positive finite wattage, got {grant:?}"
        )));
    }
    let minimum = nodes.iter().fold(Watts::ZERO, |acc, n| acc + n.floor);
    if global.value() < minimum.value() - BUDGET_EPS {
        return Err(PbcError::BudgetTooSmall {
            requested: global,
            minimum,
        });
    }
    let mut shares: Vec<Watts> = nodes.iter().map(|n| n.floor).collect();
    let mut remaining = global - minimum;
    // Greedy water-fill: each quantum goes to the node whose curve rises
    // most for it. Saturated nodes (flat curve ahead) never win.
    while remaining.value() > BUDGET_EPS {
        let q = grant.min(remaining);
        let mut best: Option<(usize, f64)> = None;
        for (i, node) in nodes.iter().enumerate() {
            let gain = node.curve.marginal_gain(shares[i], q);
            let beats = match best {
                None => gain > GAIN_EPS,
                Some((_, g)) => gain > g + GAIN_EPS,
            };
            if beats {
                best = Some((i, gain));
            }
        }
        match best {
            Some((i, _)) => {
                shares[i] = shares[i] + q;
                remaining = remaining - q;
            }
            None => break, // every curve is flat — stop granting greedily
        }
    }
    // Conservation: whatever is left once every node has flattened is
    // spread evenly so Σ shares == global even when the fleet cannot
    // productively absorb the whole budget.
    if remaining.value() > 0.0 {
        let even = remaining * (1.0 / nodes.len() as f64);
        for share in &mut shares {
            *share = *share + even;
        }
    }
    Ok(shares)
}

/// The baseline partition: every node gets `global / n`, floors and
/// curves ignored. On a heterogeneous fleet this under-feeds hungry
/// nodes (whose COORD then rejects the share outright) and strands watts
/// on saturated ones — the gap `ext7` and the CLI report measure.
#[must_use]
pub fn uniform_split(n: usize, global: Watts) -> Vec<Watts> {
    if n == 0 {
        return Vec::new();
    }
    let share = global * (1.0 / n as f64);
    vec![share; n]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat_ramp(floor: f64, rise: f64, rungs: usize) -> PerfCurve {
        // A synthetic curve: climbs by `rise` per 8 W rung, then flat.
        let mut perf = Vec::new();
        for k in 0..rungs {
            perf.push(rise * k as f64);
        }
        perf.push(rise * (rungs.saturating_sub(1)) as f64);
        let allocs = vec![None; perf.len()];
        PerfCurve {
            floor: Watts::new(floor),
            step: Watts::new(8.0),
            perf,
            allocs,
        }
    }

    #[test]
    fn steep_nodes_win_the_surplus() {
        let steep = flat_ramp(50.0, 2.0, 10);
        let shallow = flat_ramp(50.0, 0.1, 2);
        let nodes = [
            NodeCurve { floor: steep.floor, curve: &steep },
            NodeCurve { floor: shallow.floor, curve: &shallow },
        ];
        let shares = water_fill(&nodes, Watts::new(160.0), Watts::new(4.0)).unwrap();
        assert!(shares[0] > shares[1], "the steep curve should collect the surplus");
        let total: f64 = shares.iter().map(|s| s.value()).sum();
        assert!((total - 160.0).abs() < 1e-9);
    }

    #[test]
    fn infeasible_budget_is_a_typed_error() {
        let c = flat_ramp(100.0, 1.0, 4);
        let nodes = [NodeCurve { floor: c.floor, curve: &c }; 3];
        let err = water_fill(&nodes, Watts::new(200.0), Watts::new(4.0)).unwrap_err();
        assert!(err.is_infeasible(), "expected BudgetTooSmall, got {err}");
    }

    #[test]
    fn saturated_fleet_still_conserves_the_budget() {
        let c = flat_ramp(50.0, 1.0, 3); // ceiling at 50 + 3*8 = 74 W
        let nodes = [NodeCurve { floor: c.floor, curve: &c }; 2];
        let shares = water_fill(&nodes, Watts::new(400.0), Watts::new(4.0)).unwrap();
        let total: f64 = shares.iter().map(|s| s.value()).sum();
        assert!((total - 400.0).abs() < 1e-9, "surplus past saturation must still be assigned");
    }

    #[test]
    fn uniform_split_divides_evenly() {
        let shares = uniform_split(4, Watts::new(100.0));
        assert_eq!(shares.len(), 4);
        for s in shares {
            assert!((s.value() - 25.0).abs() < 1e-12);
        }
        assert!(uniform_split(0, Watts::new(100.0)).is_empty());
    }
}
