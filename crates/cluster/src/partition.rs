//! Water-filling partition of a global budget across heterogeneous
//! nodes.
//!
//! Every node starts at its class floor (below which it cannot run at
//! all), then the remaining watts are granted one quantum at a time to
//! whichever node's [`PerfCurve`] promises the largest marginal gain for
//! that quantum. Nodes past their flattening point stop winning grants;
//! nodes still on the steep part of their curve keep collecting — the
//! cluster-level mirror of the paper's single-node insight that watts
//! should sit wherever the marginal performance per watt is highest.
//!
//! The pass is pure sequential arithmetic over already-profiled curves
//! (ties broken by lowest node index), so a partition is a deterministic
//! function of `(curves, global, grant)` — independent of `PBC_THREADS`,
//! which the property tests in `tests/partition_properties.rs` pin down.

use crate::curve::PerfCurve;
use pbc_types::{PbcError, Result, Watts};

/// Default grant quantum for the water-filling pass.
pub const DEFAULT_GRANT: Watts = Watts::new(4.0);

/// What the partitioner optimizes when it hands out the surplus above
/// the floors. All three objectives share the same guarantees
/// (conservation, floors, ceilings, determinism) — they differ only in
/// *which* node wins the next quantum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Objective {
    /// Maximize aggregate fleet throughput: each quantum goes to the
    /// node with the largest marginal performance gain (the paper's
    /// water-filling rule). The historical — and default — behavior.
    #[default]
    Throughput,
    /// Max-min fairness: each quantum goes to the node with the *lowest*
    /// normalized progress (`perf_at(share) / perf_at(ceiling)`), so no
    /// node is starved while another coasts near its peak.
    MaxMin,
    /// Weighted proportional shares: surplus watts above the floors are
    /// divided in proportion to per-node weights (each quantum goes to
    /// the node with the smallest `surplus / weight`), the FastCap-style
    /// tenant-entitlement rule.
    WeightedShares,
}

impl Objective {
    /// Parse a CLI/wire spelling. Accepts the kebab-case names used by
    /// `pbc cluster --objective` and the serve fleet verbs.
    #[must_use = "the parse result carries either the objective or the refusal"]
    pub fn parse(s: &str) -> Result<Self> {
        match s {
            "throughput" => Ok(Self::Throughput),
            "max-min" => Ok(Self::MaxMin),
            "weighted" => Ok(Self::WeightedShares),
            other => Err(PbcError::InvalidInput(format!(
                "unknown objective {other:?}: expected throughput, max-min, or weighted"
            ))),
        }
    }

    /// The wire spelling `parse` accepts.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Throughput => "throughput",
            Self::MaxMin => "max-min",
            Self::WeightedShares => "weighted",
        }
    }
}

/// Marginal gains below this are treated as "flat" — the node has
/// saturated and stops competing for grants.
const GAIN_EPS: f64 = 1e-12;

/// Slack tolerated when checking the global budget against the summed
/// floors, so a budget computed as `fleet.min_total_power()` passes.
const BUDGET_EPS: f64 = 1e-6;

/// One node as the partitioner sees it: a floor and a marginal-gain
/// curve.
#[derive(Debug, Clone, Copy)]
pub struct NodeCurve<'a> {
    /// Smallest share this node can run on.
    pub floor: Watts,
    /// The node's profiled `perf_max ~ P_b` curve.
    pub curve: &'a PerfCurve,
}

/// Headroom left under a node's ceiling, clamped at zero (a degenerate
/// curve whose ceiling sits below the configured floor has none).
fn headroom(node: &NodeCurve<'_>, share: Watts) -> f64 {
    (node.curve.ceiling().value() - share.value()).max(0.0)
}

/// Spread `remaining` watts over the shares without breaching ceilings
/// where possible: each round splits the leftover evenly across the
/// nodes that still have ceiling headroom, capped at that headroom, and
/// loops until the leftover is exhausted or nobody can absorb more.
/// Only when *every* node is pinned at its ceiling (the budget exceeds
/// what the fleet can productively hold) is the residue spread evenly
/// regardless — conservation (Σ shares == global) always wins over
/// ceilings, matching what the enforcement layer assumes.
fn spread_leftover(nodes: &[NodeCurve<'_>], shares: &mut [Watts], mut remaining: Watts) {
    while remaining.value() > BUDGET_EPS {
        let open: Vec<usize> = (0..nodes.len())
            .filter(|&i| headroom(&nodes[i], shares[i]) > BUDGET_EPS)
            .collect();
        if open.is_empty() {
            break;
        }
        let even = remaining * (1.0 / open.len() as f64);
        let mut granted = Watts::ZERO;
        for &i in &open {
            let take = Watts::new(even.value().min(headroom(&nodes[i], shares[i])));
            shares[i] = shares[i] + take;
            granted = granted + take;
        }
        remaining = remaining - granted;
        if granted.value() <= BUDGET_EPS {
            break; // float dust can't make progress — fall through
        }
    }
    if remaining.value() > 0.0 {
        let even = remaining * (1.0 / nodes.len() as f64);
        for share in shares.iter_mut() {
            *share = *share + even;
        }
    }
}

/// Partition `global` watts across `nodes` by water-filling in `grant`
/// quanta. Returns one share per node, in node order.
///
/// Guarantees (the property-test contract):
/// - conservation: the shares sum to exactly `global` (± float dust);
/// - feasibility: every share ≥ that node's floor;
/// - ceilings: no share exceeds its node's ceiling as long as the fleet
///   can absorb the budget (`global ≤ Σ ceilings`);
/// - determinism: a pure function of its arguments.
///
/// Fails with [`PbcError::BudgetTooSmall`] when `global` cannot cover
/// every node's floor — there is no feasible partition at all.
#[must_use = "the partition result carries either the shares or the infeasibility"]
pub fn water_fill(nodes: &[NodeCurve<'_>], global: Watts, grant: Watts) -> Result<Vec<Watts>> {
    fill_shares(nodes, &[], global, grant, Objective::Throughput)
}

/// Partition `global` watts across `nodes` under the chosen
/// [`Objective`]. `weights` applies to [`Objective::WeightedShares`]
/// (one positive weight per node); pass `&[]` for equal weights. The
/// guarantees are the same as [`water_fill`]'s for every objective.
#[must_use = "the partition result carries either the shares or the infeasibility"]
pub fn fill_shares(
    nodes: &[NodeCurve<'_>],
    weights: &[f64],
    global: Watts,
    grant: Watts,
    objective: Objective,
) -> Result<Vec<Watts>> {
    if nodes.is_empty() {
        return Ok(Vec::new());
    }
    if !global.is_valid() || global.value() <= 0.0 {
        return Err(PbcError::InvalidInput(format!(
            "global budget must be a positive finite wattage, got {global:?}"
        )));
    }
    if !grant.is_valid() || grant.value() <= 0.0 {
        return Err(PbcError::InvalidInput(format!(
            "grant quantum must be a positive finite wattage, got {grant:?}"
        )));
    }
    if !weights.is_empty() {
        if weights.len() != nodes.len() {
            return Err(PbcError::InvalidInput(format!(
                "got {} weights for {} nodes",
                weights.len(),
                nodes.len()
            )));
        }
        if let Some(w) = weights.iter().find(|w| !w.is_finite() || **w <= 0.0) {
            return Err(PbcError::InvalidInput(format!(
                "node weights must be positive and finite, got {w}"
            )));
        }
    }
    let minimum = nodes.iter().fold(Watts::ZERO, |acc, n| acc + n.floor);
    if global.value() < minimum.value() - BUDGET_EPS {
        return Err(PbcError::BudgetTooSmall {
            requested: global,
            minimum,
        });
    }
    let mut shares: Vec<Watts> = nodes.iter().map(|n| n.floor).collect();
    let mut remaining = global - minimum;
    // Greedy fill: each quantum goes to whichever node the objective
    // ranks first, clamped to that node's ceiling so the last grant
    // before a flattening point can never overshoot it.
    while remaining.value() > BUDGET_EPS {
        let q = grant.min(remaining);
        let winner = match objective {
            Objective::Throughput => pick_throughput(nodes, &shares, q),
            Objective::MaxMin => pick_max_min(nodes, &shares),
            Objective::WeightedShares => pick_weighted(nodes, &shares, weights),
        };
        match winner {
            Some(i) => {
                let qi = Watts::new(q.value().min(headroom(&nodes[i], shares[i])));
                shares[i] = shares[i] + qi;
                remaining = remaining - qi;
            }
            None => break, // nobody is eligible — stop granting greedily
        }
    }
    // Conservation: whatever is left once the objective stops granting
    // is still assigned so Σ shares == global, preferring nodes with
    // ceiling headroom.
    if remaining.value() > 0.0 {
        spread_leftover(nodes, &mut shares, remaining);
    }
    Ok(shares)
}

/// Throughput rule: the node with the largest marginal gain for the
/// next quantum, queried with the grant clamped to its own headroom.
/// Saturated nodes (flat curve ahead, or pinned at their ceiling) never
/// win. Ties break to the lowest node index.
fn pick_throughput(nodes: &[NodeCurve<'_>], shares: &[Watts], q: Watts) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, node) in nodes.iter().enumerate() {
        let room = headroom(node, shares[i]);
        if room <= BUDGET_EPS {
            continue;
        }
        let qi = Watts::new(q.value().min(room));
        let gain = node.curve.marginal_gain(shares[i], qi);
        let beats = match best {
            None => gain > GAIN_EPS,
            Some((_, g)) => gain > g + GAIN_EPS,
        };
        if beats {
            best = Some((i, gain));
        }
    }
    best.map(|(i, _)| i)
}

/// Max-min rule: the unsaturated node with the lowest normalized
/// progress toward its own peak performance. A node whose curve never
/// rises (peak ≤ 0) counts as fully progressed — watts can't help it.
/// Ties break to the lowest node index.
fn pick_max_min(nodes: &[NodeCurve<'_>], shares: &[Watts]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, node) in nodes.iter().enumerate() {
        if headroom(node, shares[i]) <= BUDGET_EPS {
            continue;
        }
        let top = node.curve.perf_at(node.curve.ceiling());
        let progress = if top > GAIN_EPS {
            (node.curve.perf_at(shares[i]) / top).min(1.0)
        } else {
            1.0
        };
        if best.is_none_or(|(_, p)| progress < p - GAIN_EPS) {
            best = Some((i, progress));
        }
    }
    best.map(|(i, _)| i)
}

/// Weighted-shares rule: the unsaturated node with the smallest surplus
/// (watts above its floor) per unit of weight, so surplus converges to
/// the weight proportions. Empty `weights` means equal weights. Ties
/// break to the lowest node index.
fn pick_weighted(nodes: &[NodeCurve<'_>], shares: &[Watts], weights: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, node) in nodes.iter().enumerate() {
        if headroom(node, shares[i]) <= BUDGET_EPS {
            continue;
        }
        let w = weights.get(i).copied().unwrap_or(1.0);
        let normalized = (shares[i].value() - node.floor.value()) / w;
        if best.is_none_or(|(_, n)| normalized < n - GAIN_EPS) {
            best = Some((i, normalized));
        }
    }
    best.map(|(i, _)| i)
}

/// The baseline partition: every node gets `global / n`, floors and
/// curves ignored. On a heterogeneous fleet this under-feeds hungry
/// nodes (whose COORD then rejects the share outright) and strands watts
/// on saturated ones — the gap `ext7` and the CLI report measure.
#[must_use]
pub fn uniform_split(n: usize, global: Watts) -> Vec<Watts> {
    if n == 0 {
        return Vec::new();
    }
    let share = global * (1.0 / n as f64);
    vec![share; n]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat_ramp(floor: f64, rise: f64, rungs: usize) -> PerfCurve {
        // A synthetic curve: climbs by `rise` per 8 W rung, then flat.
        let mut perf = Vec::new();
        for k in 0..rungs {
            perf.push(rise * k as f64);
        }
        perf.push(rise * (rungs.saturating_sub(1)) as f64);
        let allocs = vec![None; perf.len()];
        PerfCurve {
            floor: Watts::new(floor),
            step: Watts::new(8.0),
            perf,
            allocs,
        }
    }

    #[test]
    fn steep_nodes_win_the_surplus() {
        let steep = flat_ramp(50.0, 2.0, 10);
        let shallow = flat_ramp(50.0, 0.1, 2);
        let nodes = [
            NodeCurve { floor: steep.floor, curve: &steep },
            NodeCurve { floor: shallow.floor, curve: &shallow },
        ];
        let shares = water_fill(&nodes, Watts::new(160.0), Watts::new(4.0)).unwrap();
        assert!(shares[0] > shares[1], "the steep curve should collect the surplus");
        let total: f64 = shares.iter().map(|s| s.value()).sum();
        assert!((total - 160.0).abs() < 1e-9);
    }

    #[test]
    fn infeasible_budget_is_a_typed_error() {
        let c = flat_ramp(100.0, 1.0, 4);
        let nodes = [NodeCurve { floor: c.floor, curve: &c }; 3];
        let err = water_fill(&nodes, Watts::new(200.0), Watts::new(4.0)).unwrap_err();
        assert!(err.is_infeasible(), "expected BudgetTooSmall, got {err}");
    }

    #[test]
    fn saturated_fleet_still_conserves_the_budget() {
        let c = flat_ramp(50.0, 1.0, 3); // ceiling at 50 + 3*8 = 74 W
        let nodes = [NodeCurve { floor: c.floor, curve: &c }; 2];
        let shares = water_fill(&nodes, Watts::new(400.0), Watts::new(4.0)).unwrap();
        let total: f64 = shares.iter().map(|s| s.value()).sum();
        assert!((total - 400.0).abs() < 1e-9, "surplus past saturation must still be assigned");
    }

    /// A curve that rises all the way to its last rung — no flat tail,
    /// so the marginal gain stays positive right up to the ceiling.
    fn ramp(floor: f64, rise: f64, rungs: usize) -> PerfCurve {
        let perf: Vec<f64> = (0..=rungs).map(|k| rise * k as f64).collect();
        let allocs = vec![None; perf.len()];
        PerfCurve {
            floor: Watts::new(floor),
            step: Watts::new(8.0),
            perf,
            allocs,
        }
    }

    /// The conservation-step bug: leftover watts were spread evenly over
    /// *all* nodes, shoving a node with little headroom past its ceiling
    /// even though another node could have absorbed the surplus.
    #[test]
    fn leftover_goes_only_to_nodes_with_headroom() {
        let tiny = flat_ramp(50.0, 0.0, 1); // flat curve, ceiling 58: 8 W of headroom
        let roomy = flat_ramp(50.0, 0.0, 3); // flat curve, ceiling 74: 24 W of headroom
        let nodes = [
            NodeCurve { floor: tiny.floor, curve: &tiny },
            NodeCurve { floor: roomy.floor, curve: &roomy },
        ];
        // Both curves are flat, so the greedy pass grants nothing and the
        // whole 20 W surplus rides on the conservation step. An even
        // split (10 W each) would put the tiny node at 60 W > 58 W.
        let shares = water_fill(&nodes, Watts::new(120.0), Watts::new(4.0)).unwrap();
        assert!(
            shares[0].value() <= tiny.ceiling().value() + 1e-9,
            "tiny node got {} W, above its {} W ceiling",
            shares[0],
            tiny.ceiling()
        );
        assert!((shares[1].value() - 62.0).abs() < 1e-9, "roomy node absorbs the overflow");
        let total: f64 = shares.iter().map(|s| s.value()).sum();
        assert!((total - 120.0).abs() < 1e-9);
    }

    /// The greedy-overshoot bug: a grant quantum larger than a node's
    /// distance to its ceiling was handed over whole, because the
    /// marginal gain was queried without clamping `share + q`.
    #[test]
    fn greedy_grant_is_clamped_to_the_ceiling() {
        let steep = ramp(50.0, 2.0, 3); // rises to its 74 W ceiling
        let shallow = ramp(50.0, 0.5, 8); // ceiling 114 W
        let nodes = [
            NodeCurve { floor: steep.floor, curve: &steep },
            NodeCurve { floor: shallow.floor, curve: &shallow },
        ];
        // With a 16 W quantum the steep node's second grant would land it
        // at 82 W — one quantum past its 74 W ceiling — before the fix.
        let shares = water_fill(&nodes, Watts::new(160.0), Watts::new(16.0)).unwrap();
        assert!(
            shares[0].value() <= steep.ceiling().value() + 1e-9,
            "steep node got {} W, above its {} W ceiling",
            shares[0],
            steep.ceiling()
        );
        assert!((shares[0].value() - 74.0).abs() < 1e-9, "steep node should fill exactly");
        let total: f64 = shares.iter().map(|s| s.value()).sum();
        assert!((total - 160.0).abs() < 1e-9);
    }

    #[test]
    fn max_min_feeds_the_laggard_first() {
        // Throughput loves the steep curve; max-min must not let the
        // shallow node idle at its floor while the steep one feasts.
        let steep = ramp(50.0, 4.0, 10);
        let shallow = ramp(50.0, 0.5, 10);
        let nodes = [
            NodeCurve { floor: steep.floor, curve: &steep },
            NodeCurve { floor: shallow.floor, curve: &shallow },
        ];
        let global = Watts::new(160.0);
        let grant = Watts::new(4.0);
        let tp = fill_shares(&nodes, &[], global, grant, Objective::Throughput).unwrap();
        let mm = fill_shares(&nodes, &[], global, grant, Objective::MaxMin).unwrap();
        assert!(tp[1].value() < mm[1].value(), "max-min lifts the shallow node");
        // Normalized progress ends up (nearly) equal under max-min.
        let prog = |n: &NodeCurve<'_>, s: Watts| {
            n.curve.perf_at(s) / n.curve.perf_at(n.curve.ceiling())
        };
        let spread = (prog(&nodes[0], mm[0]) - prog(&nodes[1], mm[1])).abs();
        assert!(spread < 0.15, "progress spread {spread} too wide for max-min");
        let total: f64 = mm.iter().map(|s| s.value()).sum();
        assert!((total - 160.0).abs() < 1e-9);
    }

    #[test]
    fn weighted_shares_split_surplus_by_weight() {
        let c = ramp(50.0, 1.0, 20); // ceiling 210 W, plenty of headroom
        let nodes = [NodeCurve { floor: c.floor, curve: &c }; 2];
        let shares =
            fill_shares(&nodes, &[1.0, 3.0], Watts::new(180.0), Watts::new(4.0), Objective::WeightedShares)
                .unwrap();
        // 80 W of surplus split 1:3 → 20 W and 60 W above the floors.
        let s0 = shares[0].value() - 50.0;
        let s1 = shares[1].value() - 50.0;
        assert!((s0 - 20.0).abs() <= 4.0, "weight-1 surplus {s0}");
        assert!((s1 - 60.0).abs() <= 4.0, "weight-3 surplus {s1}");
        let total: f64 = shares.iter().map(|s| s.value()).sum();
        assert!((total - 180.0).abs() < 1e-9);
    }

    #[test]
    fn bad_weights_are_refused() {
        let c = ramp(50.0, 1.0, 4);
        let nodes = [NodeCurve { floor: c.floor, curve: &c }; 2];
        for weights in [vec![1.0], vec![1.0, 0.0], vec![1.0, f64::NAN], vec![-1.0, 1.0]] {
            let err = fill_shares(
                &nodes,
                &weights,
                Watts::new(140.0),
                Watts::new(4.0),
                Objective::WeightedShares,
            )
            .unwrap_err();
            assert!(
                matches!(err, PbcError::InvalidInput(_)),
                "weights {weights:?} should be refused, got {err}"
            );
        }
    }

    #[test]
    fn objective_names_round_trip() {
        for obj in [Objective::Throughput, Objective::MaxMin, Objective::WeightedShares] {
            assert_eq!(Objective::parse(obj.name()).unwrap(), obj);
        }
        assert!(Objective::parse("fifo").is_err());
    }

    #[test]
    fn uniform_split_divides_evenly() {
        let shares = uniform_split(4, Watts::new(100.0));
        assert_eq!(shares.len(), 4);
        for s in shares {
            assert!((s.value() - 25.0).abs() < 1e-12);
        }
        assert!(uniform_split(0, Watts::new(100.0)).is_empty());
    }
}
