//! Property tests for the water-filling partitioner — the contract the
//! cluster layer's correctness rests on:
//!
//! * **conservation** — the shares sum to exactly the global budget;
//! * **feasibility** — every share ≥ that node's floor, which itself is
//!   ≥ the platform's `min_node_power`;
//! * **determinism** — the partition (and everything feeding it: curve
//!   profiling, per-node evaluation) is bit-identical across executor
//!   counts, mirroring `sweep_curve_equivalence.rs`. Thread counts are
//!   pinned with explicit `Pool::new(n)` instances rather than by
//!   mutating `PBC_THREADS`, which is process-global.

use pbc_cluster::{
    fill_shares, parse_spec, water_fill, ClusterCoordinator, Fleet, NodeCurve, Objective,
    PerfCurve, DEFAULT_GRANT,
};
use pbc_par::Pool;
use pbc_platform::presets::by_id;
use pbc_platform::PlatformId;
use pbc_types::{Watts, XorShift64Star};
use pbc_workloads::by_name;

const MIXED_SPEC: &str = "6 ivybridge stream\n\
                          4 haswell dgemm\n\
                          3 ivybridge sra\n\
                          2 titan-xp sgemm\n\
                          1 titan-v minife\n";

fn mixed_fleet(pool: &Pool) -> Fleet {
    let spec = parse_spec(MIXED_SPEC).unwrap();
    Fleet::build_with_pool(&spec, pool).unwrap()
}

fn fleet_curves(fleet: &Fleet) -> Vec<NodeCurve<'_>> {
    fleet
        .nodes
        .iter()
        .map(|&c| NodeCurve { floor: fleet.classes[c].floor, curve: &fleet.classes[c].curve })
        .collect()
}

#[test]
fn shares_conserve_the_global_budget() {
    let pool = Pool::new(2);
    let fleet = mixed_fleet(&pool);
    let curves = fleet_curves(&fleet);
    // From barely feasible to far past saturation.
    for slack in [0.0, 25.0, 150.0, 600.0, 5000.0] {
        let global = fleet.min_total_power() + Watts::new(slack);
        let shares = water_fill(&curves, global, DEFAULT_GRANT).unwrap();
        let total: f64 = shares.iter().map(|s| s.value()).sum();
        assert!(
            (total - global.value()).abs() < 1e-6,
            "slack {slack}: shares sum to {total}, budget is {}",
            global.value()
        );
    }
}

#[test]
fn every_share_covers_the_node_floor_and_the_platform_minimum() {
    let pool = Pool::new(2);
    let fleet = mixed_fleet(&pool);
    let curves = fleet_curves(&fleet);
    let global = fleet.min_total_power() + Watts::new(180.0);
    let shares = water_fill(&curves, global, DEFAULT_GRANT).unwrap();
    for (i, share) in shares.iter().enumerate() {
        let class = fleet.class_of(i);
        assert!(
            *share >= class.floor,
            "node {i}: share {share:?} below class floor {:?}",
            class.floor
        );
        assert!(
            *share >= class.platform.min_node_power(),
            "node {i}: share {share:?} below min_node_power {:?}",
            class.platform.min_node_power()
        );
    }
}

#[test]
fn infeasible_global_budget_is_refused_with_the_true_minimum() {
    let pool = Pool::new(1);
    let fleet = mixed_fleet(&pool);
    let curves = fleet_curves(&fleet);
    let short = fleet.min_total_power() - Watts::new(0.5);
    let err = water_fill(&curves, short, DEFAULT_GRANT).unwrap_err();
    assert!(err.is_infeasible(), "expected BudgetTooSmall, got {err}");
}

/// The determinism property: profiling the fleet and partitioning the
/// budget on 1, 2, and 8 executors must produce bit-identical curves
/// and bit-identical shares.
#[test]
fn partition_is_bit_identical_across_thread_counts() {
    let partition_at = |threads: usize| {
        let pool = Pool::new(threads);
        let fleet = mixed_fleet(&pool);
        let curves = fleet_curves(&fleet);
        let global = fleet.min_total_power() + Watts::new(200.0);
        let shares = water_fill(&curves, global, DEFAULT_GRANT).unwrap();
        let perfs: Vec<Vec<u64>> = fleet
            .classes
            .iter()
            .map(|c| c.curve.perf.iter().map(|v| v.to_bits()).collect())
            .collect();
        let bits: Vec<u64> = shares.iter().map(|s| s.value().to_bits()).collect();
        (perfs, bits)
    };
    let one = partition_at(1);
    let two = partition_at(2);
    let eight = partition_at(8);
    assert_eq!(one.0, two.0, "curve samples diverge between 1 and 2 threads");
    assert_eq!(one.0, eight.0, "curve samples diverge between 1 and 8 threads");
    assert_eq!(one.1, two.1, "shares diverge between 1 and 2 threads");
    assert_eq!(one.1, eight.1, "shares diverge between 1 and 8 threads");
}

/// Same property one layer up: the full coordinate() decision (shares,
/// allocations, priced performance) replays bit-identically.
#[test]
fn cluster_decisions_are_bit_identical_across_thread_counts() {
    let decide = |threads: usize| {
        let pool = Pool::new(threads);
        let fleet = mixed_fleet(&pool);
        let global = fleet.min_total_power() + Watts::new(200.0);
        let coord = ClusterCoordinator::new(fleet, global).unwrap();
        let d = coord.coordinate_with_pool(&pool).unwrap();
        let shares: Vec<u64> = d.shares.iter().map(|s| s.value().to_bits()).collect();
        let perfs: Vec<u64> = d.perfs.iter().map(|p| p.to_bits()).collect();
        (shares, perfs, d.aggregate_perf.to_bits())
    };
    let one = decide(1);
    let two = decide(2);
    let eight = decide(8);
    assert_eq!(one, two, "decision diverges between 1 and 2 threads");
    assert_eq!(one, eight, "decision diverges between 1 and 8 threads");
}

/// A single-class fleet has no heterogeneity to exploit: water-filling
/// and uniform-split must agree (up to the grant quantum's rounding).
#[test]
fn homogeneous_fleet_degenerates_to_an_even_split() {
    let pool = Pool::new(2);
    let spec = parse_spec("4 ivybridge stream").unwrap();
    let fleet = Fleet::build_with_pool(&spec, &pool).unwrap();
    let curves = fleet_curves(&fleet);
    let global = fleet.min_total_power() + Watts::new(160.0);
    let shares = water_fill(&curves, global, DEFAULT_GRANT).unwrap();
    let even = global.value() / 4.0;
    for share in &shares {
        assert!(
            (share.value() - even).abs() <= DEFAULT_GRANT.value() * 4.0,
            "homogeneous share {share:?} strays from the even split {even}"
        );
    }
}

/// The ceiling contract across every objective: for randomized synthetic
/// fleets whose combined ceilings can absorb the budget, no node is ever
/// pushed past its own ceiling — the regression the even-spread
/// conservation step and the unclamped greedy grant both violated.
#[test]
fn no_objective_ever_breaches_a_ceiling_the_fleet_can_absorb() {
    let mut rng = XorShift64Star::new(0x5AFE_FA11_CE11_0001);
    for case in 0..240 {
        let n = 2 + (rng.next_u64() % 10) as usize;
        let mut curves = Vec::with_capacity(n);
        let mut weights = Vec::with_capacity(n);
        for _ in 0..n {
            let floor = 20.0 + 100.0 * rng.next_f64();
            let rungs = 1 + (rng.next_u64() % 12) as usize;
            let rise = 3.0 * rng.next_f64();
            let perf: Vec<f64> = (0..=rungs).map(|k| rise * k as f64).collect();
            let allocs = vec![None; perf.len()];
            curves.push(PerfCurve {
                floor: Watts::new(floor),
                step: Watts::new(8.0),
                perf,
                allocs,
            });
            weights.push(0.5 + 3.5 * rng.next_f64());
        }
        let nodes: Vec<NodeCurve<'_>> = curves
            .iter()
            .map(|c| NodeCurve { floor: c.floor, curve: c })
            .collect();
        let floor_sum: f64 = nodes.iter().map(|c| c.floor.value()).sum();
        let ceiling_sum: f64 = nodes.iter().map(|c| c.curve.ceiling().value()).sum();
        // Anywhere from exactly-the-floors to exactly-the-ceilings.
        let global = Watts::new(floor_sum + (ceiling_sum - floor_sum) * rng.next_f64());
        let grant = Watts::new([2.0, 4.0, 16.0][(rng.next_u64() % 3) as usize]);
        for objective in [Objective::Throughput, Objective::MaxMin, Objective::WeightedShares] {
            let w: &[f64] = if objective == Objective::WeightedShares { &weights } else { &[] };
            let shares = fill_shares(&nodes, w, global, grant, objective)
                .unwrap_or_else(|e| panic!("case {case} {}: refused: {e}", objective.name()));
            let total: f64 = shares.iter().map(|s| s.value()).sum();
            assert!(
                (total - global.value()).abs() < 1e-6,
                "case {case} {}: shares sum to {total}, budget is {}",
                objective.name(),
                global.value()
            );
            for (i, share) in shares.iter().enumerate() {
                assert!(
                    *share >= nodes[i].floor - Watts::new(1e-9),
                    "case {case} {} node {i}: share {share:?} below floor {:?}",
                    objective.name(),
                    nodes[i].floor
                );
                assert!(
                    share.value() <= nodes[i].curve.ceiling().value() + 1e-6,
                    "case {case} {} node {i}: share {share:?} breaches ceiling {:?}",
                    objective.name(),
                    nodes[i].curve.ceiling()
                );
            }
        }
    }
}

#[test]
fn floors_match_the_profiled_platforms() {
    // The curve floor a class reports is the same value `node_floor`
    // computes from the platform and demand — no hidden state.
    let pool = Pool::new(1);
    let fleet = mixed_fleet(&pool);
    for class in &fleet.classes {
        let again = PerfCurve::profile_with_pool(&class.platform, &class.demand, &pool).unwrap();
        assert_eq!(class.curve.floor.value().to_bits(), again.floor.value().to_bits());
        assert_eq!(class.curve.perf.len(), again.perf.len());
    }
    // And every preset the spec names is really the preset registry's.
    for id in [PlatformId::IvyBridge, PlatformId::Haswell] {
        assert!(by_id(id).min_node_power() > Watts::ZERO);
    }
    assert!(by_name("stream").is_some());
}
