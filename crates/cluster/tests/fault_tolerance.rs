//! The ISSUE's fleet fault-tolerance acceptance criteria, asserted
//! end to end:
//!
//! * an adversarial seed sweep (16 seeds × four fault plans × 8- and
//!   32-node fleets) completes with zero budget overdraw, zero
//!   quarantine leaks, and bounded time-to-reconverge — the invariants
//!   read back from a **real exported trace file**, not from in-process
//!   bookkeeping;
//! * a global budget cut landing *during* an in-flight
//!   quarantine/reclaim transition never overdraws the fleet (the
//!   cluster-scale mirror of the single-node budget-cut-inside-
//!   write-fault-window property);
//! * the degraded-mode static partition sums to ≤ the global budget by
//!   construction, under randomized floors and ceilings.

use pbc_cluster::{
    run_cluster_chaos, run_cluster_chaos_with, Fleet, FleetCoordinator, Objective, SpecLine,
    StaticFallback, TenantSet,
};
use pbc_faults::{BudgetStep, FaultWindow, FleetFaultPlan, FleetWriteFaults, NodeFaults};
use pbc_trace::json::{self, Value};
use pbc_trace::names;
use pbc_types::{Watts, XorShift64Star};
use std::collections::BTreeMap;

/// The class mix both fleets cycle through — the ext7/ext8 mix.
const MIX: [(&str, &str); 5] = [
    ("ivybridge", "stream"),
    ("haswell", "dgemm"),
    ("ivybridge", "sra"),
    ("titan-xp", "sgemm"),
    ("titan-v", "minife"),
];

/// Global budget per node, comfortably above every class floor.
const WATTS_PER_NODE: f64 = 130.0;

/// Seeds the sweep replays per (plan, size) cell.
const SEEDS: [u64; 16] = [0, 1, 2, 3, 5, 7, 11, 13, 17, 23, 29, 42, 97, 512, 9999, 123_456];

/// The survival-relevant plans from the ISSUE's acceptance criteria.
const PLANS: [&str; 4] = ["node-crash", "node-rejoin", "stragglers", "report-loss"];

fn fleet_of(n: usize) -> Fleet {
    let mut spec = Vec::new();
    for (i, (platform, bench)) in MIX.iter().enumerate() {
        let count = n / MIX.len() + usize::from(i < n % MIX.len());
        if count > 0 {
            spec.push(SpecLine {
                count,
                platform: (*platform).to_string(),
                bench: (*bench).to_string(),
            });
        }
    }
    Fleet::build(&spec).unwrap()
}

fn counters_from(path: &std::path::Path) -> BTreeMap<String, u64> {
    let text = std::fs::read_to_string(path).expect("trace file exists");
    std::fs::remove_file(path).ok();
    let mut counters = BTreeMap::new();
    for line in text.lines() {
        let v = json::parse(line).unwrap_or_else(|e| panic!("bad trace line {line:?}: {e}"));
        if v.get("type").and_then(Value::as_str) == Some("counter") {
            counters.insert(
                v.get("name").and_then(Value::as_str).unwrap().to_string(),
                v.get("value").and_then(Value::as_u64).unwrap(),
            );
        }
    }
    counters
}

/// The acceptance sweep: every (seed, plan, size) cell must survive
/// with a bounded reconvergence time, and the exported trace must agree
/// that no epoch anywhere in the sweep overdrew the budget or leaked
/// quarantined watts.
#[test]
fn seed_sweep_survives_with_bounded_reconvergence_at_8_and_32_nodes() {
    pbc_trace::enable();
    let mut cells = 0usize;
    for n in [8usize, 32] {
        let global = Watts::new(WATTS_PER_NODE * n as f64);
        for plan_name in PLANS {
            for seed in SEEDS {
                let plan = FleetFaultPlan::by_name(plan_name, seed).unwrap();
                let chaos = run_cluster_chaos(fleet_of(n), global, &plan, 0).unwrap();
                cells += 1;
                assert!(
                    chaos.survived(),
                    "plan {plan_name} seed {seed} at {n} nodes died:\n{chaos}"
                );
                let reconverged = chaos
                    .report
                    .reconverged_at
                    .unwrap_or_else(|| panic!(
                        "plan {plan_name} seed {seed} at {n} nodes never reconverged:\n{chaos}"
                    ));
                assert!(
                    reconverged < chaos.epochs,
                    "plan {plan_name} seed {seed} at {n} nodes reconverged out of bounds \
                     ({reconverged} >= {})",
                    chaos.epochs
                );
            }
        }
    }
    assert_eq!(cells, SEEDS.len() * PLANS.len() * 2);

    pbc_trace::disable();
    let trace = std::env::temp_dir().join(format!("pbc-cluster-sweep-{}.jsonl", std::process::id()));
    pbc_trace::export(&trace).expect("trace export writes");
    let counters = counters_from(&trace);
    let read = |name: &str| counters.get(name).copied().unwrap_or(0);
    assert_eq!(
        read(names::CLUSTER_BUDGET_VIOLATIONS),
        0,
        "an epoch somewhere in the sweep enforced more than its global budget"
    );
    assert_eq!(
        read(names::HEALTH_QUARANTINE_LEAKS),
        0,
        "raises somewhere in the sweep outran what confirmed decreases freed"
    );
    assert!(
        read(names::CLUSTER_DROPOUTS) > 0,
        "the crash plans in the sweep crashed nothing"
    );
    assert!(
        read(names::HEALTH_QUARANTINES) > 0,
        "the sweep exercised no quarantine transitions"
    );
    assert!(
        read(names::HEALTH_RECOVERIES) > 0,
        "no quarantined node ever served out probation"
    );
}

/// A budget cut that lands *while* crashed nodes are being reclaimed —
/// crash window, write-fault window, and budget steps all overlapping —
/// must never overdraw, at any seed. The shipped `everything` plan
/// politely sequences its budget steps after the write windows close;
/// this plan does not.
#[test]
fn budget_cut_during_inflight_quarantine_reclaim_never_overdraws() {
    let n = 8usize;
    let fleet = fleet_of(n);
    // Enough headroom that a 0.8× cut stays above the fleet floor, so
    // the cut is *accepted* (a rejected cut would test nothing).
    let global = fleet.min_total_power() * 1.4;
    for seed in 0..24u64 {
        let plan = FleetFaultPlan {
            name: "cut-under-churn",
            seed,
            nodes: NodeFaults {
                crash_prob: 0.15,
                crash_window: FaultWindow::new(2, 20),
                outage_epochs: 6,
                ..NodeFaults::NONE
            },
            writes: FleetWriteFaults {
                fail_prob: 0.2,
                window: FaultWindow::new(1, 24),
                ..FleetWriteFaults::NONE
            },
            budget_steps: vec![
                BudgetStep { at: 6, factor: 0.8 },
                BudgetStep { at: 14, factor: 0.9 },
                BudgetStep { at: 22, factor: 1.0 },
            ],
            ..FleetFaultPlan::calm(seed)
        };
        let mut coord = FleetCoordinator::new(fleet_of(n), global)
            .unwrap()
            .with_plan(plan)
            .unwrap();
        let report = coord.run(40).unwrap();
        assert_eq!(
            report.budget_violations, 0,
            "seed {seed}: a cut mid-reclaim overdrew the fleet"
        );
        assert_eq!(
            report.quarantine_leaks, 0,
            "seed {seed}: quarantined watts leaked during the cut"
        );
        assert!(
            report.dropouts > 0,
            "seed {seed}: the churn plan crashed nothing, the property was not exercised"
        );
    }
}

/// The multi-tenant acceptance sweep: 16 seeds of the noisy-neighbor
/// plan against a weighted three-tenant fleet, under each fairness
/// objective. A mid-epoch demand spike must never overdraw the global
/// budget, and no weighted tenant may ever fall below its floor — both
/// structurally zero, at every seed.
#[test]
fn noisy_neighbor_sweep_never_overdraws_or_starves_a_tenant() {
    let n = 8usize;
    let global = Watts::new(WATTS_PER_NODE * n as f64);
    let mut spikes = 0usize;
    let mut noisy = 0usize;
    for objective in [Objective::MaxMin, Objective::WeightedShares] {
        for seed in SEEDS {
            let plan = FleetFaultPlan::by_name("noisy-neighbor", seed).unwrap();
            let tenants = TenantSet::parse("web:3:gold,etl:2:silver,batch:1:best-effort").unwrap();
            let chaos =
                run_cluster_chaos_with(fleet_of(n), global, &plan, 0, objective, Some(tenants))
                    .unwrap();
            assert!(
                chaos.survived(),
                "{} seed {seed}: noisy-neighbor run died:\n{chaos}",
                objective.name()
            );
            assert_eq!(
                chaos.report.budget_violations, 0,
                "{} seed {seed}: a tenant demand spike overdrew the global budget",
                objective.name()
            );
            assert_eq!(
                chaos.report.tenant_floor_violations, 0,
                "{} seed {seed}: a weighted tenant fell below its floor",
                objective.name()
            );
            assert!(
                chaos.report.min_tenant_jain > 0.0,
                "{} seed {seed}: degenerate fairness index",
                objective.name()
            );
            spikes += chaos.report.tenant_spikes;
            noisy += chaos.report.tenant_noisy;
        }
    }
    assert!(spikes > 0, "the sweep fired no demand spikes — nothing was exercised");
    assert!(noisy > 0, "the sweep fired no noisy-neighbor events — nothing was exercised");
}

/// The degraded-mode partition is safe by construction: for randomized
/// floors and ceilings and any feasible global budget, the fallback
/// shares respect every node's bounds and sum to ≤ the budget.
#[test]
fn static_fallback_sums_within_budget_under_randomized_fleets() {
    let mut rng = XorShift64Star::new(0x5AFE_FA11_BACC_0001);
    for case in 0..200 {
        let n = 1 + (rng.next_u64() % 48) as usize;
        let mut floors = Vec::with_capacity(n);
        let mut ceilings = Vec::with_capacity(n);
        for _ in 0..n {
            let floor = 20.0 + 180.0 * rng.next_f64();
            let range = 250.0 * rng.next_f64();
            floors.push(Watts::new(floor));
            ceilings.push(Watts::new(floor + range));
        }
        let floor_sum: f64 = floors.iter().map(|w| w.value()).sum();
        let ceiling_sum: f64 = ceilings.iter().map(|w| w.value()).sum();
        // Budgets from exactly-the-floor up to beyond every ceiling.
        let global = Watts::new(floor_sum + (ceiling_sum + 50.0 - floor_sum) * rng.next_f64());
        let fallback = StaticFallback::from_parts(&floors, &ceilings, global)
            .unwrap_or_else(|e| panic!("case {case}: feasible fallback refused: {e}"));
        let total: f64 = (0..n).map(|i| fallback.share(i).value()).sum();
        assert!(
            total <= global.value() + 1e-6,
            "case {case}: fallback sum {total} exceeds global {}",
            global.value()
        );
        for i in 0..n {
            let s = fallback.share(i).value();
            assert!(
                s >= floors[i].value() - 1e-9 && s <= ceilings[i].value() + 1e-9,
                "case {case} node {i}: share {s} outside [{}, {}]",
                floors[i].value(),
                ceilings[i].value()
            );
        }
    }
}
