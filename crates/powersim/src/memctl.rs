//! A dynamic RAPL DRAM-domain controller: bandwidth throttling.
//!
//! RAPL limits DRAM power by inserting idle cycles between memory
//! requests, reducing the sustainable bandwidth in discrete steps (§3.3:
//! "DRAM bandwidth throttling reduces memory power proportionally").
//! [`DramThrottle`] is the windowed controller that walks those steps in
//! the discrete-time engine; the steady-state equivalent is
//! [`pbc_platform::DramSpec::bandwidth_under_cap`].

use pbc_platform::DramSpec;
use pbc_types::{Bandwidth, Watts};
use std::collections::VecDeque;

/// Windowed running-average controller for the DRAM domain.
#[derive(Debug, Clone)]
pub struct DramThrottle {
    cap: Watts,
    window: usize,
    history: VecDeque<f64>,
    /// Current throttle level: `0..=levels`, where `levels` means
    /// unthrottled and `1` is the deepest usable level (one step of
    /// bandwidth). Level 0 never occurs — the system always progresses.
    level: u32,
    upstep_margin: f64,
}

impl DramThrottle {
    /// Create a controller for `cap`, starting unthrottled.
    pub fn new(dram: &DramSpec, cap: Watts, window: usize) -> Self {
        Self {
            cap,
            window: window.max(1),
            history: VecDeque::with_capacity(window.max(1)),
            level: dram.throttle_levels,
            upstep_margin: 0.97,
        }
    }

    /// The configured power limit.
    pub fn cap(&self) -> Watts {
        self.cap
    }

    /// Change the limit at runtime.
    pub fn set_cap(&mut self, cap: Watts) {
        self.cap = cap;
    }

    /// Current throttle level (1..=levels; `levels` = unthrottled).
    pub fn level(&self) -> u32 {
        self.level
    }

    /// Bandwidth ceiling the current level allows.
    pub fn allowed_bandwidth(&self, dram: &DramSpec) -> Bandwidth {
        dram.max_bandwidth * (self.level as f64 / dram.throttle_levels as f64)
    }

    /// Windowed running-average of observed power.
    pub fn running_average(&self) -> Watts {
        if self.history.is_empty() {
            Watts::ZERO
        } else {
            Watts::new(self.history.iter().sum::<f64>() / self.history.len() as f64)
        }
    }

    /// Feed one power sample and take at most one throttle step. Returns
    /// the new bandwidth ceiling.
    pub fn observe_and_step(&mut self, dram: &DramSpec, measured: Watts) -> Bandwidth {
        if self.history.len() == self.window {
            self.history.pop_front();
        }
        self.history.push_back(measured.value());
        let avg = self.running_average();
        if avg > self.cap && self.level > 1 {
            self.level -= 1;
        } else if avg < self.cap * self.upstep_margin && self.level < dram.throttle_levels {
            // Predict the next level's worst-case power before climbing.
            let next_bw = dram.max_bandwidth * ((self.level + 1) as f64 / dram.throttle_levels as f64);
            // Use streaming cost for the prediction; the controller cannot
            // know the pattern, which is exactly why real RAPL is
            // conservative near the cap.
            if dram.power_at(next_bw, 1.0) <= self.cap {
                self.level += 1;
            }
        }
        self.allowed_bandwidth(dram)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbc_platform::presets::ivybridge;

    fn dram() -> DramSpec {
        ivybridge().dram().unwrap().clone()
    }

    #[test]
    fn starts_unthrottled() {
        let d = dram();
        let t = DramThrottle::new(&d, Watts::new(80.0), 5);
        assert_eq!(t.level(), d.throttle_levels);
        assert_eq!(t.allowed_bandwidth(&d), d.max_bandwidth);
    }

    #[test]
    fn throttles_under_sustained_overdraw() {
        let d = dram();
        let mut t = DramThrottle::new(&d, Watts::new(60.0), 1);
        for _ in 0..10 {
            t.observe_and_step(&d, Watts::new(100.0));
        }
        assert!(t.level() < d.throttle_levels);
        assert!(t.allowed_bandwidth(&d) < d.max_bandwidth);
    }

    #[test]
    fn never_throttles_below_one_step() {
        let d = dram();
        let mut t = DramThrottle::new(&d, Watts::new(10.0), 1);
        for _ in 0..(d.throttle_levels + 10) {
            t.observe_and_step(&d, Watts::new(200.0));
        }
        assert_eq!(t.level(), 1, "must keep one step of bandwidth");
        assert!(t.allowed_bandwidth(&d).value() > 0.0);
    }

    #[test]
    fn climbs_back_when_capped_traffic_subsides() {
        let d = dram();
        let cap = Watts::new(90.0);
        let mut t = DramThrottle::new(&d, cap, 1);
        for _ in 0..12 {
            t.observe_and_step(&d, Watts::new(120.0));
        }
        let low = t.level();
        assert!(low < d.throttle_levels);
        for _ in 0..64 {
            t.observe_and_step(&d, Watts::new(50.0));
        }
        assert!(t.level() > low);
        // The climb stops where the worst-case next level would break the cap.
        let next_bw = d.max_bandwidth * ((t.level() + 1).min(d.throttle_levels) as f64 / d.throttle_levels as f64);
        if t.level() < d.throttle_levels {
            assert!(d.power_at(next_bw, 1.0) > cap);
        }
    }

    #[test]
    fn closed_loop_power_settles_under_cap() {
        let d = dram();
        let cap = Watts::new(70.0);
        let mut t = DramThrottle::new(&d, cap, 4);
        // Closed loop: the workload always saturates whatever is allowed.
        let mut last_power = Watts::ZERO;
        for _ in 0..200 {
            let bw = t.allowed_bandwidth(&d);
            last_power = d.power_at(bw, 1.0);
            t.observe_and_step(&d, last_power);
        }
        assert!(last_power <= cap + Watts::new(1e-9), "settled at {last_power}");
        // And not absurdly far under: within two steps of the cap.
        let step_w = d.max_bandwidth.value() / d.throttle_levels as f64 * d.transfer_w_per_gbps;
        assert!(last_power.value() >= cap.value() - 2.5 * step_w);
    }
}
