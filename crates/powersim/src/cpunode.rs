//! Steady-state solver for a host node (CPU packages + DRAM) under RAPL
//! caps.
//!
//! ## Model
//!
//! For each workload phase, the solver finds the fixed point between three
//! coupled mechanisms:
//!
//! 1. **RAPL PKG capping** — pick the highest P-state whose package power
//!    (at the workload's *effective* switching activity) fits the cap; if
//!    even the lowest P-state doesn't fit, escalate to T-state clock
//!    modulation; if nothing fits, the cap is below the `P_cpu,L4` floor
//!    and is unenforceable (§3.3).
//! 2. **RAPL DRAM capping** — bandwidth throttling: the cap buys a
//!    bandwidth ceiling through the inverse power model, quantized to the
//!    throttle grid, floored at one throttle step (the system always makes
//!    progress; a cap under the background floor is disregarded).
//! 3. **Workload composition** — per unit of work (1 GFLOP), compute time
//!    `T_c = 1/(peak·eff·s)` and memory time `T_m = bytes/bw` combine as
//!    `T = ω·max(T_c,T_m) + (1−ω)(T_c+T_m)`. The achievable bandwidth
//!    itself degrades with processor speed: weakly under DVFS
//!    (`s_pstate^γ`, outstanding-miss concurrency is mostly
//!    frequency-independent) and proportionally under clock modulation
//!    (gated cycles issue nothing) — the asymmetry that makes scenario II
//!    gradual and scenario IV a collapse, exactly as the paper reports.
//!
//! The fixed point is on the activity factor: stalled cores switch less,
//! so the package power that RAPL must fit under the cap depends on the
//! stall fraction, which depends on the chosen state. Damped iteration
//! converges in a handful of steps for every workload in the suite.

use crate::demand::{PhaseDemand, WorkloadDemand};
use crate::operating::{CpuMechanismState, MechanismState, NodeOperatingPoint};
use pbc_platform::{CpuSpec, DramSpec};
use pbc_types::{Bandwidth, PowerAllocation, Watts};

/// Result of solving one phase.
#[derive(Debug, Clone, Copy)]
struct PhasePoint {
    /// Time per unit work (seconds per GFLOP).
    time: f64,
    /// Actual package power during the phase.
    cpu_power: Watts,
    /// Actual DRAM power during the phase.
    dram_power: Watts,
    /// Achieved raw bandwidth during the phase.
    bandwidth: Bandwidth,
    /// Compute-busy fraction.
    busy: f64,
    /// Mechanism state.
    state: CpuMechanismState,
}

/// The bandwidth ceiling a DRAM cap buys for a phase, floored at one
/// throttle step so execution always progresses (caps below the background
/// floor are disregarded by the hardware, §3.3).
pub(crate) fn dram_bw_ceiling(dram: &DramSpec, cap: Watts, pattern_cost: f64) -> Bandwidth {
    let step = dram.max_bandwidth / dram.throttle_levels.max(1) as f64;
    dram.bandwidth_under_cap(cap, pattern_cost).max(step)
}

/// Pick `(pstate index, duty, unenforceable)` for a package cap at a given
/// effective activity: the RAPL escalation ladder.
fn rapl_pick_state(cpu: &CpuSpec, cap: Watts, activity: f64) -> (usize, f64, bool) {
    let n = cpu.pstates.len();
    // P-states, highest frequency first.
    for i in (0..n).rev() {
        let st = cpu.pstates.get(i).unwrap();
        if cpu.power_at(st, activity) <= cap {
            return (i, 1.0, false);
        }
    }
    // T-states at the lowest P-state, lightest throttle first.
    let lowest = cpu.pstates.lowest();
    for &duty in &cpu.tstate_duties {
        if cpu.power_at_duty(lowest, duty, activity) <= cap {
            return (0, duty, false);
        }
    }
    // Even the deepest throttle (whose power floors at P_cpu,L4) exceeds
    // the cap: unenforceable, run at the floor.
    let duty = cpu.min_duty();
    (0, duty, true)
}

/// Execution-time composition for a phase at processor speed factors
/// `(s_pstate, duty)` and a bandwidth ceiling. Returns
/// `(time-per-GFLOP, busy fraction, achieved bandwidth)`.
pub(crate) fn compose(
    phase: &PhaseDemand,
    peak_gflops: f64,
    max_bw: Bandwidth,
    s_pstate: f64,
    duty: f64,
    bw_cap: Bandwidth,
) -> (f64, f64, Bandwidth) {
    let s = s_pstate * duty;
    let t_c = 1.0 / (peak_gflops * phase.compute_efficiency * s);
    // Bytes of raw traffic per GFLOP of work, in GB.
    let bytes_gb = 1.0 / phase.arithmetic_intensity;
    // The phase's own ceiling: concurrency-limited fraction of peak,
    // degraded weakly by DVFS and proportionally by clock gating.
    let phase_bw = max_bw.value()
        * phase.bw_saturation
        * s_pstate.powf(phase.issue_sensitivity)
        * duty;
    let bw = phase_bw.min(bw_cap.value()).max(1e-9);
    let t_m = bytes_gb / bw;
    let w = phase.overlap;
    let t = w * t_c.max(t_m) + (1.0 - w) * (t_c + t_m);
    let busy = (t_c / t).clamp(0.0, 1.0);
    let bw_used = Bandwidth::new(bytes_gb / t);
    (t, busy, bw_used)
}

/// Solve one phase under the caps via damped fixed-point iteration on the
/// activity factor.
fn solve_phase(
    cpu: &CpuSpec,
    dram: &DramSpec,
    phase: &PhaseDemand,
    alloc: PowerAllocation,
) -> PhasePoint {
    let bw_cap = dram_bw_ceiling(dram, alloc.mem, phase.pattern_cost);
    let peak = cpu.peak_gflops();
    let nominal = *cpu.pstates.nominal();

    let mut activity = phase.act_compute;
    for _ in 0..32 {
        let picked = rapl_pick_state(cpu, alloc.proc, activity);
        let (idx, duty, _) = picked;
        let st = cpu.pstates.get(idx).unwrap();
        let s_pstate = st.speed(&nominal);
        let composed = compose(phase, peak, dram.max_bandwidth, s_pstate, duty, bw_cap);
        let busy = composed.1;
        let next = phase.act_compute * busy + phase.act_stall * (1.0 - busy);
        if (next - activity).abs() < 1e-9 {
            activity = next;
            break;
        }
        activity = 0.5 * activity + 0.5 * next;
    }
    // Recompute with the converged activity so the reported state and
    // power are mutually consistent even if the loop hit its bound.
    let picked = rapl_pick_state(cpu, alloc.proc, activity);
    let (idx, duty, unenforceable) = picked;
    let composed = {
        let st = cpu.pstates.get(idx).unwrap();
        compose(phase, peak, dram.max_bandwidth, st.speed(&nominal), duty, bw_cap)
    };
    let st = cpu.pstates.get(idx).unwrap();
    let (time, busy, bw_used) = composed;
    let cpu_power = cpu.power_at_duty(st, duty, activity);
    let dram_power = dram.power_at(bw_used, phase.pattern_cost);
    PhasePoint {
        time,
        cpu_power,
        dram_power,
        bandwidth: bw_used,
        busy,
        state: CpuMechanismState {
            pstate: idx,
            duty,
            cap_unenforceable: unenforceable,
        },
    }
}

/// An allocation generous enough that nothing is constrained — used to
/// compute the nominal (unconstrained) execution time that `perf_rel`
/// normalizes against.
pub(crate) fn unconstrained_alloc(cpu: &CpuSpec, dram: &DramSpec) -> PowerAllocation {
    PowerAllocation::new(
        cpu.max_power(1.0) + Watts::new(10.0),
        dram.max_power(4.0) + Watts::new(10.0),
    )
}

/// Run every phase at one allocation and time-weight the results.
fn run_phases(
    cpu: &CpuSpec,
    dram: &DramSpec,
    demand: &WorkloadDemand,
    weights: &[f64],
    alloc: PowerAllocation,
) -> (f64, Vec<PhasePoint>) {
    let points: Vec<PhasePoint> = demand
        .phases
        .iter()
        .map(|(_, p)| solve_phase(cpu, dram, p, alloc))
        .collect();
    let total: f64 = weights.iter().zip(&points).map(|(w, pt)| w * pt.time).sum();
    (total, points)
}

/// The nominal (unconstrained) execution time that `perf_rel` normalizes
/// against. Depends only on `(cpu, dram, demand)` — never on the
/// allocation — so callers solving many allocations of the same problem
/// (the memo, the shared-grid oracle) compute it once.
pub(crate) fn nominal_time(cpu: &CpuSpec, dram: &DramSpec, demand: &WorkloadDemand) -> f64 {
    let weights = demand.normalized_weights();
    run_phases(cpu, dram, demand, &weights, unconstrained_alloc(cpu, dram)).0
}

/// Solve the steady-state operating point of a host node running
/// `demand` under the allocation `alloc`.
///
/// The returned [`NodeOperatingPoint::perf_rel`] is normalized to the same
/// workload on the same platform with unconstrained power, so 1.0 always
/// means "no slowdown from capping".
pub fn solve_cpu(
    cpu: &CpuSpec,
    dram: &DramSpec,
    demand: &WorkloadDemand,
    alloc: PowerAllocation,
) -> NodeOperatingPoint {
    solve_cpu_with_nominal(cpu, dram, demand, alloc, nominal_time(cpu, dram, demand))
}

/// [`solve_cpu`] with the nominal time precomputed by [`nominal_time`] —
/// the hot path for memoized multi-allocation solving. Bit-identical to
/// `solve_cpu` when `t_nominal` comes from the same `(cpu, dram, demand)`.
pub(crate) fn solve_cpu_with_nominal(
    cpu: &CpuSpec,
    dram: &DramSpec,
    demand: &WorkloadDemand,
    alloc: PowerAllocation,
    t_nominal: f64,
) -> NodeOperatingPoint {
    let weights = demand.normalized_weights();
    let (t_capped, points) = run_phases(cpu, dram, demand, &weights, alloc);

    // Time-weighted averages over phases.
    let mut cpu_power = 0.0;
    let mut dram_power = 0.0;
    let mut bw = 0.0;
    let mut busy = 0.0;
    for (w, pt) in weights.iter().zip(&points) {
        let frac = if t_capped > 0.0 { w * pt.time / t_capped } else { 0.0 };
        cpu_power += frac * pt.cpu_power.value();
        dram_power += frac * pt.dram_power.value();
        bw += frac * pt.bandwidth.value();
        busy += frac * pt.busy;
    }
    // Report the state of the dominant (longest-running) phase.
    let dominant = weights
        .iter()
        .zip(&points)
        .max_by(|a, b| {
            (a.0 * a.1.time)
                .partial_cmp(&(b.0 * b.1.time))
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .map(|(_, pt)| pt.state)
        .unwrap_or(CpuMechanismState {
            pstate: cpu.pstates.len() - 1,
            duty: 1.0,
            cap_unenforceable: false,
        });

    NodeOperatingPoint {
        alloc,
        perf_rel: if t_capped > 0.0 { t_nominal / t_capped } else { 0.0 },
        proc_power: Watts::new(cpu_power),
        mem_power: Watts::new(dram_power),
        work_rate: if t_capped > 0.0 { 1.0 / t_capped } else { 0.0 },
        bandwidth: Bandwidth::new(bw),
        proc_busy: busy,
        mechanism: MechanismState::Cpu(dominant),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::PhaseDemand;
    use pbc_platform::presets::ivybridge;

    fn node() -> (CpuSpec, DramSpec) {
        let p = ivybridge();
        (p.cpu().unwrap().clone(), p.dram().unwrap().clone())
    }

    fn generous() -> PowerAllocation {
        PowerAllocation::new(Watts::new(250.0), Watts::new(250.0))
    }

    #[test]
    fn unconstrained_perf_is_one() {
        let (cpu, dram) = node();
        for phase in [
            PhaseDemand::compute_bound(),
            PhaseDemand::stream_bound(),
            PhaseDemand::random_bound(),
        ] {
            let w = WorkloadDemand::single("w", phase);
            let op = solve_cpu(&cpu, &dram, &w, generous());
            assert!((op.perf_rel - 1.0).abs() < 1e-9, "{} perf {}", w.name, op.perf_rel);
            assert!(op.respects_bound());
        }
    }

    #[test]
    fn perf_monotone_in_cpu_cap() {
        let (cpu, dram) = node();
        let w = WorkloadDemand::single("dgemm", PhaseDemand::compute_bound());
        let mut last = 0.0;
        for cap in (48..=200).step_by(4) {
            let op = solve_cpu(
                &cpu,
                &dram,
                &w,
                PowerAllocation::new(Watts::new(cap as f64), Watts::new(200.0)),
            );
            assert!(
                op.perf_rel >= last - 1e-6,
                "perf must not fall as the CPU cap rises: cap={cap} perf={} last={last}",
                op.perf_rel
            );
            last = op.perf_rel;
        }
        assert!(last > 0.99, "generous cap must reach full performance");
    }

    #[test]
    fn perf_monotone_in_mem_cap() {
        let (cpu, dram) = node();
        let w = WorkloadDemand::single("stream", PhaseDemand::stream_bound());
        let mut last = 0.0;
        for cap in (40..=140).step_by(4) {
            let op = solve_cpu(
                &cpu,
                &dram,
                &w,
                PowerAllocation::new(Watts::new(200.0), Watts::new(cap as f64)),
            );
            assert!(op.perf_rel >= last - 1e-6, "cap={cap}");
            last = op.perf_rel;
        }
        assert!(last > 0.99);
    }

    #[test]
    fn caps_are_respected_when_enforceable() {
        let (cpu, dram) = node();
        for phase in [
            PhaseDemand::compute_bound(),
            PhaseDemand::stream_bound(),
            PhaseDemand::random_bound(),
        ] {
            let w = WorkloadDemand::single("w", phase);
            // The DRAM floor: background plus one throttle step of traffic
            // at this phase's pattern cost. Caps below it are disregarded
            // by the hardware (§3.3), so enforcement is only promised above.
            let step = dram.max_bandwidth / dram.throttle_levels as f64;
            let mem_floor = dram.power_at(step, phase.pattern_cost);
            for pc in (50..=200).step_by(10) {
                for pm in (42..=160).step_by(8) {
                    let alloc =
                        PowerAllocation::new(Watts::new(pc as f64), Watts::new(pm as f64));
                    let op = solve_cpu(&cpu, &dram, &w, alloc);
                    assert!(
                        op.proc_power.value() <= pc as f64 + 1e-6,
                        "CPU cap {pc} violated: {}",
                        op.proc_power
                    );
                    assert!(
                        op.mem_power.value() <= (pm as f64).max(mem_floor.value()) + 1e-6,
                        "DRAM cap {pm} violated: {}",
                        op.mem_power
                    );
                }
            }
        }
    }

    #[test]
    fn cap_below_floor_is_unenforceable() {
        let (cpu, dram) = node();
        let w = WorkloadDemand::single("sra", PhaseDemand::random_bound());
        let op = solve_cpu(
            &cpu,
            &dram,
            &w,
            PowerAllocation::new(Watts::new(30.0), Watts::new(200.0)),
        );
        // The paper's scenario VI: the package still draws its 48 W floor.
        assert!((op.proc_power.value() - 48.0).abs() < 1e-6);
        match op.mechanism {
            MechanismState::Cpu(st) => assert!(st.cap_unenforceable),
            _ => panic!("expected CPU mechanism"),
        }
        assert!(!op.respects_bound() || op.alloc.total().value() >= op.total_power().value());
    }

    #[test]
    fn mem_cap_below_background_is_disregarded() {
        let (cpu, dram) = node();
        let w = WorkloadDemand::single("stream", PhaseDemand::stream_bound());
        let op = solve_cpu(
            &cpu,
            &dram,
            &w,
            PowerAllocation::new(Watts::new(150.0), Watts::new(20.0)),
        );
        // DRAM draws at least its background floor plus one throttle step
        // of traffic, despite the 20 W cap.
        assert!(op.mem_power.value() > 20.0);
        // And performance collapses to the throttle floor.
        assert!(op.perf_rel < 0.1);
    }

    #[test]
    fn random_access_unconstrained_draw_matches_paper_anchor() {
        // The paper reports 112 W CPU / 116 W DRAM for RandomAccess on the
        // IvyBridge node in scenario I. The calibrated SRA parameters live
        // in pbc-workloads; the generic random_bound phase here must land
        // in the same region (±15 W) to keep the categorization shapes.
        let (cpu, dram) = node();
        let w = WorkloadDemand::single("sra", PhaseDemand::random_bound());
        let op = solve_cpu(&cpu, &dram, &w, generous());
        assert!(
            (op.proc_power.value() - 112.0).abs() < 25.0,
            "CPU draw {} too far from the 112 W anchor",
            op.proc_power
        );
        assert!(
            (op.mem_power.value() - 116.0).abs() < 25.0,
            "DRAM draw {} too far from the 116 W anchor",
            op.mem_power
        );
    }

    #[test]
    fn dvfs_region_is_gradual_tstate_region_is_sharp() {
        let (cpu, dram) = node();
        let w = WorkloadDemand::single("sra", PhaseDemand::random_bound());
        let at = |cap: f64| {
            solve_cpu(
                &cpu,
                &dram,
                &w,
                PowerAllocation::new(Watts::new(cap), Watts::new(200.0)),
            )
            .perf_rel
        };
        let full = at(200.0);
        let lowest_pstate = at(70.0); // P-state region bottom
        let throttled = at(52.0); // T-state territory
        // Gradual: DVFS keeps most of the latency-bound performance.
        assert!(lowest_pstate > 0.7 * full, "DVFS too damaging: {lowest_pstate} vs {full}");
        // Sharp: clock modulation collapses it.
        assert!(throttled < 0.75 * lowest_pstate, "T-state drop too mild: {throttled} vs {lowest_pstate}");
    }

    #[test]
    fn memory_capped_cpu_draws_less_than_max() {
        // Scenario III: CPU uncapped but stalled on throttled memory draws
        // noticeably less than its own maximum demand.
        let (cpu, dram) = node();
        let w = WorkloadDemand::single("stream", PhaseDemand::stream_bound());
        let free = solve_cpu(&cpu, &dram, &w, generous());
        let starved = solve_cpu(
            &cpu,
            &dram,
            &w,
            PowerAllocation::new(Watts::new(250.0), Watts::new(48.0)),
        );
        assert!(starved.proc_power < free.proc_power);
        assert!(starved.proc_busy < free.proc_busy);
    }

    #[test]
    fn multiphase_time_weighted_composition() {
        let (cpu, dram) = node();
        let mixed = WorkloadDemand::phased(
            "bt-like",
            vec![
                (0.7, PhaseDemand::compute_bound()),
                (0.3, PhaseDemand::stream_bound()),
            ],
        );
        let op = solve_cpu(&cpu, &dram, &mixed, generous());
        assert!((op.perf_rel - 1.0).abs() < 1e-9);
        // Power sits between the two pure phases' draws.
        let c = solve_cpu(
            &cpu,
            &dram,
            &WorkloadDemand::single("c", PhaseDemand::compute_bound()),
            generous(),
        );
        let s = solve_cpu(
            &cpu,
            &dram,
            &WorkloadDemand::single("s", PhaseDemand::stream_bound()),
            generous(),
        );
        let lo = c.proc_power.min(s.proc_power);
        let hi = c.proc_power.max(s.proc_power);
        assert!(op.proc_power >= lo && op.proc_power <= hi);
    }

    #[test]
    fn bandwidth_never_exceeds_hardware_peak() {
        let (cpu, dram) = node();
        let w = WorkloadDemand::single("stream", PhaseDemand::stream_bound());
        let op = solve_cpu(&cpu, &dram, &w, generous());
        assert!(op.bandwidth <= dram.max_bandwidth);
        assert!(op.bandwidth.value() > 0.5 * dram.max_bandwidth.value());
    }
}
