//! A first-order RC thermal model with leakage feedback.
//!
//! The paper's motivation (§1) includes thermal limits: "cooling devices
//! and facilities ... set the ceiling of permissible power density". For
//! the discrete-time engine we model die temperature as a single thermal
//! RC node driven by dissipated power, and feed temperature back into
//! leakage (leakage current grows roughly linearly with temperature over
//! the operating range — the small positive feedback that makes sustained
//! power capping slightly harder at high ambient).

use pbc_types::{Seconds, Watts};

/// Parameters of the RC node.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ThermalParams {
    /// Ambient temperature in °C.
    pub ambient_c: f64,
    /// Thermal resistance junction→ambient, °C per watt.
    pub resistance_c_per_w: f64,
    /// Thermal time constant, seconds.
    pub time_constant: Seconds,
    /// Leakage increase per °C above the reference temperature
    /// (fractional, e.g. 0.002 = +0.2 %/°C).
    pub leakage_per_c: f64,
    /// Temperature at which the spec's nominal leakage was calibrated.
    pub reference_c: f64,
    /// Thermal throttle trip point, °C (e.g. PROCHOT).
    pub trip_c: f64,
}

impl ThermalParams {
    /// A typical air-cooled server package.
    pub fn server_default() -> Self {
        Self {
            ambient_c: 25.0,
            resistance_c_per_w: 0.25,
            time_constant: Seconds::new(8.0),
            leakage_per_c: 0.004,
            reference_c: 60.0,
            trip_c: 95.0,
        }
    }
}

/// State of the thermal node.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ThermalModel {
    params: ThermalParams,
    temperature_c: f64,
}

impl ThermalModel {
    /// Start at ambient.
    pub fn new(params: ThermalParams) -> Self {
        Self {
            temperature_c: params.ambient_c,
            params,
        }
    }

    /// Current junction temperature, °C.
    pub fn temperature_c(&self) -> f64 {
        self.temperature_c
    }

    /// Steady-state temperature for a sustained power.
    pub fn steady_state_c(&self, power: Watts) -> f64 {
        self.params.ambient_c + self.params.resistance_c_per_w * power.value()
    }

    /// Advance the node by `dt` under dissipation `power` (explicit Euler,
    /// stable for `dt ≪ time_constant`).
    pub fn step(&mut self, power: Watts, dt: Seconds) {
        let target = self.steady_state_c(power);
        let tau = self.params.time_constant.value().max(1e-9);
        let alpha = (dt.value() / tau).min(1.0);
        self.temperature_c += alpha * (target - self.temperature_c);
    }

    /// Multiplier to apply to the spec's nominal leakage at the current
    /// temperature (1.0 at the reference temperature; never below 0.5).
    pub fn leakage_multiplier(&self) -> f64 {
        (1.0 + self.params.leakage_per_c * (self.temperature_c - self.params.reference_c)).max(0.5)
    }

    /// Is the junction at or above the thermal trip point?
    pub fn tripped(&self) -> bool {
        self.temperature_c >= self.params.trip_c
    }

    /// The configured trip point, °C.
    pub fn trip_c(&self) -> f64 {
        self.params.trip_c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warms_toward_steady_state() {
        let mut m = ThermalModel::new(ThermalParams::server_default());
        let p = Watts::new(160.0);
        let target = m.steady_state_c(p); // 25 + 0.25*160 = 65 °C
        assert!((target - 65.0).abs() < 1e-9);
        for _ in 0..1000 {
            m.step(p, Seconds::new(0.1));
        }
        assert!((m.temperature_c() - target).abs() < 0.5);
    }

    #[test]
    fn cools_when_power_drops() {
        let mut m = ThermalModel::new(ThermalParams::server_default());
        for _ in 0..1000 {
            m.step(Watts::new(200.0), Seconds::new(0.1));
        }
        let hot = m.temperature_c();
        for _ in 0..1000 {
            m.step(Watts::new(48.0), Seconds::new(0.1));
        }
        assert!(m.temperature_c() < hot);
        assert!((m.temperature_c() - m.steady_state_c(Watts::new(48.0))).abs() < 0.5);
    }

    #[test]
    fn leakage_feedback_sign() {
        let mut m = ThermalModel::new(ThermalParams::server_default());
        // At ambient (25°C, below the 60°C reference) leakage is reduced.
        assert!(m.leakage_multiplier() < 1.0);
        for _ in 0..2000 {
            m.step(Watts::new(220.0), Seconds::new(0.1));
        }
        // Hot die leaks more.
        assert!(m.leakage_multiplier() > 1.0);
    }

    #[test]
    fn trip_point() {
        let mut m = ThermalModel::new(ThermalParams {
            trip_c: 80.0,
            ..ThermalParams::server_default()
        });
        assert!(!m.tripped());
        for _ in 0..2000 {
            m.step(Watts::new(300.0), Seconds::new(0.1));
        }
        // 25 + 0.25*300 = 100 °C > 80 °C trip.
        assert!(m.tripped());
    }

    #[test]
    fn big_dt_is_stable() {
        let mut m = ThermalModel::new(ThermalParams::server_default());
        // dt larger than tau clamps alpha at 1 — jumps straight to target,
        // never overshoots or oscillates.
        m.step(Watts::new(160.0), Seconds::new(100.0));
        assert!((m.temperature_c() - 65.0).abs() < 1e-9);
        m.step(Watts::new(160.0), Seconds::new(100.0));
        assert!((m.temperature_c() - 65.0).abs() < 1e-9);
    }
}
