//! The solver output contract: a node's steady-state operating point under
//! a given workload and cross-component power allocation.

use pbc_types::{Bandwidth, PowerAllocation, Watts};

/// Mechanism state chosen by the RAPL PKG controller.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CpuMechanismState {
    /// Selected P-state index (0 = lowest frequency).
    pub pstate: usize,
    /// T-state duty cycle in `(0, 1]`; 1.0 = no clock modulation.
    pub duty: f64,
    /// Whether the package cap was below the `P_cpu,L4` floor and is
    /// therefore not enforceable (the paper's scenario VI).
    pub cap_unenforceable: bool,
}

/// Mechanism state chosen by the GPU card capper.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GpuMechanismState {
    /// Selected SM clock index (0 = lowest).
    pub sm_clock: usize,
    /// Selected memory clock level index (0 = lowest).
    pub mem_level: usize,
    /// Watts of unused memory allocation the card governor shifted back to
    /// the SM domain (0 when `reclaims_unused` is off).
    pub reclaimed: Watts,
}

/// Which capping mechanism produced this operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum MechanismState {
    /// Host node: RAPL PKG + DRAM domains.
    Cpu(CpuMechanismState),
    /// GPU card: SM + memory clock domains under the card capper.
    Gpu(GpuMechanismState),
}

/// The steady-state result of running a workload under an allocation.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NodeOperatingPoint {
    /// The allocation that was applied.
    pub alloc: PowerAllocation,
    /// Throughput relative to the unconstrained run on the same platform
    /// (1.0 = no slowdown). The workload's absolute rate in its natural
    /// unit is `nominal_rate * perf_rel` (the workload crate holds the
    /// nominal rates).
    pub perf_rel: f64,
    /// Actual power drawn by the processing component.
    pub proc_power: Watts,
    /// Actual power drawn by the memory component.
    pub mem_power: Watts,
    /// Absolute work rate in GFLOP/s of workload progress (the natural
    /// units a benchmark reports in are derived from this plus
    /// `bandwidth`).
    pub work_rate: f64,
    /// Achieved memory bandwidth (raw traffic, before pattern cost).
    pub bandwidth: Bandwidth,
    /// Fraction of time the processor spends executing (vs stalled).
    pub proc_busy: f64,
    /// Mechanism state behind this point.
    pub mechanism: MechanismState,
}

impl NodeOperatingPoint {
    /// Total actual node power.
    pub fn total_power(&self) -> Watts {
        self.proc_power + self.mem_power
    }

    /// Power allocated but not consumed — the waste the paper's fourth
    /// motivating observation calls out ("the provisioned power budget
    /// could be fully consumed even if the delivered performance is very
    /// poor", and conversely budget can go unused).
    pub fn unused_power(&self) -> Watts {
        (self.alloc.total() - self.total_power()).max(Watts::ZERO)
    }

    /// Does the actual draw respect the allocation's total? False only in
    /// the paper's scenario VI, where the processor cap fell below the
    /// hardware floor.
    pub fn respects_bound(&self) -> bool {
        self.total_power().value() <= self.alloc.total().value() + 1e-6
    }

    /// Relative performance per watt of *actual* draw.
    pub fn efficiency(&self) -> f64 {
        let p = self.total_power().value();
        if p > 0.0 {
            self.perf_rel / p
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(perf: f64, proc: f64, mem: f64, alloc: (f64, f64)) -> NodeOperatingPoint {
        NodeOperatingPoint {
            alloc: PowerAllocation::new(Watts::new(alloc.0), Watts::new(alloc.1)),
            perf_rel: perf,
            proc_power: Watts::new(proc),
            mem_power: Watts::new(mem),
            work_rate: perf * 100.0,
            bandwidth: Bandwidth::new(40.0),
            proc_busy: 0.8,
            mechanism: MechanismState::Cpu(CpuMechanismState {
                pstate: 3,
                duty: 1.0,
                cap_unenforceable: false,
            }),
        }
    }

    #[test]
    fn totals_and_waste() {
        let p = point(0.9, 100.0, 90.0, (120.0, 120.0));
        assert_eq!(p.total_power().value(), 190.0);
        assert_eq!(p.unused_power().value(), 50.0);
        assert!(p.respects_bound());
    }

    #[test]
    fn bound_violation_detected() {
        // Scenario VI shape: floor power exceeds the tiny allocation.
        let p = point(0.1, 48.0, 100.0, (30.0, 100.0));
        assert!(!p.respects_bound());
        assert_eq!(p.unused_power(), Watts::ZERO);
    }

    #[test]
    fn efficiency() {
        let p = point(0.5, 50.0, 50.0, (60.0, 60.0));
        assert!((p.efficiency() - 0.005).abs() < 1e-12);
    }
}
