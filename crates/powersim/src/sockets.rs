//! Per-socket power coordination under workload imbalance — the paper's
//! §2.2 future work ("We leave the investigation of unbalanced workloads
//! and hybrid computing in our future work").
//!
//! The paper's assumption (b) aggregates all sockets into one component
//! with the budget "evenly distributed to all cores" — exact for balanced
//! SPMD workloads. This module drops that assumption: a node's sockets
//! each get their own RAPL cap, the workload places a *share* of the work
//! on each socket, and the sockets synchronize at barriers (MPI/OpenMP
//! semantics), so node performance is set by the slowest socket.
//!
//! The punchline mirrors the paper's node-level one, a level down: under
//! imbalance, an even per-socket split strands watts on the lightly
//! loaded socket while the loaded one throttles; shifting those watts
//! recovers the barrier time. [`coordinate_sockets`] finds that split.

use crate::cpunode::solve_cpu;
use crate::demand::WorkloadDemand;
use pbc_platform::{CpuSpec, DramSpec};
use pbc_types::{PbcError, PowerAllocation, Result, Watts};

/// Build the spec of a single socket from an aggregated multi-socket spec
/// (power coefficients and core counts divide; tables are shared).
pub fn single_socket_spec(cpu: &CpuSpec) -> CpuSpec {
    let n = cpu.sockets.max(1) as f64;
    CpuSpec {
        name: format!("{} (one socket)", cpu.name),
        sockets: 1,
        cores_per_socket: cpu.cores_per_socket,
        pstates: cpu.pstates.clone(),
        tstate_duties: cpu.tstate_duties.clone(),
        leakage_nominal: cpu.leakage_nominal / n,
        dyn_power_max: cpu.dyn_power_max / n,
        min_active_power: cpu.min_active_power / n,
        core_gflops_nominal: cpu.core_gflops_nominal,
    }
}

/// The outcome of running an imbalanced workload under per-socket caps.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SocketOperatingPoint {
    /// Per-socket caps applied.
    pub socket_caps: Vec<Watts>,
    /// Work share per socket (normalized).
    pub shares: Vec<f64>,
    /// Relative node performance (barrier-synchronized: the slowest
    /// socket's share sets the pace), normalized to the balanced
    /// unconstrained run.
    pub perf_rel: f64,
    /// Per-socket actual package powers.
    pub socket_powers: Vec<Watts>,
    /// DRAM actual power.
    pub mem_power: Watts,
    /// Index of the pacing (slowest) socket.
    pub critical_socket: usize,
}

impl SocketOperatingPoint {
    /// Total node power.
    pub fn total_power(&self) -> Watts {
        self.socket_powers.iter().copied().sum::<Watts>() + self.mem_power
    }
}

/// Solve a barrier-synchronized run with explicit per-socket caps and
/// work shares. The DRAM cap is shared; each socket's traffic allowance
/// is proportional to its share.
pub fn solve_per_socket(
    cpu: &CpuSpec,
    dram: &DramSpec,
    demand: &WorkloadDemand,
    socket_caps: &[Watts],
    mem_cap: Watts,
    shares: &[f64],
) -> Result<SocketOperatingPoint> {
    if socket_caps.len() != cpu.sockets as usize {
        return Err(PbcError::InvalidInput(format!(
            "{} caps for {} sockets",
            socket_caps.len(),
            cpu.sockets
        )));
    }
    if shares.len() != socket_caps.len() {
        return Err(PbcError::InvalidInput("one share per socket required".into()));
    }
    let total_share: f64 = shares.iter().sum();
    if !(total_share > 0.0 && shares.iter().all(|s| *s >= 0.0)) {
        return Err(PbcError::InvalidInput("shares must be non-negative, not all zero".into()));
    }
    let shares: Vec<f64> = shares.iter().map(|s| s / total_share).collect();
    let socket = single_socket_spec(cpu);
    let n = socket_caps.len();

    // A socket's DRAM slice scales with its share of the traffic. Scale
    // the spec's bandwidth and background so the per-socket sub-problem
    // sees its slice of the shared memory system.
    let mut times = Vec::with_capacity(n);
    let mut powers = Vec::with_capacity(n);
    let mut mem_power = Watts::ZERO;
    for (i, (&cap, &share)) in socket_caps.iter().zip(&shares).enumerate() {
        if pbc_types::is_zero(share) {
            // Idle socket: draws its floor, does no work.
            times.push(0.0);
            powers.push(socket.min_active_power);
            let _ = i;
            continue;
        }
        let slice = DramSpec {
            name: dram.name.clone(),
            technology: dram.technology,
            capacity_gb: dram.capacity_gb,
            background_power: dram.background_power * share,
            max_bandwidth: dram.max_bandwidth * share,
            transfer_w_per_gbps: dram.transfer_w_per_gbps,
            throttle_levels: dram.throttle_levels,
        };
        let op = solve_cpu(
            &socket,
            &slice,
            demand,
            PowerAllocation::new(cap, mem_cap * share),
        );
        // Time for this socket to finish its share of one unit of work:
        // share / rate.
        times.push(share / op.work_rate.max(1e-12));
        powers.push(op.proc_power);
        mem_power += op.mem_power;
    }

    // Barrier semantics: the node finishes when the slowest socket does.
    let (critical_socket, &t_max) = times
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .expect("at least one socket");

    // Nominal reference: balanced shares, unconstrained caps.
    let balanced = vec![1.0 / n as f64; n];
    let generous = cpu.max_power(1.0) + Watts::new(50.0);
    let generous_mem = dram.max_power(4.0) + Watts::new(50.0);
    let slice = DramSpec {
        name: dram.name.clone(),
        technology: dram.technology,
        capacity_gb: dram.capacity_gb,
        background_power: dram.background_power * balanced[0],
        max_bandwidth: dram.max_bandwidth * balanced[0],
        transfer_w_per_gbps: dram.transfer_w_per_gbps,
        throttle_levels: dram.throttle_levels,
    };
    let free = solve_cpu(
        &socket,
        &slice,
        demand,
        PowerAllocation::new(generous, generous_mem * balanced[0]),
    );
    let t_nominal = balanced[0] / free.work_rate.max(1e-12);

    Ok(SocketOperatingPoint {
        socket_caps: socket_caps.to_vec(),
        shares,
        perf_rel: (t_nominal / t_max).min(1.0),
        socket_powers: powers,
        mem_power,
        critical_socket,
    })
}

/// Find the best split of a total processor budget across sockets for a
/// given imbalance, by golden-section-style grid refinement on the
/// two-socket case (the common dual-socket node; more sockets fall back
/// to proportional-to-share).
pub fn coordinate_sockets(
    cpu: &CpuSpec,
    dram: &DramSpec,
    demand: &WorkloadDemand,
    proc_budget: Watts,
    mem_cap: Watts,
    shares: &[f64],
) -> Result<SocketOperatingPoint> {
    let n = cpu.sockets as usize;
    if shares.len() != n {
        return Err(PbcError::InvalidInput("one share per socket required".into()));
    }
    if n != 2 {
        // Proportional fallback: cap_i ∝ share_i, floored at the socket
        // minimum.
        let total: f64 = shares.iter().sum();
        let floor = single_socket_spec(cpu).min_active_power;
        let caps: Vec<Watts> = shares
            .iter()
            .map(|s| (proc_budget * (s / total)).max(floor))
            .collect();
        return solve_per_socket(cpu, dram, demand, &caps, mem_cap, shares);
    }
    // Two sockets: scan the split fraction on a fine grid.
    let floor = single_socket_spec(cpu).min_active_power;
    let mut best: Option<SocketOperatingPoint> = None;
    let steps = 40;
    for k in 0..=steps {
        let f = k as f64 / steps as f64;
        // The two caps sum to `proc_budget` by construction; a budget
        // below twice the socket floor yields caps that
        // `solve_per_socket` rejects, rather than being masked here.
        // pbc-lint: allow(unchecked-budget-arith)
        let c0 = (proc_budget * f).max(floor).min(proc_budget - floor);
        // pbc-lint: allow(unchecked-budget-arith)
        let caps = [c0, proc_budget - c0];
        let op = solve_per_socket(cpu, dram, demand, &caps, mem_cap, shares)?;
        if best.as_ref().map(|b| op.perf_rel > b.perf_rel).unwrap_or(true) {
            best = Some(op);
        }
    }
    Ok(best.expect("grid is non-empty"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::PhaseDemand;
    use pbc_platform::presets::ivybridge;

    fn node() -> (CpuSpec, DramSpec) {
        let p = ivybridge();
        (p.cpu().unwrap().clone(), p.dram().unwrap().clone())
    }

    #[test]
    fn single_socket_spec_halves_power() {
        let (cpu, _) = node();
        let s = single_socket_spec(&cpu);
        assert_eq!(s.sockets, 1);
        assert!((s.leakage_nominal.value() - cpu.leakage_nominal.value() / 2.0).abs() < 1e-9);
        assert!((s.min_active_power.value() - 24.0).abs() < 1e-9);
        assert_eq!(s.validate(), Ok(()));
    }

    #[test]
    fn balanced_shares_match_aggregate_model() {
        // With balanced shares and an even split, the per-socket model
        // agrees with the aggregated solver within a few percent.
        let (cpu, dram) = node();
        let w = WorkloadDemand::single("dgemm", PhaseDemand::compute_bound());
        let aggregate = solve_cpu(
            &cpu,
            &dram,
            &w,
            PowerAllocation::new(Watts::new(140.0), Watts::new(80.0)),
        );
        let per_socket = solve_per_socket(
            &cpu,
            &dram,
            &w,
            &[Watts::new(70.0), Watts::new(70.0)],
            Watts::new(80.0),
            &[0.5, 0.5],
        )
        .unwrap();
        let rel = (per_socket.perf_rel - aggregate.perf_rel).abs() / aggregate.perf_rel;
        assert!(
            rel < 0.05,
            "per-socket {} vs aggregate {}",
            per_socket.perf_rel,
            aggregate.perf_rel
        );
    }

    #[test]
    fn imbalance_hurts_under_even_caps() {
        let (cpu, dram) = node();
        let w = WorkloadDemand::single("dgemm", PhaseDemand::compute_bound());
        let even_caps = [Watts::new(60.0), Watts::new(60.0)];
        let balanced =
            solve_per_socket(&cpu, &dram, &w, &even_caps, Watts::new(80.0), &[0.5, 0.5])
                .unwrap();
        let skewed =
            solve_per_socket(&cpu, &dram, &w, &even_caps, Watts::new(80.0), &[0.7, 0.3])
                .unwrap();
        assert!(
            skewed.perf_rel < 0.85 * balanced.perf_rel,
            "imbalance must hurt: {} vs {}",
            skewed.perf_rel,
            balanced.perf_rel
        );
        // The loaded socket paces the node.
        assert_eq!(skewed.critical_socket, 0);
    }

    #[test]
    fn coordination_recovers_imbalance_loss() {
        let (cpu, dram) = node();
        let w = WorkloadDemand::single("dgemm", PhaseDemand::compute_bound());
        let shares = [0.7, 0.3];
        let budget = Watts::new(120.0);
        let even = solve_per_socket(
            &cpu,
            &dram,
            &w,
            &[budget / 2.0, budget / 2.0],
            Watts::new(80.0),
            &shares,
        )
        .unwrap();
        let coordinated =
            coordinate_sockets(&cpu, &dram, &w, budget, Watts::new(80.0), &shares).unwrap();
        assert!(
            coordinated.perf_rel > 1.15 * even.perf_rel,
            "coordinated {} vs even {}",
            coordinated.perf_rel,
            even.perf_rel
        );
        // The coordinated split gives the loaded socket the bigger cap.
        assert!(coordinated.socket_caps[0] > coordinated.socket_caps[1]);
        // And never exceeds the budget.
        let total: Watts = coordinated.socket_caps.iter().copied().sum();
        assert!(total.value() <= budget.value() + 1e-6);
    }

    #[test]
    fn coordination_is_neutral_when_balanced() {
        let (cpu, dram) = node();
        let w = WorkloadDemand::single("stream", PhaseDemand::stream_bound());
        let budget = Watts::new(120.0);
        let even = solve_per_socket(
            &cpu,
            &dram,
            &w,
            &[budget / 2.0, budget / 2.0],
            Watts::new(90.0),
            &[0.5, 0.5],
        )
        .unwrap();
        let coordinated =
            coordinate_sockets(&cpu, &dram, &w, budget, Watts::new(90.0), &[0.5, 0.5]).unwrap();
        // Nothing to recover: the coordinated result is the even split
        // (within grid resolution).
        assert!((coordinated.perf_rel - even.perf_rel).abs() < 0.02);
    }

    #[test]
    fn idle_socket_draws_only_its_floor() {
        let (cpu, dram) = node();
        let w = WorkloadDemand::single("cg", PhaseDemand::random_bound());
        let op = solve_per_socket(
            &cpu,
            &dram,
            &w,
            &[Watts::new(100.0), Watts::new(100.0)],
            Watts::new(100.0),
            &[1.0, 0.0],
        )
        .unwrap();
        assert!((op.socket_powers[1].value() - 24.0).abs() < 1e-9);
        assert_eq!(op.critical_socket, 0);
    }

    #[test]
    fn rejects_malformed_inputs() {
        let (cpu, dram) = node();
        let w = WorkloadDemand::single("x", PhaseDemand::stream_bound());
        assert!(solve_per_socket(&cpu, &dram, &w, &[Watts::new(60.0)], Watts::new(80.0), &[1.0])
            .is_err());
        assert!(solve_per_socket(
            &cpu,
            &dram,
            &w,
            &[Watts::new(60.0), Watts::new(60.0)],
            Watts::new(80.0),
            &[0.0, 0.0],
        )
        .is_err());
    }
}
