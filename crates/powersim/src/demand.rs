//! Workload demand parameters: how a workload loads the two components.
//!
//! A workload is a weighted sequence of *phases*; each phase is described
//! by platform-independent characteristics (arithmetic intensity, access
//! pattern cost, overlap, activity factors). The solvers instantiate these
//! onto a concrete platform: peak compute comes from the platform's
//! GFLOP/s, peak bandwidth from the memory spec.
//!
//! The parameters deliberately match the workload distinctions the paper
//! draws: compute intensity ("the ratio of computation rate to memory
//! bandwidth", §3.4.1), access-pattern power cost (RandomAccess draws more
//! DRAM watts per useful byte than STREAM), multi-phase structure ("kernel
//! benchmarks like EP-dgemm consist of a single phase, while
//! pseudo-applications like BT and MG may comprise multiple memory access
//! patterns", §6.2), and the memory-request feedback that slows DRAM
//! traffic when the processor is throttled (§3.2, scenario IV).


/// Demand characteristics of one execution phase.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PhaseDemand {
    /// Fraction of the platform's peak compute rate the phase sustains at
    /// nominal clocks when not memory-stalled (vectorization/ILP/occupancy
    /// efficiency), in `(0, 1]`.
    pub compute_efficiency: f64,
    /// Arithmetic intensity: useful FLOPs per byte of memory traffic.
    /// High (≫ machine balance) for DGEMM, low for STREAM/RandomAccess.
    pub arithmetic_intensity: f64,
    /// The highest fraction of the platform's peak bandwidth this phase
    /// can generate at nominal processor speed, in `(0, 1]`. Below 1 for
    /// latency-/concurrency-limited patterns (RandomAccess).
    pub bw_saturation: f64,
    /// Memory energy cost multiplier relative to streaming traffic
    /// (row-buffer-hostile access costs more activates per byte); ≥ 1.
    pub pattern_cost: f64,
    /// Fraction of memory time that hides under compute, in `[0, 1]`.
    /// 1 = perfectly overlapped (software pipelined streaming), 0 = fully
    /// serialized (dependent pointer chasing).
    pub overlap: f64,
    /// How strongly the phase's achievable bandwidth degrades with
    /// processor speed `s`: the ceiling scales as `s^γ`. Latency-bound
    /// patterns (γ≈1) lose request concurrency when cores slow down;
    /// prefetched streaming (γ≈0.3) barely does.
    pub issue_sensitivity: f64,
    /// Switching activity of the processor while executing compute.
    pub act_compute: f64,
    /// Switching activity while stalled waiting on memory.
    pub act_stall: f64,
}

impl PhaseDemand {
    /// A pure-compute phase (DGEMM-like): high intensity, negligible
    /// bandwidth needs. Useful as a building block in tests.
    pub fn compute_bound() -> Self {
        Self {
            compute_efficiency: 0.9,
            arithmetic_intensity: 30.0,
            bw_saturation: 0.35,
            pattern_cost: 1.0,
            overlap: 0.95,
            issue_sensitivity: 0.3,
            act_compute: 1.0,
            act_stall: 0.35,
        }
    }

    /// A streaming memory-bound phase (STREAM-like).
    pub fn stream_bound() -> Self {
        Self {
            compute_efficiency: 0.25,
            arithmetic_intensity: 0.125,
            bw_saturation: 1.0,
            pattern_cost: 1.0,
            overlap: 0.9,
            issue_sensitivity: 0.3,
            act_compute: 0.75,
            act_stall: 0.35,
        }
    }

    /// A latency-bound random-access phase (GUPS-like).
    pub fn random_bound() -> Self {
        Self {
            compute_efficiency: 0.1,
            arithmetic_intensity: 0.06,
            bw_saturation: 0.6,
            pattern_cost: 2.0,
            overlap: 0.5,
            issue_sensitivity: 0.25,
            act_compute: 0.7,
            act_stall: 0.4,
        }
    }

    /// Validate parameter ranges.
    pub fn validate(&self) -> Result<(), String> {
        fn in_unit(name: &str, v: f64, lo_open: bool) -> Result<(), String> {
            let ok = if lo_open { v > 0.0 } else { v >= 0.0 };
            if ok && v <= 1.0 && v.is_finite() {
                Ok(())
            } else {
                Err(format!("{name} = {v} outside the unit range"))
            }
        }
        in_unit("compute_efficiency", self.compute_efficiency, true)?;
        in_unit("bw_saturation", self.bw_saturation, true)?;
        in_unit("overlap", self.overlap, false)?;
        in_unit("issue_sensitivity", self.issue_sensitivity, false)?;
        in_unit("act_compute", self.act_compute, true)?;
        in_unit("act_stall", self.act_stall, false)?;
        if !(self.arithmetic_intensity > 0.0 && self.arithmetic_intensity.is_finite()) {
            return Err("arithmetic_intensity must be positive".into());
        }
        if !(self.pattern_cost >= 1.0 && self.pattern_cost.is_finite()) {
            return Err("pattern_cost must be >= 1".into());
        }
        Ok(())
    }
}

/// A workload: named, weighted phases.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WorkloadDemand {
    /// Short name (e.g. `"SRA"`, `"DGEMM"`).
    pub name: String,
    /// `(weight, phase)` pairs; weights are relative amounts of *work* (not
    /// time) and need not sum to 1 — they are normalized internally.
    pub phases: Vec<(f64, PhaseDemand)>,
}

impl WorkloadDemand {
    /// Single-phase workload.
    pub fn single(name: impl Into<String>, phase: PhaseDemand) -> Self {
        Self {
            name: name.into(),
            phases: vec![(1.0, phase)],
        }
    }

    /// Multi-phase workload from `(weight, phase)` pairs.
    pub fn phased(name: impl Into<String>, phases: Vec<(f64, PhaseDemand)>) -> Self {
        Self {
            name: name.into(),
            phases,
        }
    }

    /// Normalized phase weights (sum to 1).
    pub fn normalized_weights(&self) -> Vec<f64> {
        let total: f64 = self.phases.iter().map(|(w, _)| *w).sum();
        if total <= 0.0 {
            vec![1.0 / self.phases.len().max(1) as f64; self.phases.len()]
        } else {
            self.phases.iter().map(|(w, _)| w / total).collect()
        }
    }

    /// Work-weighted mean arithmetic intensity — a scalar summary of
    /// compute- vs memory-boundedness used by heuristics.
    pub fn mean_intensity(&self) -> f64 {
        self.normalized_weights()
            .iter()
            .zip(&self.phases)
            .map(|(w, (_, p))| w * p.arithmetic_intensity)
            .sum()
    }

    /// Validate all phases.
    pub fn validate(&self) -> Result<(), String> {
        if self.phases.is_empty() {
            return Err(format!("workload {} has no phases", self.name));
        }
        for (i, (w, p)) in self.phases.iter().enumerate() {
            if !(w.is_finite() && *w >= 0.0) {
                return Err(format!("phase {i} weight {w} invalid"));
            }
            p.validate().map_err(|e| format!("phase {i}: {e}"))?;
        }
        if self.phases.iter().all(|(w, _)| pbc_types::is_zero(*w)) {
            return Err("all phase weights are zero".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_phases_validate() {
        assert_eq!(PhaseDemand::compute_bound().validate(), Ok(()));
        assert_eq!(PhaseDemand::stream_bound().validate(), Ok(()));
        assert_eq!(PhaseDemand::random_bound().validate(), Ok(()));
    }

    #[test]
    fn weights_normalize() {
        let w = WorkloadDemand::phased(
            "mixed",
            vec![(3.0, PhaseDemand::compute_bound()), (1.0, PhaseDemand::stream_bound())],
        );
        let nw = w.normalized_weights();
        assert!((nw[0] - 0.75).abs() < 1e-12);
        assert!((nw[1] - 0.25).abs() < 1e-12);
        assert_eq!(w.validate(), Ok(()));
    }

    #[test]
    fn zero_weights_fall_back_to_uniform() {
        let w = WorkloadDemand::phased(
            "degenerate",
            vec![(0.0, PhaseDemand::compute_bound()), (0.0, PhaseDemand::stream_bound())],
        );
        let nw = w.normalized_weights();
        assert!((nw[0] - 0.5).abs() < 1e-12);
        // but validation rejects an all-zero workload
        assert!(w.validate().is_err());
    }

    #[test]
    fn mean_intensity_ordering() {
        let dgemm = WorkloadDemand::single("dgemm", PhaseDemand::compute_bound());
        let stream = WorkloadDemand::single("stream", PhaseDemand::stream_bound());
        assert!(dgemm.mean_intensity() > stream.mean_intensity());
    }

    #[test]
    fn rejects_bad_parameters() {
        let mut p = PhaseDemand::compute_bound();
        p.overlap = 1.5;
        assert!(p.validate().is_err());
        let mut p = PhaseDemand::compute_bound();
        p.pattern_cost = 0.5;
        assert!(p.validate().is_err());
        let mut p = PhaseDemand::compute_bound();
        p.arithmetic_intensity = 0.0;
        assert!(p.validate().is_err());
        let w = WorkloadDemand::phased("empty", vec![]);
        assert!(w.validate().is_err());
    }
}
