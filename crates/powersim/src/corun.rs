//! Co-running jobs on one power-bounded node — the paper's "multi-task
//! computing environments" future work (§8).
//!
//! Two jobs partition the cores of one host and share its DRAM. Each job
//! gets its own package-power share (per-cgroup RAPL-style accounting),
//! while the memory system is a common pool: when the jobs' combined
//! traffic demand exceeds what the DRAM cap sustains, bandwidth is
//! apportioned in proportion to demand (the fair behaviour of a memory
//! controller under contention).
//!
//! The coordination question gains a dimension: not just processor-vs-
//! memory, but *whose* processor. [`coordinate_corun`] scans the
//! inter-job split with each job's intra-node split handled by the same
//! bottleneck logic as everywhere else.

use crate::cpunode::{dram_bw_ceiling, solve_cpu};
use crate::demand::WorkloadDemand;
use crate::sockets::single_socket_spec;
use pbc_platform::{CpuSpec, DramSpec};
use pbc_types::{u16_from_f64, u32_from_f64, Bandwidth, PbcError, PowerAllocation, Result, Watts};

/// Scale a single-socket-normalized spec to an arbitrary core fraction of
/// the node.
fn partition_spec(cpu: &CpuSpec, fraction: f64) -> CpuSpec {
    let one = single_socket_spec(cpu);
    let total = cpu.sockets as f64;
    let f = (fraction * total).max(0.05);
    // Fractions arrive from scan loops, so they are finite and in (0, 1);
    // the checked conversions turn any violation of that into a visible
    // degenerate spec (0%, 1 core) instead of a saturated garbage value.
    let percent = u32_from_f64(fraction * 100.0).unwrap_or(0);
    let cores = (cpu.total_cores() as f64 * fraction).max(1.0);
    CpuSpec {
        name: format!("{} ({percent}% of cores)", cpu.name),
        sockets: 1,
        cores_per_socket: u16_from_f64(cores).unwrap_or(1).max(1),
        pstates: one.pstates.clone(),
        tstate_duties: one.tstate_duties.clone(),
        leakage_nominal: one.leakage_nominal * f,
        dyn_power_max: one.dyn_power_max * f,
        min_active_power: one.min_active_power * f,
        core_gflops_nominal: cpu.core_gflops_nominal,
    }
}

/// The co-run outcome for one configuration.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CorunPoint {
    /// Per-job relative performance, each normalized to its solo
    /// unconstrained run on *half* the node. The fixed reference makes the
    /// throughput objective honest: shrinking a job's core partition
    /// really costs throughput instead of shrinking its yardstick.
    pub perf_rel: [f64; 2],
    /// Per-job package power draw.
    pub proc_powers: [Watts; 2],
    /// Shared DRAM power draw.
    pub mem_power: Watts,
    /// Bandwidth contention factor applied (1.0 = no contention).
    pub contention: f64,
}

impl CorunPoint {
    /// Sum of the two jobs' relative performances — the throughput
    /// objective a co-run scheduler maximizes.
    pub fn total_throughput(&self) -> f64 {
        self.perf_rel[0] + self.perf_rel[1]
    }

    /// Total node power.
    pub fn total_power(&self) -> Watts {
        self.proc_powers[0] + self.proc_powers[1] + self.mem_power
    }
}

/// Solve a co-run: two jobs on core fractions `core_split` / `1 −
/// core_split`, with per-job package caps and a shared DRAM cap.
pub fn solve_corun(
    cpu: &CpuSpec,
    dram: &DramSpec,
    demands: [&WorkloadDemand; 2],
    core_split: f64,
    proc_caps: [Watts; 2],
    mem_cap: Watts,
) -> Result<CorunPoint> {
    if !(0.05..=0.95).contains(&core_split) {
        return Err(PbcError::InvalidInput(format!(
            "core_split {core_split} outside [0.05, 0.95]"
        )));
    }
    let fractions = [core_split, 1.0 - core_split];
    let parts = [partition_spec(cpu, fractions[0]), partition_spec(cpu, fractions[1])];

    // First pass: each job solo against the full DRAM cap measures its
    // bandwidth *demand*; a generous solo run provides the normalization
    // reference (perf_rel must mean "vs my solo unconstrained pace on
    // this core partition", not "vs my own contended slice").
    let mut wants = [0.0f64; 2];
    let mut ref_rates = [0.0f64; 2];
    for i in 0..2 {
        let op = solve_cpu(
            &parts[i],
            dram,
            demands[i],
            PowerAllocation::new(proc_caps[i], mem_cap),
        );
        wants[i] = op.bandwidth.value();
        let half = partition_spec(cpu, 0.5);
        let free = solve_cpu(
            &half,
            dram,
            demands[i],
            PowerAllocation::new(Watts::new(1e4), Watts::new(1e4)),
        );
        ref_rates[i] = free.work_rate.max(1e-12);
    }
    // The cap's sustainable raw bandwidth for the *mix*: use the
    // traffic-weighted pattern cost.
    let total_want = (wants[0] + wants[1]).max(1e-9);
    let mix_cost = demands
        .iter()
        .zip(&wants)
        .map(|(d, &w)| {
            let c = d
                .phases
                .first()
                .map(|(_, p)| p.pattern_cost)
                .unwrap_or(1.0);
            c * w / total_want
        })
        .sum::<f64>()
        .max(1.0);
    let sustainable = dram_bw_ceiling(dram, mem_cap, mix_cost).value();
    let contention = (sustainable / total_want).min(1.0);

    // Second pass: each job re-solved with its contended bandwidth slice.
    // Emulate the slice by handing each job a DRAM spec whose peak is its
    // apportioned share (background split by share so it is counted once
    // in total).
    let mut perf = [0.0f64; 2];
    let mut proc_powers = [Watts::ZERO; 2];
    let mut mem_power = Watts::ZERO;
    for i in 0..2 {
        let share = wants[i] * contention / sustainable.max(1e-9);
        let slice_bw = (wants[i] * contention).max(sustainable * 0.02);
        let slice = DramSpec {
            name: dram.name.clone(),
            technology: dram.technology,
            capacity_gb: dram.capacity_gb,
            background_power: dram.background_power * share.clamp(0.05, 1.0),
            max_bandwidth: Bandwidth::new(slice_bw),
            transfer_w_per_gbps: dram.transfer_w_per_gbps,
            throttle_levels: dram.throttle_levels,
        };
        let op = solve_cpu(
            &parts[i],
            &slice,
            demands[i],
            PowerAllocation::new(proc_caps[i], mem_cap * share.clamp(0.05, 1.0)),
        );
        perf[i] = op.work_rate / ref_rates[i];
        proc_powers[i] = op.proc_power;
        mem_power += op.mem_power;
    }
    // Background is mostly double-counted-proof via the share split; clamp
    // to the physical model regardless.
    mem_power = mem_power.min(dram.max_power(mix_cost));

    Ok(CorunPoint {
        perf_rel: perf,
        proc_powers,
        mem_power,
        contention,
    })
}

/// Find the throughput-maximizing co-run configuration of a node budget:
/// scan core splits and package-power splits jointly (coarse grid — this
/// is a scheduler-time decision, not a per-tick one), with the DRAM cap
/// fixed at what the budget leaves after the package caps.
pub fn coordinate_corun(
    cpu: &CpuSpec,
    dram: &DramSpec,
    demands: [&WorkloadDemand; 2],
    node_budget: Watts,
    mem_cap: Watts,
) -> Result<(f64, [Watts; 2], CorunPoint)> {
    let proc_budget = node_budget - mem_cap;
    if proc_budget.value() <= 0.0 {
        return Err(PbcError::BudgetTooSmall {
            requested: node_budget,
            minimum: mem_cap + cpu.min_active_power,
        });
    }
    let mut best: Option<(f64, [Watts; 2], CorunPoint)> = None;
    for core_pct in [30, 40, 50, 60, 70] {
        let core_split = core_pct as f64 / 100.0;
        for power_pct in [30, 40, 50, 60, 70] {
            let p0 = proc_budget * (power_pct as f64 / 100.0);
            let caps = [p0, proc_budget - p0];
            let pt = solve_corun(cpu, dram, demands, core_split, caps, mem_cap)?;
            if best
                .as_ref()
                .map(|(_, _, b)| pt.total_throughput() > b.total_throughput())
                .unwrap_or(true)
            {
                best = Some((core_split, caps, pt));
            }
        }
    }
    Ok(best.expect("grid is non-empty"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::PhaseDemand;
    use pbc_platform::presets::ivybridge;

    fn node() -> (CpuSpec, DramSpec) {
        let p = ivybridge();
        (p.cpu().unwrap().clone(), p.dram().unwrap().clone())
    }

    fn dgemm() -> WorkloadDemand {
        WorkloadDemand::single("dgemm", PhaseDemand::compute_bound())
    }

    fn stream() -> WorkloadDemand {
        WorkloadDemand::single("stream", PhaseDemand::stream_bound())
    }

    #[test]
    fn identical_jobs_see_symmetric_outcomes() {
        let (cpu, dram) = node();
        let a = dgemm();
        let b = dgemm();
        let pt = solve_corun(
            &cpu,
            &dram,
            [&a, &b],
            0.5,
            [Watts::new(70.0), Watts::new(70.0)],
            Watts::new(80.0),
        )
        .unwrap();
        assert!((pt.perf_rel[0] - pt.perf_rel[1]).abs() < 1e-9);
        assert!((pt.proc_powers[0].value() - pt.proc_powers[1].value()).abs() < 1e-9);
    }

    #[test]
    fn two_streams_contend_for_bandwidth() {
        let (cpu, dram) = node();
        let a = stream();
        let b = stream();
        let pt = solve_corun(
            &cpu,
            &dram,
            [&a, &b],
            0.5,
            [Watts::new(60.0), Watts::new(60.0)],
            Watts::new(110.0),
        )
        .unwrap();
        assert!(
            pt.contention < 0.95,
            "two STREAMs must contend: factor {}",
            pt.contention
        );
        // Each runs notably below its solo pace.
        assert!(pt.perf_rel[0] < 0.8);
    }

    #[test]
    fn compute_plus_stream_barely_contend() {
        let (cpu, dram) = node();
        let a = dgemm();
        let b = stream();
        let pt = solve_corun(
            &cpu,
            &dram,
            [&a, &b],
            0.5,
            [Watts::new(70.0), Watts::new(60.0)],
            Watts::new(110.0),
        )
        .unwrap();
        // The classic co-run pairing result: a compute-bound job is an
        // excellent bandwidth citizen.
        assert!(
            pt.contention > 0.9,
            "DGEMM+STREAM contention {}",
            pt.contention
        );
    }

    #[test]
    fn coordination_gives_the_compute_job_more_package_power() {
        let (cpu, dram) = node();
        let a = dgemm();
        let b = stream();
        let (core_split, caps, pt) =
            coordinate_corun(&cpu, &dram, [&a, &b], Watts::new(240.0), Watts::new(100.0))
                .unwrap();
        assert!(
            caps[0] > caps[1],
            "DGEMM (job 0) should get the bigger package cap: {:?}",
            caps
        );
        assert!(core_split >= 0.5, "and at least half the cores: {core_split}");
        assert!(pt.total_throughput() > 1.0);
    }

    #[test]
    fn coordinated_beats_naive_even_corun() {
        let (cpu, dram) = node();
        let a = dgemm();
        let b = stream();
        let naive = solve_corun(
            &cpu,
            &dram,
            [&a, &b],
            0.5,
            [Watts::new(70.0), Watts::new(70.0)],
            Watts::new(100.0),
        )
        .unwrap();
        let (_, _, best) =
            coordinate_corun(&cpu, &dram, [&a, &b], Watts::new(240.0), Watts::new(100.0))
                .unwrap();
        assert!(
            best.total_throughput() >= naive.total_throughput() - 1e-9,
            "coordinated {} vs naive {}",
            best.total_throughput(),
            naive.total_throughput()
        );
    }

    #[test]
    fn budget_is_respected() {
        let (cpu, dram) = node();
        let a = dgemm();
        let b = stream();
        let (_, caps, pt) =
            coordinate_corun(&cpu, &dram, [&a, &b], Watts::new(220.0), Watts::new(90.0))
                .unwrap();
        assert!((caps[0] + caps[1]).value() <= 130.0 + 1e-9);
        assert!(pt.total_power().value() <= 220.0 + 1e-6, "{}", pt.total_power());
    }

    #[test]
    fn rejects_degenerate_splits() {
        let (cpu, dram) = node();
        let a = dgemm();
        let b = stream();
        assert!(solve_corun(
            &cpu,
            &dram,
            [&a, &b],
            0.01,
            [Watts::new(60.0), Watts::new(60.0)],
            Watts::new(90.0),
        )
        .is_err());
    }
}
