//! Discrete-time simulation engine.
//!
//! The steady-state solvers answer "where does the control system
//! settle?"; this engine answers "how does it get there, and does it stay
//! there?" by stepping the actual control loops:
//!
//! * every tick the workload runs at the rates the *current* mechanism
//!   states allow (P-state/duty and DRAM throttle level on a host; SM
//!   clock and pinned memory level on a GPU),
//! * the controllers observe the resulting powers through their running-
//!   average windows and move one ladder step,
//! * the optional thermal model integrates temperature and feeds leakage
//!   back into package power.
//!
//! The engine is the validation harness for the solvers (tests assert the
//! settled engine agrees with [`crate::solve_cpu`] / [`crate::solve_gpu`])
//! and the vehicle for transient studies: budget re-programming mid-run,
//! phase-change response, thermal soak.

use crate::cpunode;
use crate::demand::WorkloadDemand;
use crate::gpuctl::GpuCapper;
use crate::gpunode;
use crate::memctl::DramThrottle;
use crate::rapl::RaplController;
use crate::thermal::{ThermalModel, ThermalParams};
use pbc_platform::{CpuSpec, DramSpec, GpuSpec};
use pbc_types::{usize_from_f64, Joules, PowerAllocation, Result, Seconds, Throughput, Watts};

/// Engine configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SimConfig {
    /// Control period (one controller step per tick).
    pub dt: Seconds,
    /// Total simulated time.
    pub duration: Seconds,
    /// Running-average window, in samples, for all controllers.
    pub window: usize,
    /// Optional thermal model parameters.
    pub thermal: Option<ThermalParams>,
    /// Keep every n-th sample in the trace (1 = all).
    pub sample_stride: usize,
}

impl SimConfig {
    /// Number of simulation ticks: `ceil(duration / dt)`, checked. A
    /// non-finite or negative ratio (zero `dt`, negative duration) yields
    /// zero steps — the simulation degenerates to an empty trace instead
    /// of a garbage step count from a saturating cast.
    #[must_use]
    pub fn steps(&self) -> usize {
        let ratio = (self.duration.value() / self.dt.value()).ceil();
        usize_from_f64(ratio).unwrap_or(0)
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            dt: Seconds::new(0.001),
            duration: Seconds::new(2.0),
            window: 10,
            thermal: None,
            sample_stride: 1,
        }
    }
}

/// One trace sample.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SimSample {
    /// Simulated time of the sample.
    pub t: Seconds,
    /// Processing-component power.
    pub proc_power: Watts,
    /// Memory-component power.
    pub mem_power: Watts,
    /// Instantaneous work rate (GFLOP/s of workload progress).
    pub work_rate: f64,
    /// Die temperature, if the thermal model is on.
    pub temperature_c: Option<f64>,
}

/// Aggregated result of a simulation run.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SimResult {
    /// Decimated trace.
    pub samples: Vec<SimSample>,
    /// Work, time, and energy totals.
    pub throughput: Throughput,
    /// Mean processing-component power over the run.
    pub mean_proc_power: Watts,
    /// Mean memory-component power over the run.
    pub mean_mem_power: Watts,
    /// Mean relative performance over the *second half* of the run (after
    /// the controllers settle), normalized like
    /// [`crate::NodeOperatingPoint::perf_rel`].
    pub settled_perf_rel: f64,
    /// Mean total power over the second half of the run.
    pub settled_power: Watts,
}

/// Cycle through phases by work share: returns the phase index active
/// after `done / cycle` iterations of the application, with phases laid
/// out proportionally to their normalized weights within each iteration.
/// `cycle` is the work per application iteration; it is sized to ~0.25 s
/// of nominal execution so that phases last much longer than the
/// controllers' averaging windows (as real application phases do —
/// otherwise the running average would smear adjacent phases together and
/// let a hungry phase borrow headroom its neighbour left unused).
fn phase_at(weights: &[f64], done: f64, cycle: f64) -> usize {
    let pos = (done / cycle.max(1e-12)).fract();
    let mut acc = 0.0;
    for (i, w) in weights.iter().enumerate() {
        acc += w;
        if pos < acc {
            return i;
        }
    }
    weights.len() - 1
}

/// Interposes on the power telemetry the *controllers* see each tick —
/// the seam `pbc-faults` injects through. The physics is untouched: the
/// workload still draws the true powers and the trace records them; only
/// the observation fed to the RAPL ladder / DRAM throttle / GPU capper
/// is (possibly) corrupted, exactly like a flaky energy counter on real
/// hardware.
pub trait SimFault {
    /// Given the true per-component draws at tick `k`, return what the
    /// controllers should observe.
    fn observe_power(&mut self, k: usize, proc: Watts, mem: Watts) -> (Watts, Watts);
}

/// The identity hook: controllers see the truth.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFault;

impl SimFault for NoFault {
    fn observe_power(&mut self, _k: usize, proc: Watts, mem: Watts) -> (Watts, Watts) {
        (proc, mem)
    }
}

/// Simulate a host node (CPU + DRAM under RAPL) for the configured
/// duration.
pub fn simulate_cpu(
    cpu: &CpuSpec,
    dram: &DramSpec,
    demand: &WorkloadDemand,
    alloc: PowerAllocation,
    config: &SimConfig,
) -> SimResult {
    simulate_cpu_faulty(cpu, dram, demand, alloc, config, &mut NoFault)
}

/// [`simulate_cpu`] with a fault hook between the node's true power
/// draws and the controllers' observations.
pub fn simulate_cpu_faulty(
    cpu: &CpuSpec,
    dram: &DramSpec,
    demand: &WorkloadDemand,
    alloc: PowerAllocation,
    config: &SimConfig,
    faults: &mut dyn SimFault,
) -> SimResult {
    let weights = demand.normalized_weights();
    let nominal = *cpu.pstates.nominal();
    let peak = cpu.peak_gflops();

    // Nominal (unconstrained) rate for perf_rel normalization.
    let t_nominal: f64 = weights
        .iter()
        .zip(demand.phases.iter().map(|(_, p)| p))
        .map(|(w, p)| {
            let (t, _, _) = cpunode::compose(p, peak, dram.max_bandwidth, 1.0, 1.0, dram.max_bandwidth);
            w * t
        })
        .sum();
    let nominal_rate = 1.0 / t_nominal;
    let cycle_work = 0.25 * nominal_rate;

    let mut rapl = RaplController::new(cpu, alloc.proc, config.window);
    let mut throttle = DramThrottle::new(dram, alloc.mem, config.window);
    let mut thermal = config.thermal.map(ThermalModel::new);
    // PROCHOT latch: once the junction trips, the hardware forces the
    // deepest throttle regardless of RAPL's ladder position, releasing
    // only after a hysteresis margin below the trip point.
    let mut prochot = false;
    const PROCHOT_HYSTERESIS_C: f64 = 5.0;

    let steps = config.steps();
    let mut samples = Vec::with_capacity(steps.div_ceil(config.sample_stride.max(1)));
    let mut work = 0.0;
    let mut energy = 0.0;
    let mut sum_cpu = 0.0;
    let mut sum_mem = 0.0;
    let mut half_rate = 0.0;
    let mut half_power = 0.0;
    let mut half_n = 0usize;

    for k in 0..steps {
        let phase = &demand.phases[phase_at(&weights, work, cycle_work)].1;
        if let Some(t) = thermal.as_ref() {
            if t.tripped() {
                prochot = true;
            } else if t.temperature_c() < t.trip_c() - PROCHOT_HYSTERESIS_C {
                prochot = false;
            }
        }
        let pos = rapl.position();
        let (st, duty) = if prochot {
            (cpu.pstates.lowest(), cpu.min_duty())
        } else {
            (cpu.pstates.get(pos.pstate).unwrap(), pos.duty(cpu))
        };
        let s_pstate = st.speed(&nominal);
        let bw_cap = throttle.allowed_bandwidth(dram);

        let (t_unit, busy, bw_used) =
            cpunode::compose(phase, peak, dram.max_bandwidth, s_pstate, duty, bw_cap);
        let rate = 1.0 / t_unit;
        let activity = phase.act_compute * busy + phase.act_stall * (1.0 - busy);

        // Package power, with thermal leakage feedback when enabled.
        let leak_mult = thermal.as_ref().map(|t| t.leakage_multiplier()).unwrap_or(1.0);
        let leak = cpu.leakage_nominal * st.leak_scale(&nominal) * leak_mult;
        let dynamic = cpu.dyn_power_max * st.dyn_scale(&nominal) * duty * activity;
        let cpu_power = (leak + dynamic).max(cpu.min_active_power);
        let mem_power = dram.power_at(bw_used, phase.pattern_cost);

        // Integrate.
        let dt = config.dt.value();
        work += rate * dt;
        energy += (cpu_power + mem_power).value() * dt;
        sum_cpu += cpu_power.value();
        sum_mem += mem_power.value();
        if k >= steps / 2 {
            half_rate += rate;
            half_power += (cpu_power + mem_power).value();
            half_n += 1;
        }

        // Controllers and thermal step. The controllers see the (possibly
        // fault-corrupted) observation; the thermal model integrates the
        // true dissipation — heat does not care what the sensor said.
        let (obs_cpu, obs_mem) = faults.observe_power(k, cpu_power, mem_power);
        rapl.observe_and_step(cpu, obs_cpu);
        throttle.observe_and_step(dram, obs_mem);
        if let Some(t) = thermal.as_mut() {
            t.step(cpu_power, config.dt);
        }

        if k % config.sample_stride.max(1) == 0 {
            samples.push(SimSample {
                t: Seconds::new(k as f64 * dt),
                proc_power: cpu_power,
                mem_power,
                work_rate: rate,
                temperature_c: thermal.as_ref().map(|t| t.temperature_c()),
            });
        }
    }

    let elapsed = Seconds::new(steps as f64 * config.dt.value());
    SimResult {
        samples,
        throughput: Throughput {
            work_done: work,
            elapsed,
            energy: Joules::new(energy),
        },
        mean_proc_power: Watts::new(sum_cpu / steps.max(1) as f64),
        mean_mem_power: Watts::new(sum_mem / steps.max(1) as f64),
        settled_perf_rel: if half_n > 0 {
            (half_rate / half_n as f64) / nominal_rate
        } else {
            0.0
        },
        settled_power: Watts::new(if half_n > 0 { half_power / half_n as f64 } else { 0.0 }),
    }
}

/// Simulate a host node while the allocation is re-programmed at
/// scheduled times — the dynamic re-budgeting the paper leaves as future
/// work ("how to adapt this algorithm to support online dynamic power
/// budgeting"). `events` are `(time, new allocation)` pairs, applied in
/// order; the controllers are *not* reset, so the trace shows the real
/// transient: the ladder walking down after a cut, climbing after a
/// restore.
pub fn simulate_cpu_with_events(
    cpu: &CpuSpec,
    dram: &DramSpec,
    demand: &WorkloadDemand,
    initial: PowerAllocation,
    events: &[(Seconds, PowerAllocation)],
    config: &SimConfig,
) -> SimResult {
    let weights = demand.normalized_weights();
    let nominal = *cpu.pstates.nominal();
    let peak = cpu.peak_gflops();
    let t_nominal: f64 = weights
        .iter()
        .zip(demand.phases.iter().map(|(_, p)| p))
        .map(|(w, p)| {
            let (t, _, _) =
                cpunode::compose(p, peak, dram.max_bandwidth, 1.0, 1.0, dram.max_bandwidth);
            w * t
        })
        .sum();
    let nominal_rate = 1.0 / t_nominal;
    let cycle_work = 0.25 * nominal_rate;

    let mut rapl = RaplController::new(cpu, initial.proc, config.window);
    let mut throttle = DramThrottle::new(dram, initial.mem, config.window);
    let mut thermal = config.thermal.map(ThermalModel::new);
    let mut pending: Vec<(Seconds, PowerAllocation)> = events.to_vec();
    pending.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    let mut next_event = 0usize;

    let steps = config.steps();
    let mut samples = Vec::with_capacity(steps.div_ceil(config.sample_stride.max(1)));
    let mut work = 0.0;
    let mut energy = 0.0;
    let mut sum_cpu = 0.0;
    let mut sum_mem = 0.0;
    let mut half_rate = 0.0;
    let mut half_power = 0.0;
    let mut half_n = 0usize;

    for k in 0..steps {
        let now = Seconds::new(k as f64 * config.dt.value());
        while next_event < pending.len() && pending[next_event].0 <= now {
            let (_, alloc) = pending[next_event];
            rapl.set_cap(alloc.proc);
            throttle.set_cap(alloc.mem);
            next_event += 1;
        }
        let phase = &demand.phases[phase_at(&weights, work, cycle_work)].1;
        let pos = rapl.position();
        let st = cpu.pstates.get(pos.pstate).unwrap();
        let duty = pos.duty(cpu);
        let bw_cap = throttle.allowed_bandwidth(dram);
        let (t_unit, busy, bw_used) =
            cpunode::compose(phase, peak, dram.max_bandwidth, st.speed(&nominal), duty, bw_cap);
        let rate = 1.0 / t_unit;
        let activity = phase.act_compute * busy + phase.act_stall * (1.0 - busy);
        let leak_mult = thermal.as_ref().map(|t| t.leakage_multiplier()).unwrap_or(1.0);
        let leak = cpu.leakage_nominal * st.leak_scale(&nominal) * leak_mult;
        let dynamic = cpu.dyn_power_max * st.dyn_scale(&nominal) * duty * activity;
        let cpu_power = (leak + dynamic).max(cpu.min_active_power);
        let mem_power = dram.power_at(bw_used, phase.pattern_cost);

        let dt = config.dt.value();
        work += rate * dt;
        energy += (cpu_power + mem_power).value() * dt;
        sum_cpu += cpu_power.value();
        sum_mem += mem_power.value();
        if k >= steps / 2 {
            half_rate += rate;
            half_power += (cpu_power + mem_power).value();
            half_n += 1;
        }
        rapl.observe_and_step(cpu, cpu_power);
        throttle.observe_and_step(dram, mem_power);
        if let Some(t) = thermal.as_mut() {
            t.step(cpu_power, config.dt);
        }
        if k % config.sample_stride.max(1) == 0 {
            samples.push(SimSample {
                t: now,
                proc_power: cpu_power,
                mem_power,
                work_rate: rate,
                temperature_c: thermal.as_ref().map(|t| t.temperature_c()),
            });
        }
    }

    let elapsed = Seconds::new(steps as f64 * config.dt.value());
    SimResult {
        samples,
        throughput: Throughput {
            work_done: work,
            elapsed,
            energy: Joules::new(energy),
        },
        mean_proc_power: Watts::new(sum_cpu / steps.max(1) as f64),
        mean_mem_power: Watts::new(sum_mem / steps.max(1) as f64),
        settled_perf_rel: if half_n > 0 {
            (half_rate / half_n as f64) / nominal_rate
        } else {
            0.0
        },
        settled_power: Watts::new(if half_n > 0 { half_power / half_n as f64 } else { 0.0 }),
    }
}

/// Simulate a GPU card under the boost governor for the configured
/// duration. The memory level is pinned from `alloc.mem` exactly as in
/// [`crate::solve_gpu`].
#[must_use = "the simulation result carries the settled operating point"]
pub fn simulate_gpu(
    gpu: &GpuSpec,
    demand: &WorkloadDemand,
    alloc: PowerAllocation,
    config: &SimConfig,
) -> Result<SimResult> {
    simulate_gpu_faulty(gpu, demand, alloc, config, &mut NoFault)
}

/// [`simulate_gpu`] with a fault hook between the card's true draws and
/// what the boost governor observes.
#[must_use = "the simulation result carries the settled operating point"]
pub fn simulate_gpu_faulty(
    gpu: &GpuSpec,
    demand: &WorkloadDemand,
    alloc: PowerAllocation,
    config: &SimConfig,
    faults: &mut dyn SimFault,
) -> Result<SimResult> {
    let weights = demand.normalized_weights();
    let mem_level = gpu.mem.level_under_cap(alloc.mem);
    let mut capper = GpuCapper::new(gpu, alloc.total(), mem_level, config.window)?;
    let mut thermal = config.thermal.map(ThermalModel::new);

    let t_nominal: f64 = weights
        .iter()
        .zip(demand.phases.iter().map(|(_, p)| p))
        .map(|(w, p)| w * gpunode::compose_at(gpu, p, gpu.sm.top(), gpu.mem.top()).time)
        .sum();
    let nominal_rate = 1.0 / t_nominal;
    let cycle_work = 0.25 * nominal_rate;

    let steps = config.steps();
    let mut samples = Vec::with_capacity(steps.div_ceil(config.sample_stride.max(1)));
    let mut work = 0.0;
    let mut energy = 0.0;
    let mut sum_sm = 0.0;
    let mut sum_mem = 0.0;
    let mut half_rate = 0.0;
    let mut half_power = 0.0;
    let mut half_n = 0usize;

    for k in 0..steps {
        let phase = &demand.phases[phase_at(&weights, work, cycle_work)].1;
        let pt = gpunode::compose_at(gpu, phase, capper.sm_clock(), mem_level);
        let rate = 1.0 / pt.time;
        // Thermal leakage feedback applies to the SM domain.
        let leak_mult = thermal.as_ref().map(|t| t.leakage_multiplier()).unwrap_or(1.0);
        let sm_power = pt.sm_power + gpu.sm.leakage_nominal * (leak_mult - 1.0);
        let total = sm_power + pt.mem_power;

        let dt = config.dt.value();
        work += rate * dt;
        energy += total.value() * dt;
        sum_sm += sm_power.value();
        sum_mem += pt.mem_power.value();
        if k >= steps / 2 {
            half_rate += rate;
            half_power += total.value();
            half_n += 1;
        }

        let (obs_sm, obs_mem) = faults.observe_power(k, sm_power, pt.mem_power);
        capper.observe_and_step(gpu, obs_sm + obs_mem);
        if let Some(t) = thermal.as_mut() {
            t.step(total, config.dt);
        }

        if k % config.sample_stride.max(1) == 0 {
            samples.push(SimSample {
                t: Seconds::new(k as f64 * dt),
                proc_power: sm_power,
                mem_power: pt.mem_power,
                work_rate: rate,
                temperature_c: thermal.as_ref().map(|t| t.temperature_c()),
            });
        }
    }

    let elapsed = Seconds::new(steps as f64 * config.dt.value());
    Ok(SimResult {
        samples,
        throughput: Throughput {
            work_done: work,
            elapsed,
            energy: Joules::new(energy),
        },
        mean_proc_power: Watts::new(sum_sm / steps.max(1) as f64),
        mean_mem_power: Watts::new(sum_mem / steps.max(1) as f64),
        settled_perf_rel: if half_n > 0 {
            (half_rate / half_n as f64) / nominal_rate
        } else {
            0.0
        },
        settled_power: Watts::new(if half_n > 0 { half_power / half_n as f64 } else { 0.0 }),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::PhaseDemand;
    use crate::{solve_cpu, solve_gpu};
    use pbc_platform::presets::{ivybridge, titan_xp};

    fn cpu_node() -> (CpuSpec, DramSpec) {
        let p = ivybridge();
        (p.cpu().unwrap().clone(), p.dram().unwrap().clone())
    }

    fn config() -> SimConfig {
        SimConfig {
            dt: Seconds::new(0.001),
            duration: Seconds::new(1.0),
            window: 8,
            thermal: None,
            sample_stride: 10,
        }
    }

    #[test]
    fn engine_agrees_with_steady_solver_cpu() {
        let (cpu, dram) = cpu_node();
        for (name, phase) in [
            ("dgemm", PhaseDemand::compute_bound()),
            ("stream", PhaseDemand::stream_bound()),
            ("sra", PhaseDemand::random_bound()),
        ] {
            let w = WorkloadDemand::single(name, phase);
            for alloc in [
                PowerAllocation::new(Watts::new(120.0), Watts::new(100.0)),
                PowerAllocation::new(Watts::new(80.0), Watts::new(120.0)),
                PowerAllocation::new(Watts::new(160.0), Watts::new(60.0)),
            ] {
                let steady = solve_cpu(&cpu, &dram, &w, alloc);
                let sim = simulate_cpu(&cpu, &dram, &w, alloc, &config());
                let rel_err = (sim.settled_perf_rel - steady.perf_rel).abs()
                    / steady.perf_rel.max(1e-9);
                assert!(
                    rel_err < 0.15,
                    "{name} @ {alloc}: engine {} vs steady {}",
                    sim.settled_perf_rel,
                    steady.perf_rel
                );
            }
        }
    }

    #[test]
    fn engine_respects_budget_after_settling_cpu() {
        let (cpu, dram) = cpu_node();
        let w = WorkloadDemand::single("stream", PhaseDemand::stream_bound());
        let alloc = PowerAllocation::new(Watts::new(100.0), Watts::new(80.0));
        let sim = simulate_cpu(&cpu, &dram, &w, alloc, &config());
        // A small transient margin is allowed (running-average control),
        // but the settled mean must respect the budget.
        assert!(
            sim.settled_power.value() <= alloc.total().value() * 1.02,
            "settled at {}",
            sim.settled_power
        );
    }

    #[test]
    fn engine_agrees_with_steady_solver_gpu() {
        let gpu = titan_xp().gpu().unwrap().clone();
        let w = WorkloadDemand::single(
            "sgemm",
            PhaseDemand {
                compute_efficiency: 0.85,
                arithmetic_intensity: 40.0,
                bw_saturation: 0.5,
                pattern_cost: 1.0,
                overlap: 0.95,
                issue_sensitivity: 0.3,
                act_compute: 1.0,
                act_stall: 0.3,
            },
        );
        for total in [140.0, 200.0, 260.0] {
            let alloc = PowerAllocation::new(Watts::new(total - 30.0), Watts::new(30.0));
            let steady = solve_gpu(&gpu, &w, alloc).unwrap();
            let sim = simulate_gpu(&gpu, &w, alloc, &config()).unwrap();
            let rel_err =
                (sim.settled_perf_rel - steady.perf_rel).abs() / steady.perf_rel.max(1e-9);
            assert!(
                rel_err < 0.15,
                "cap {total}: engine {} vs steady {}",
                sim.settled_perf_rel,
                steady.perf_rel
            );
        }
    }

    #[test]
    fn thermal_soak_raises_power_slightly() {
        let (cpu, dram) = cpu_node();
        let w = WorkloadDemand::single("dgemm", PhaseDemand::compute_bound());
        let alloc = PowerAllocation::new(Watts::new(250.0), Watts::new(150.0));
        let cold = simulate_cpu(&cpu, &dram, &w, alloc, &config());
        let mut cfg = config();
        // Reference leakage at ambient and a fast thermal constant so the
        // three simulated seconds actually soak the die.
        cfg.thermal = Some(ThermalParams {
            reference_c: 25.0,
            time_constant: Seconds::new(0.5),
            ..ThermalParams::server_default()
        });
        cfg.duration = Seconds::new(3.0);
        let hot = simulate_cpu(&cpu, &dram, &w, alloc, &cfg);
        // A hot, uncapped package leaks more than the athermal model.
        assert!(hot.settled_power > cold.settled_power);
        let last = hot.samples.last().unwrap();
        assert!(last.temperature_c.unwrap() > 50.0);
    }

    #[test]
    fn phase_cycling_visits_all_phases() {
        let weights = vec![0.25, 0.5, 0.25];
        let mut seen = [false; 3];
        for i in 0..100 {
            seen[phase_at(&weights, i as f64 * 0.0999, 1.0)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        // A longer cycle stretches phases proportionally.
        assert_eq!(phase_at(&weights, 10.0, 100.0), 0);
        assert_eq!(phase_at(&weights, 40.0, 100.0), 1);
        assert_eq!(phase_at(&weights, 90.0, 100.0), 2);
    }

    #[test]
    fn prochot_engages_under_impossible_cooling() {
        // A pathological thermal resistance: the die would soak far past
        // the trip point at full power. PROCHOT must latch and hold the
        // settled power near the floor.
        let (cpu, dram) = cpu_node();
        let w = WorkloadDemand::single("dgemm", PhaseDemand::compute_bound());
        let alloc = PowerAllocation::new(Watts::new(250.0), Watts::new(150.0));
        let mut cfg = config();
        cfg.duration = Seconds::new(2.0);
        cfg.thermal = Some(ThermalParams {
            ambient_c: 25.0,
            resistance_c_per_w: 1.0, // 170 W -> 195 C steady state
            time_constant: Seconds::new(0.2),
            leakage_per_c: 0.0,
            reference_c: 25.0,
            trip_c: 95.0,
        });
        let hot = simulate_cpu(&cpu, &dram, &w, alloc, &cfg);
        // With PROCHOT cycling, the settled package power sits far below
        // the unconstrained ~170 W draw...
        let unconstrained = simulate_cpu(&cpu, &dram, &w, alloc, &config());
        assert!(
            hot.settled_power.value() < 0.75 * unconstrained.settled_power.value(),
            "PROCHOT must shed power: {} vs {}",
            hot.settled_power,
            unconstrained.settled_power
        );
        // ...and the die temperature is regulated near the trip point, not
        // at the 190+ C the open loop would reach.
        let last = hot.samples.last().unwrap().temperature_c.unwrap();
        assert!(last < 110.0, "temperature ran away: {last} C");
    }

    #[test]
    fn reprogramming_events_take_effect() {
        let (cpu, dram) = cpu_node();
        let w = WorkloadDemand::single("stream", PhaseDemand::stream_bound());
        let generous = PowerAllocation::new(Watts::new(150.0), Watts::new(120.0));
        let tight = PowerAllocation::new(Watts::new(70.0), Watts::new(60.0));
        let mut cfg = config();
        cfg.duration = Seconds::new(2.0);
        // Cut the budget at t=1s; the settled window (second half) sees
        // only the tight regime.
        let sim = simulate_cpu_with_events(
            &cpu,
            &dram,
            &w,
            generous,
            &[(Seconds::new(1.0), tight)],
            &cfg,
        );
        let steady_tight = solve_cpu(&cpu, &dram, &w, tight);
        let rel = (sim.settled_perf_rel - steady_tight.perf_rel).abs()
            / steady_tight.perf_rel.max(1e-9);
        assert!(
            rel < 0.2,
            "after the cut the engine must settle at the tight point: {} vs {}",
            sim.settled_perf_rel,
            steady_tight.perf_rel
        );
        // The trace shows the transition: early samples draw much more
        // than late ones.
        let early = sim.samples.iter().find(|s| s.t.value() < 0.5).unwrap();
        let late = sim.samples.iter().rev().find(|s| s.t.value() > 1.5).unwrap();
        assert!(early.proc_power.value() > late.proc_power.value() + 20.0);
    }

    #[test]
    fn no_events_matches_plain_simulation() {
        let (cpu, dram) = cpu_node();
        let w = WorkloadDemand::single("sra", PhaseDemand::random_bound());
        let alloc = PowerAllocation::new(Watts::new(100.0), Watts::new(100.0));
        let plain = simulate_cpu(&cpu, &dram, &w, alloc, &config());
        let evented = simulate_cpu_with_events(&cpu, &dram, &w, alloc, &[], &config());
        assert!((plain.settled_perf_rel - evented.settled_perf_rel).abs() < 1e-9);
        assert_eq!(plain.samples.len(), evented.samples.len());
    }

    #[test]
    fn fault_hook_default_is_identity() {
        let (cpu, dram) = cpu_node();
        let w = WorkloadDemand::single("stream", PhaseDemand::stream_bound());
        let alloc = PowerAllocation::new(Watts::new(100.0), Watts::new(80.0));
        let plain = simulate_cpu(&cpu, &dram, &w, alloc, &config());
        let hooked = simulate_cpu_faulty(&cpu, &dram, &w, alloc, &config(), &mut NoFault);
        assert_eq!(plain.samples.len(), hooked.samples.len());
        assert!((plain.settled_perf_rel - hooked.settled_perf_rel).abs() < 1e-12);
    }

    /// A sensor that under-reports the package draw makes RAPL think it
    /// has headroom: the node genuinely settles *above* the cap. The hook
    /// must reach the controllers for that to happen.
    #[test]
    fn lying_sensor_defeats_the_cap() {
        struct UnderReport;
        impl SimFault for UnderReport {
            fn observe_power(&mut self, _k: usize, proc: Watts, mem: Watts) -> (Watts, Watts) {
                (proc * 0.5, mem)
            }
        }
        let (cpu, dram) = cpu_node();
        let w = WorkloadDemand::single("dgemm", PhaseDemand::compute_bound());
        let alloc = PowerAllocation::new(Watts::new(90.0), Watts::new(80.0));
        let honest = simulate_cpu(&cpu, &dram, &w, alloc, &config());
        let lied = simulate_cpu_faulty(&cpu, &dram, &w, alloc, &config(), &mut UnderReport);
        assert!(
            lied.settled_power.value() > honest.settled_power.value() + 10.0,
            "halved sensor must let the package run hot: honest {} vs lied {}",
            honest.settled_power,
            lied.settled_power
        );
    }

    #[test]
    fn trace_is_decimated() {
        let (cpu, dram) = cpu_node();
        let w = WorkloadDemand::single("stream", PhaseDemand::stream_bound());
        let alloc = PowerAllocation::new(Watts::new(120.0), Watts::new(90.0));
        let mut cfg = config();
        cfg.sample_stride = 100;
        let sim = simulate_cpu(&cpu, &dram, &w, alloc, &cfg);
        assert!(sim.samples.len() <= 11);
        assert!(!sim.samples.is_empty());
    }

    #[test]
    fn trace_capacity_is_exact() {
        // The sample vector is sized up front with div_ceil(steps,
        // stride); the push loop must fill it exactly — no reallocation
        // (growth) and no slack (over-allocation).
        let (cpu, dram) = cpu_node();
        let w = WorkloadDemand::single("stream", PhaseDemand::stream_bound());
        let alloc = PowerAllocation::new(Watts::new(120.0), Watts::new(90.0));
        for stride in [1usize, 3, 7, 10, 100, 1000, 5000] {
            let mut cfg = config();
            cfg.sample_stride = stride;
            let sim = simulate_cpu(&cpu, &dram, &w, alloc, &cfg);
            let steps = cfg.steps();
            assert_eq!(sim.samples.len(), steps.div_ceil(stride), "stride {stride}");
            assert_eq!(
                sim.samples.capacity(),
                sim.samples.len(),
                "stride {stride}: capacity {} for {} samples",
                sim.samples.capacity(),
                sim.samples.len()
            );
        }
    }
}
