//! A dynamic GPU card-level capper: the boost governor.
//!
//! The memory clock level is pinned by the user's frequency offset (i.e.
//! the memory power allocation); the governor then moves the SM clock one
//! step per control period to keep the windowed *total* card power under
//! the card cap. Surplus left by the memory domain is therefore reclaimed
//! for SM boost automatically — the §4 behaviour the paper contrasts with
//! RAPL's independent domains.

use pbc_platform::GpuSpec;
use pbc_types::{PbcError, Result, Watts};
use std::collections::VecDeque;

/// Windowed card-power governor.
#[derive(Debug, Clone)]
pub struct GpuCapper {
    card_cap: Watts,
    mem_level: usize,
    sm_clock: usize,
    window: usize,
    history: VecDeque<f64>,
    upstep_margin: f64,
}

impl GpuCapper {
    /// Create a governor for `card_cap` with the memory clock pinned at
    /// `mem_level`. Rejects caps outside the card's settable range
    /// (below the minimum is an error; above the maximum clamps, like
    /// `nvidia-smi`).
    #[must_use = "constructing a governor has no effect until it is driven"]
    pub fn new(gpu: &GpuSpec, card_cap: Watts, mem_level: usize, window: usize) -> Result<Self> {
        if card_cap < gpu.min_card_cap {
            return Err(PbcError::CapOutOfRange {
                component: gpu.name.clone(),
                requested: card_cap,
                min: gpu.min_card_cap,
                max: gpu.max_card_cap,
            });
        }
        Ok(Self {
            card_cap: card_cap.min(gpu.max_card_cap),
            mem_level: mem_level.min(gpu.mem.top()),
            sm_clock: gpu.sm.top(),
            window: window.max(1),
            history: VecDeque::with_capacity(window.max(1)),
            upstep_margin: 0.97,
        })
    }

    /// The enforced card cap (after clamping to the settable range).
    pub fn card_cap(&self) -> Watts {
        self.card_cap
    }

    /// Pinned memory clock level.
    pub fn mem_level(&self) -> usize {
        self.mem_level
    }

    /// Current SM clock index.
    pub fn sm_clock(&self) -> usize {
        self.sm_clock
    }

    /// Windowed running-average of observed total card power.
    pub fn running_average(&self) -> Watts {
        if self.history.is_empty() {
            Watts::ZERO
        } else {
            Watts::new(self.history.iter().sum::<f64>() / self.history.len() as f64)
        }
    }

    /// Feed one total-power sample and take at most one SM clock step.
    /// Returns the new SM clock index.
    pub fn observe_and_step(&mut self, gpu: &GpuSpec, total_power: Watts) -> usize {
        if self.history.len() == self.window {
            self.history.pop_front();
        }
        self.history.push_back(total_power.value());
        let avg = self.running_average();
        if avg > self.card_cap {
            // Clock down, but never below the lowest exposed clock — the
            // driver guard that keeps GPUs out of categories IV-VI.
            self.sm_clock = self.sm_clock.saturating_sub(1);
        } else if avg < self.card_cap * self.upstep_margin && self.sm_clock < gpu.sm.top() {
            // Predict the next clock's draw by scaling the SM share of the
            // measurement with the state power ratio.
            let cur = gpu.sm.power_at(self.sm_clock, 1.0).value();
            let next = gpu.sm.power_at(self.sm_clock + 1, 1.0).value();
            let mem_floor = gpu.mem.power_at(self.mem_level, pbc_types::Bandwidth::ZERO);
            let sm_share = (total_power - mem_floor).max(Watts::ZERO);
            let predicted = mem_floor + Watts::new(sm_share.value() * next / cur.max(1e-9));
            if predicted <= self.card_cap {
                self.sm_clock += 1;
            }
        }
        self.sm_clock
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbc_platform::presets::titan_xp;
    use pbc_types::Bandwidth;

    fn gpu() -> GpuSpec {
        titan_xp().gpu().unwrap().clone()
    }

    #[test]
    fn rejects_sub_minimum_caps() {
        let g = gpu();
        assert!(GpuCapper::new(&g, Watts::new(80.0), 5, 4).is_err());
    }

    #[test]
    fn clamps_oversized_caps() {
        let g = gpu();
        let c = GpuCapper::new(&g, Watts::new(500.0), 5, 4).unwrap();
        assert_eq!(c.card_cap(), g.max_card_cap);
    }

    #[test]
    fn clocks_down_under_sustained_overdraw() {
        let g = gpu();
        let mut c = GpuCapper::new(&g, Watts::new(150.0), g.mem.top(), 1).unwrap();
        let top = c.sm_clock();
        for _ in 0..4 {
            c.observe_and_step(&g, Watts::new(260.0));
        }
        assert!(c.sm_clock() < top);
    }

    #[test]
    fn never_clocks_below_floor() {
        let g = gpu();
        let mut c = GpuCapper::new(&g, Watts::new(125.0), g.mem.top(), 1).unwrap();
        for _ in 0..(g.sm.len() + 5) {
            c.observe_and_step(&g, Watts::new(400.0));
        }
        assert_eq!(c.sm_clock(), 0);
    }

    #[test]
    fn closed_loop_settles_under_cap() {
        let g = gpu();
        let cap = Watts::new(180.0);
        let mem_level = 4;
        let mut c = GpuCapper::new(&g, cap, mem_level, 3).unwrap();
        // Closed loop: a compute-heavy kernel draws SM power at activity
        // 0.95 plus a modest memory draw.
        let mut total = Watts::ZERO;
        for _ in 0..100 {
            let sm = g.sm.power_at(c.sm_clock(), 0.95);
            let mem = g.mem.power_at(mem_level, Bandwidth::new(100.0));
            total = sm + mem;
            c.observe_and_step(&g, total);
        }
        assert!(total <= cap + Watts::new(1e-9), "settled at {total}");
        // Reclamation sanity: with a lower memory level the governor can
        // afford a higher SM clock under the same cap.
        let mut c_low = GpuCapper::new(&g, cap, 0, 3).unwrap();
        for _ in 0..100 {
            let sm = g.sm.power_at(c_low.sm_clock(), 0.95);
            let mem = g.mem.power_at(0, Bandwidth::new(100.0));
            c_low.observe_and_step(&g, sm + mem);
        }
        assert!(c_low.sm_clock() >= c.sm_clock());
    }
}
