//! A bounded, process-wide LRU registry of shared immutable values.
//!
//! This generalizes the [`crate::memo::SolveMemo`] sharing pattern: a
//! `String`-fingerprinted map of `Arc<T>` handles with a capacity bound
//! and least-recently-used eviction. Eviction only drops the registry's
//! route to a value — live `Arc` holders keep theirs — so a registry
//! can never invalidate a handle it already gave out. That is exactly
//! the lock-free read discipline the steady-state fast path needs:
//! readers clone an `Arc` once and then never touch the registry mutex
//! again.

use pbc_types::Result;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard};

/// Poison-tolerant lock: a panicking holder must not wedge every later
/// caller (the sweep's panic contract re-raises on the calling thread,
/// so the data behind the mutex is still consistent).
pub(crate) fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

struct Inner<T> {
    /// fingerprint → (value, last-use stamp).
    entries: HashMap<String, (Arc<T>, u64)>,
    /// Monotone use counter driving the LRU stamps.
    clock: u64,
}

/// A bounded registry of shared `Arc<T>` values keyed by an exact
/// fingerprint string. When an insert would overflow `capacity`, the
/// least-recently-used entry is dropped (optionally counted under an
/// eviction counter from `pbc_trace::names`).
pub struct BoundedRegistry<T> {
    capacity: usize,
    eviction_counter: Option<&'static str>,
    inner: Mutex<Inner<T>>,
}

impl<T> BoundedRegistry<T> {
    /// Build an empty registry bounded at `capacity` entries. Evictions
    /// increment `eviction_counter` when one is given.
    #[must_use]
    pub fn new(capacity: usize, eviction_counter: Option<&'static str>) -> Self {
        Self {
            capacity: capacity.max(1),
            eviction_counter,
            inner: Mutex::new(Inner { entries: HashMap::new(), clock: 0 }),
        }
    }

    /// The value registered under `key`, freshening its LRU stamp.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<Arc<T>> {
        let mut inner = lock(&self.inner);
        inner.clock += 1;
        let now = inner.clock;
        inner.entries.get_mut(key).map(|(value, stamp)| {
            *stamp = now;
            Arc::clone(value)
        })
    }

    /// The value registered under `key`, building (and registering) it
    /// if absent. The build runs *under the registry lock*, so it must
    /// be cheap — constructing an empty cache, not filling one. For
    /// expensive builds use [`Self::get_or_try_build`].
    pub fn get_or_build(&self, key: &str, build: impl FnOnce() -> T) -> Arc<T> {
        let mut inner = lock(&self.inner);
        inner.clock += 1;
        let now = inner.clock;
        if let Some((value, stamp)) = inner.entries.get_mut(key) {
            *stamp = now;
            return Arc::clone(value);
        }
        let value = Arc::new(build());
        self.insert_bounded(&mut inner, key, Arc::clone(&value), now);
        value
    }

    /// Like [`Self::get_or_build`] for fallible, *expensive* builds: the
    /// build runs with the registry unlocked (it may itself run pooled
    /// sweeps), then the result is inserted double-checked — if another
    /// thread registered `key` while this one was building, the earlier
    /// entry wins and is returned, so all callers share one handle.
    #[must_use = "the registry result carries either the shared handle or the build failure"]
    pub fn get_or_try_build(
        &self,
        key: &str,
        build: impl FnOnce() -> Result<T>,
    ) -> Result<Arc<T>> {
        if let Some(existing) = self.get(key) {
            return Ok(existing);
        }
        let built = Arc::new(build()?);
        let mut inner = lock(&self.inner);
        inner.clock += 1;
        let now = inner.clock;
        if let Some((value, stamp)) = inner.entries.get_mut(key) {
            *stamp = now;
            return Ok(Arc::clone(value));
        }
        self.insert_bounded(&mut inner, key, Arc::clone(&built), now);
        Ok(built)
    }

    fn insert_bounded(&self, inner: &mut Inner<T>, key: &str, value: Arc<T>, now: u64) {
        while inner.entries.len() >= self.capacity {
            // Evict the least-recently-used fingerprint to stay bounded.
            let oldest = inner
                .entries
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(k, _)| k.clone());
            match oldest {
                Some(k) => {
                    inner.entries.remove(&k);
                    if let Some(name) = self.eviction_counter {
                        pbc_trace::counter(name).incr();
                    }
                }
                None => break,
            }
        }
        inner.entries.insert(key.to_string(), (value, now));
    }

    /// Drop every registered entry (live `Arc` holders are unaffected).
    pub fn clear(&self) {
        lock(&self.inner).entries.clear();
    }

    /// Entries currently registered (≤ capacity).
    #[must_use]
    pub fn len(&self) -> usize {
        lock(&self.inner).entries.len()
    }

    /// True when nothing is registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbc_types::PbcError;

    #[test]
    fn get_or_build_shares_one_handle() {
        let reg: BoundedRegistry<u32> = BoundedRegistry::new(4, None);
        let a = reg.get_or_build("k", || 7);
        let b = reg.get_or_build("k", || unreachable!("already registered"));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(*a, 7);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn capacity_bound_evicts_least_recently_used() {
        let reg: BoundedRegistry<usize> = BoundedRegistry::new(3, None);
        for i in 0..3 {
            let _ = reg.get_or_build(&format!("k{i}"), || i);
        }
        // Touch k0 so k1 is the LRU victim.
        assert!(reg.get("k0").is_some());
        let _ = reg.get_or_build("k3", || 3);
        assert_eq!(reg.len(), 3);
        assert!(reg.get("k0").is_some());
        assert!(reg.get("k1").is_none(), "LRU entry must be evicted");
        assert!(reg.get("k3").is_some());
    }

    #[test]
    fn try_build_propagates_errors_and_registers_successes() {
        let reg: BoundedRegistry<u32> = BoundedRegistry::new(4, None);
        let err = reg.get_or_try_build("bad", || {
            Err(PbcError::InvalidInput("nope".into()))
        });
        assert!(err.is_err());
        assert!(reg.is_empty(), "failed builds must not register");
        let ok = reg.get_or_try_build("good", || Ok(5)).unwrap();
        let again = reg.get_or_try_build("good", || Ok(99)).unwrap();
        assert!(Arc::ptr_eq(&ok, &again));
        assert_eq!(*again, 5, "the first successful build wins");
    }

    #[test]
    fn clear_drops_routes_but_not_live_handles() {
        let reg: BoundedRegistry<String> = BoundedRegistry::new(4, None);
        let held = reg.get_or_build("k", || "v".to_string());
        reg.clear();
        assert!(reg.is_empty());
        assert_eq!(held.as_str(), "v");
    }
}
