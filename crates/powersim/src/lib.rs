//! # pbc-powersim
//!
//! The hardware substrate of the reproduction: a node power simulator that
//! implements the capping mechanisms the paper's analysis (§3.3) attributes
//! the observed behaviour to.
//!
//! ## What is simulated
//!
//! * **RAPL PKG-domain capping** ([`rapl`]) — the escalation ladder: DVFS
//!   P-states first, then T-state clock modulation, then (conceptually)
//!   sleep states, with the `P_cpu,L4` hardware floor below which a cap is
//!   unenforceable.
//! * **RAPL DRAM-domain capping** ([`memctl`]) — bandwidth throttling with
//!   a background-power floor that is disregarded by lower caps.
//! * **The GPU card-level capper** ([`gpuctl`]) — memory clock level from
//!   the memory allocation, then the boost governor picks the highest SM
//!   clock whose *total* draw fits the card cap, automatically reclaiming
//!   unused memory budget (the §4 mechanism difference vs. the host).
//! * **Workload composition** ([`demand`], [`cpunode`], [`gpunode`]) — a
//!   phase-based roofline-with-overlap model: per phase, compute time and
//!   memory time under the capped component rates combine through an
//!   overlap factor, with the memory request rate itself scaled by
//!   processor speed (the feedback that produces scenario IV's collapse
//!   and the DRAM power drop the paper reports there).
//! * **Dynamics** ([`engine`], [`thermal`]) — a discrete-time engine in
//!   which the controllers observe a running-average power and walk their
//!   ladders step by step, plus an RC thermal model feeding back into
//!   leakage. The steady-state solvers above are the fast path used by
//!   sweeps; the engine exists to validate them and to study transients.
//!
//! ## Two solvers, one contract
//!
//! [`cpunode::solve_cpu`] and [`gpunode::solve_gpu`] both map
//! `(platform, workload demand, allocation)` to a [`NodeOperatingPoint`]:
//! relative performance, per-component actual powers, and the mechanism
//! state (P-state index, duty cycle, achieved bandwidth). Everything in
//! `pbc-core` — sweeps, scenario categorization, COORD — is written
//! against this contract.

pub mod corun;
pub mod cpunode;
pub mod demand;
pub mod engine;
pub mod gpuctl;
pub mod gpunode;
pub mod memctl;
pub mod memo;
pub mod operating;
pub mod rapl;
pub mod registry;
pub mod sockets;
pub mod thermal;

pub use corun::{coordinate_corun, solve_corun, CorunPoint};
pub use cpunode::solve_cpu;
pub use engine::{
    simulate_cpu, simulate_cpu_faulty, simulate_cpu_with_events, simulate_gpu,
    simulate_gpu_faulty, NoFault, SimConfig, SimFault, SimResult, SimSample,
};
pub use demand::{PhaseDemand, WorkloadDemand};
pub use gpuctl::GpuCapper;
pub use gpunode::{solve_gpu, uncapped_demand};
pub use memctl::DramThrottle;
pub use memo::SolveMemo;
pub use operating::{CpuMechanismState, GpuMechanismState, MechanismState, NodeOperatingPoint};
pub use rapl::RaplController;
pub use registry::BoundedRegistry;
pub use sockets::{coordinate_sockets, single_socket_spec, solve_per_socket, SocketOperatingPoint};
pub use thermal::{ThermalModel, ThermalParams};

use pbc_platform::{NodeSpec, Platform};
use pbc_types::{PowerAllocation, Result};

/// Solve the steady-state operating point for any platform kind. Dispatches
/// to [`solve_cpu`] or [`solve_gpu`].
///
/// Every call increments the `solve.evaluations` trace counter; outcomes
/// split into `solve.infeasible` (the allocation is not schedulable —
/// see [`pbc_types::PbcError::is_infeasible`]) and `solve.errors` (a
/// real failure).
#[must_use = "the operating point or the solver failure must be inspected"]
pub fn solve(
    platform: &Platform,
    demand: &WorkloadDemand,
    alloc: PowerAllocation,
) -> Result<NodeOperatingPoint> {
    // solve() is the sweep's inner loop: cache the counter handles once
    // so the per-call cost is a single relaxed atomic add, not a
    // registry-mutex lookup. Registering all three together also means a
    // trace always carries the error counters, even at zero.
    use std::sync::OnceLock;
    static COUNTERS: OnceLock<(pbc_trace::Counter, pbc_trace::Counter, pbc_trace::Counter)> =
        OnceLock::new();
    let (evals, infeasible, errors) = COUNTERS.get_or_init(|| {
        (
            pbc_trace::counter(pbc_trace::names::SOLVE_EVALUATIONS),
            pbc_trace::counter(pbc_trace::names::SOLVE_INFEASIBLE),
            pbc_trace::counter(pbc_trace::names::SOLVE_ERRORS),
        )
    });
    evals.incr();
    let result = match &platform.spec {
        NodeSpec::Cpu { cpu, dram } => Ok(solve_cpu(cpu, dram, demand, alloc)),
        NodeSpec::Gpu(gpu) => solve_gpu(gpu, demand, alloc),
    };
    if let Err(e) = &result {
        if e.is_infeasible() {
            infeasible.incr();
        } else {
            errors.incr();
        }
    }
    result
}
