//! Memoized solving: a canonical-key cache over [`solve_cpu`] /
//! [`solve_gpu`] for callers that solve many allocations of the same
//! `(platform, demand)` problem — the shared-grid oracle, COORD
//! profiling, critical-power boundary walks, baseline comparisons.
//!
//! ## Why the keys are exact, not approximate
//!
//! A naive memo would quantize the allocation to a fixed grid and accept
//! near-miss lookups; that trades accuracy for hits and would break the
//! repo's bit-identical equivalence tests. Instead the key is the tuple
//! of values the solver *actually* depends on, exploiting the hardware
//! models' own quantization:
//!
//! * **CPU** — `alloc.mem` enters the solver only through
//!   [`dram_bw_ceiling`], which quantizes the cap down to the DRAM
//!   throttle grid (and floors/saturates it); `alloc.proc` enters only
//!   as the RAPL comparison cap. The key is therefore
//!   `(proc-cap bits, per-phase bandwidth-ceiling bits)`: two
//!   allocations with equal keys are *provably* solved to the same
//!   operating point, and distinct solver inputs always get distinct
//!   keys. On a hit only `alloc` itself is patched onto the cached
//!   point.
//! * **GPU** — the solver depends on `(effective card cap, memory clock
//!   level, and — only on non-reclaiming cards — the SM share)`. Within
//!   one budget's sweep every allocation shares the card cap, so a
//!   reclaiming card collapses to roughly one solve per exposed memory
//!   level. On a hit `alloc` and the derived `reclaimed` watts are
//!   recomputed exactly as the solver would.
//!
//! The nominal (unconstrained) reference time depends only on the
//! problem, never the allocation, so each memo computes it once — this
//! alone halves the CPU solver's cost even at a 0% hit rate.
//!
//! Hits and misses are observable as `solve.cache_hits` /
//! `solve.cache_misses`. Memoized misses call the split solver entry
//! points directly and are *not* counted in `solve.evaluations`, which
//! keeps that counter an honest measure of full-price solver work.

use crate::cpunode::{self, dram_bw_ceiling, solve_cpu_with_nominal};
use crate::demand::WorkloadDemand;
use crate::gpunode::{self, check_card_cap, solve_gpu_with_nominal};
use crate::operating::{MechanismState, NodeOperatingPoint};
use crate::registry::{lock, BoundedRegistry};
use pbc_platform::{CpuSpec, DramSpec, GpuSpec, NodeSpec, Platform};
use pbc_types::{PowerAllocation, Result, Watts};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Canonical cache key: exactly the solver's effective inputs.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Key {
    Cpu {
        proc_bits: u64,
        /// Per-phase quantized bandwidth ceilings (f64 bit patterns).
        bw_bits: Vec<u64>,
    },
    Gpu {
        card_cap_bits: u64,
        mem_level: usize,
        /// SM-share bit pattern on non-reclaiming cards; `None` on
        /// reclaiming cards, where the SM share never enters the solve.
        sm_bits: Option<u64>,
    },
}

enum Bound {
    Cpu { cpu: CpuSpec, dram: DramSpec },
    Gpu(GpuSpec),
}

/// A memoized solver for one `(platform, demand)` problem. Thread-safe:
/// the shared-grid oracle hits one memo from every pool executor.
pub struct SolveMemo {
    bound: Bound,
    demand: WorkloadDemand,
    nominal: OnceLock<f64>,
    cache: Mutex<HashMap<Key, NodeOperatingPoint>>,
}

/// Most shared memos the registry keeps. One sweep touches a handful of
/// `(hardware, demand)` pairs; a long-running cluster loop cycling
/// through workload phases used to accrete one memo per pair it ever
/// saw, forever. 64 covers every preset × benchmark combination the
/// workspace ships with headroom, while bounding the worst case.
pub const MAX_SHARED_MEMOS: usize = 64;

/// Process-wide memo registry, keyed by an exact fingerprint of the
/// problem (the debug rendering of the full spec and demand — verbose,
/// but collision-free). A [`BoundedRegistry`] capped at
/// [`MAX_SHARED_MEMOS`]: when a new fingerprint would overflow it, the
/// least-recently-used entry is evicted (counted under
/// `solve.cache_evictions`). Live `Arc` handles keep an evicted memo's
/// caches alive for their holders — eviction only drops the registry's
/// route to it. `clear_shared` exists for cold-cache benchmarking.
fn registry() -> &'static BoundedRegistry<SolveMemo> {
    static REGISTRY: OnceLock<BoundedRegistry<SolveMemo>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        BoundedRegistry::new(
            MAX_SHARED_MEMOS,
            Some(pbc_trace::names::SOLVE_CACHE_EVICTIONS),
        )
    })
}

impl SolveMemo {
    /// The shared memo for a host-node problem.
    pub fn for_cpu(cpu: &CpuSpec, dram: &DramSpec, demand: &WorkloadDemand) -> Arc<SolveMemo> {
        registry().get_or_build(&format!("cpu|{cpu:?}|{dram:?}|{demand:?}"), || SolveMemo {
            bound: Bound::Cpu { cpu: cpu.clone(), dram: dram.clone() },
            demand: demand.clone(),
            nominal: OnceLock::new(),
            cache: Mutex::new(HashMap::new()),
        })
    }

    /// The shared memo for a GPU-card problem.
    pub fn for_gpu(gpu: &GpuSpec, demand: &WorkloadDemand) -> Arc<SolveMemo> {
        registry().get_or_build(&format!("gpu|{gpu:?}|{demand:?}"), || SolveMemo {
            bound: Bound::Gpu(gpu.clone()),
            demand: demand.clone(),
            nominal: OnceLock::new(),
            cache: Mutex::new(HashMap::new()),
        })
    }

    /// The shared memo for any platform kind (dispatches like
    /// [`crate::solve`]).
    pub fn for_problem(platform: &Platform, demand: &WorkloadDemand) -> Arc<SolveMemo> {
        match &platform.spec {
            NodeSpec::Cpu { cpu, dram } => Self::for_cpu(cpu, dram, demand),
            NodeSpec::Gpu(gpu) => Self::for_gpu(gpu, demand),
        }
    }

    /// A private (unshared) memo — for tests and benches that need a
    /// cold cache regardless of what the rest of the process solved.
    pub fn fresh(platform: &Platform, demand: &WorkloadDemand) -> SolveMemo {
        let bound = match &platform.spec {
            NodeSpec::Cpu { cpu, dram } => Bound::Cpu { cpu: cpu.clone(), dram: dram.clone() },
            NodeSpec::Gpu(gpu) => Bound::Gpu(gpu.clone()),
        };
        SolveMemo {
            bound,
            demand: demand.clone(),
            nominal: OnceLock::new(),
            cache: Mutex::new(HashMap::new()),
        }
    }

    /// Drop every shared memo. Benches call this between iterations so
    /// timings measure a cold cache instead of earlier iterations' work.
    pub fn clear_shared() {
        registry().clear();
    }

    /// Shared memos currently registered (≤ [`MAX_SHARED_MEMOS`]).
    pub fn shared_len() -> usize {
        registry().len()
    }

    /// Cached entries in this memo.
    pub fn len(&self) -> usize {
        lock(&self.cache).len()
    }

    /// True when nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Solve `alloc`, through the cache. Results are bit-identical to
    /// the un-memoized solver (see the module docs for why).
    #[must_use = "the operating point or the solver failure must be inspected"]
    pub fn solve(&self, alloc: PowerAllocation) -> Result<NodeOperatingPoint> {
        self.solve_traced(alloc).0
    }

    /// [`SolveMemo::solve`], also reporting whether the cache served the
    /// result (`true` = hit). The shared-grid oracle uses this for its
    /// `sweep.curve_reuse_hits` accounting.
    #[must_use = "the operating point or the solver failure must be inspected"]
    pub fn solve_traced(&self, alloc: PowerAllocation) -> (Result<NodeOperatingPoint>, bool) {
        static COUNTERS: OnceLock<(pbc_trace::Counter, pbc_trace::Counter)> = OnceLock::new();
        let (hits_c, misses_c) = COUNTERS.get_or_init(|| {
            (
                pbc_trace::counter(pbc_trace::names::SOLVE_CACHE_HITS),
                pbc_trace::counter(pbc_trace::names::SOLVE_CACHE_MISSES),
            )
        });
        match &self.bound {
            Bound::Cpu { cpu, dram } => {
                let bw_bits: Vec<u64> = self
                    .demand
                    .phases
                    .iter()
                    .map(|(_, p)| {
                        dram_bw_ceiling(dram, alloc.mem, p.pattern_cost).value().to_bits()
                    })
                    .collect();
                let key = Key::Cpu { proc_bits: alloc.proc.value().to_bits(), bw_bits };
                if let Some(cached) = lock(&self.cache).get(&key) {
                    hits_c.incr();
                    let mut op = cached.clone();
                    op.alloc = alloc;
                    return (Ok(op), true);
                }
                misses_c.incr();
                let t_nominal =
                    *self.nominal.get_or_init(|| cpunode::nominal_time(cpu, dram, &self.demand));
                let op = solve_cpu_with_nominal(cpu, dram, &self.demand, alloc, t_nominal);
                lock(&self.cache).insert(key, op.clone());
                (Ok(op), false)
            }
            Bound::Gpu(gpu) => {
                // Infeasible caps are rejected per call, not cached:
                // rejection is already cheaper than a cache probe.
                let card_cap = match check_card_cap(gpu, alloc) {
                    Ok(cap) => cap,
                    Err(e) => return (Err(e), false),
                };
                let key = Key::Gpu {
                    card_cap_bits: card_cap.value().to_bits(),
                    mem_level: gpu.mem.level_under_cap(alloc.mem),
                    sm_bits: if gpu.reclaims_unused {
                        None
                    } else {
                        Some(alloc.proc.value().to_bits())
                    },
                };
                if let Some(cached) = lock(&self.cache).get(&key) {
                    hits_c.incr();
                    let mut op = cached.clone();
                    op.alloc = alloc;
                    if let MechanismState::Gpu(st) = &mut op.mechanism {
                        // Recompute the derived reclaimed watts exactly
                        // as the solver does for this allocation.
                        st.reclaimed = if gpu.reclaims_unused {
                            (op.proc_power - alloc.proc).max(Watts::ZERO)
                        } else {
                            Watts::ZERO
                        };
                    }
                    return (Ok(op), true);
                }
                misses_c.incr();
                let t_nom =
                    *self.nominal.get_or_init(|| gpunode::nominal_time_gpu(gpu, &self.demand));
                let result = solve_gpu_with_nominal(gpu, &self.demand, alloc, t_nom);
                if let Ok(op) = &result {
                    lock(&self.cache).insert(key, op.clone());
                }
                (result, false)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::PhaseDemand;
    use crate::solve;
    use pbc_platform::presets::{haswell, ivybridge, titan_xp};
    use pbc_types::Watts;

    fn cpu_demands() -> Vec<WorkloadDemand> {
        vec![
            WorkloadDemand::single("sra-like", PhaseDemand::random_bound()),
            WorkloadDemand::single("stream-like", PhaseDemand::stream_bound()),
            WorkloadDemand::single("dgemm-like", PhaseDemand::compute_bound()),
            WorkloadDemand::phased(
                "mixed",
                vec![
                    (0.7, PhaseDemand::compute_bound()),
                    (0.3, PhaseDemand::stream_bound()),
                ],
            ),
        ]
    }

    fn sgemm_like() -> WorkloadDemand {
        WorkloadDemand::single(
            "sgemm-like",
            PhaseDemand {
                compute_efficiency: 0.85,
                arithmetic_intensity: 40.0,
                bw_saturation: 0.5,
                pattern_cost: 1.0,
                overlap: 0.95,
                issue_sensitivity: 0.3,
                act_compute: 1.0,
                act_stall: 0.3,
            },
        )
    }

    fn gpu_stream_like() -> WorkloadDemand {
        WorkloadDemand::single(
            "gpu-stream-like",
            PhaseDemand {
                compute_efficiency: 0.12,
                arithmetic_intensity: 0.08,
                bw_saturation: 0.95,
                pattern_cost: 1.0,
                overlap: 0.9,
                issue_sensitivity: 0.5,
                act_compute: 0.7,
                act_stall: 0.3,
            },
        )
    }

    fn op_bits(op: &NodeOperatingPoint) -> Vec<u64> {
        vec![
            op.alloc.proc.value().to_bits(),
            op.alloc.mem.value().to_bits(),
            op.perf_rel.to_bits(),
            op.proc_power.value().to_bits(),
            op.mem_power.value().to_bits(),
            op.work_rate.to_bits(),
            op.bandwidth.value().to_bits(),
            op.proc_busy.to_bits(),
        ]
    }

    #[test]
    fn cpu_memo_matches_direct_solver_bit_for_bit() {
        for platform in [ivybridge(), haswell()] {
            for demand in cpu_demands() {
                let memo = SolveMemo::fresh(&platform, &demand);
                for proc in (60..=200).step_by(7) {
                    for mem in (40..=160).step_by(11) {
                        let alloc = PowerAllocation::new(
                            Watts::new(proc as f64),
                            Watts::new(mem as f64),
                        );
                        let direct = solve(&platform, &demand, alloc).unwrap();
                        let memoed = memo.solve(alloc).unwrap();
                        assert_eq!(
                            op_bits(&direct),
                            op_bits(&memoed),
                            "{} {alloc:?}",
                            demand.name
                        );
                        assert_eq!(direct.mechanism, memoed.mechanism);
                    }
                }
                // The throttle grid decides how much the mem axis
                // collapses; the hard guarantee is only that the cache
                // never exceeds the distinct solver inputs.
                assert!(memo.len() <= 21 * 11, "{} cached", memo.len());
            }
        }
    }

    #[test]
    fn gpu_memo_matches_direct_solver_bit_for_bit() {
        let platform = titan_xp();
        for demand in [sgemm_like(), gpu_stream_like()] {
            let memo = SolveMemo::fresh(&platform, &demand);
            for total in [130.0, 140.0, 200.0, 250.0, 300.0] {
                for mem_frac in [0.1, 0.25, 0.4, 0.6] {
                    let mem = total * mem_frac;
                    let alloc = PowerAllocation::new(Watts::new(total - mem), Watts::new(mem));
                    let direct = solve(&platform, &demand, alloc).unwrap();
                    let memoed = memo.solve(alloc).unwrap();
                    assert_eq!(op_bits(&direct), op_bits(&memoed), "{} {alloc:?}", demand.name);
                    assert_eq!(direct.mechanism, memoed.mechanism);
                }
            }
        }
    }

    #[test]
    fn gpu_memo_rejects_infeasible_like_the_solver() {
        let platform = titan_xp();
        let demand = sgemm_like();
        let memo = SolveMemo::fresh(&platform, &demand);
        let alloc = PowerAllocation::new(Watts::new(40.0), Watts::new(30.0));
        let direct = solve(&platform, &demand, alloc).unwrap_err();
        let memoed = memo.solve(alloc).unwrap_err();
        assert_eq!(direct, memoed);
        assert!(memo.is_empty(), "errors must not be cached");
    }

    #[test]
    fn second_solve_is_a_hit() {
        let platform = ivybridge();
        let demand = WorkloadDemand::single("sra-like", PhaseDemand::random_bound());
        let memo = SolveMemo::fresh(&platform, &demand);
        let alloc = PowerAllocation::new(Watts::new(112.0), Watts::new(116.0));
        let (first, hit1) = memo.solve_traced(alloc);
        let (second, hit2) = memo.solve_traced(alloc);
        assert!(!hit1 && hit2);
        assert_eq!(
            op_bits(&first.unwrap()),
            op_bits(&second.unwrap()),
            "hit must be bit-identical to the miss"
        );
    }

    #[test]
    fn shared_registry_returns_the_same_memo() {
        let _guard = lock(registry_test_mutex());
        let platform = ivybridge();
        let stream = WorkloadDemand::single("stream-like", PhaseDemand::stream_bound());
        let a = SolveMemo::for_problem(&platform, &stream);
        let b = SolveMemo::for_problem(&platform, &stream);
        assert!(Arc::ptr_eq(&a, &b));
        let sra = WorkloadDemand::single("sra-like", PhaseDemand::random_bound());
        let other = SolveMemo::for_problem(&platform, &sra);
        assert!(!Arc::ptr_eq(&a, &other));
    }

    /// Tests below churn the process-wide registry; serialize them
    /// against the identity test above so a mid-assert eviction can't
    /// invalidate its `Arc::ptr_eq` expectations.
    fn registry_test_mutex() -> &'static Mutex<()> {
        static M: OnceLock<Mutex<()>> = OnceLock::new();
        M.get_or_init(|| Mutex::new(()))
    }

    fn demand_variant(i: usize) -> WorkloadDemand {
        let mut d = PhaseDemand::compute_bound();
        // Perturb a field so every variant fingerprints distinctly.
        d.arithmetic_intensity += i as f64 * 0.001;
        WorkloadDemand::single(format!("variant-{i}"), d)
    }

    #[test]
    fn registry_is_bounded_and_evicts_least_recently_used() {
        let _guard = lock(registry_test_mutex());
        SolveMemo::clear_shared();
        let platform = ivybridge();
        let keeper_demand = demand_variant(0);
        let keeper = SolveMemo::for_problem(&platform, &keeper_demand);
        // Overflow the bound; re-touch the keeper along the way so LRU
        // keeps it while the stale middle entries rotate out.
        for i in 1..=(MAX_SHARED_MEMOS + 8) {
            let _ = SolveMemo::for_problem(&platform, &demand_variant(i));
            if i % 16 == 0 {
                let again = SolveMemo::for_problem(&platform, &keeper_demand);
                assert!(
                    Arc::ptr_eq(&keeper, &again),
                    "a recently used memo must survive eviction"
                );
            }
        }
        assert!(
            SolveMemo::shared_len() <= MAX_SHARED_MEMOS,
            "registry grew to {} entries past the bound",
            SolveMemo::shared_len()
        );
        // The keeper was used most recently at i = 64 < 72, but far more
        // recently than variant-1, which must be gone: re-registering it
        // builds a new memo.
        let revived = SolveMemo::for_problem(&platform, &demand_variant(1));
        let again = SolveMemo::for_problem(&platform, &demand_variant(1));
        assert!(Arc::ptr_eq(&revived, &again));
        SolveMemo::clear_shared();
    }

    #[test]
    fn eviction_is_counted_and_survivors_keep_their_caches() {
        let _guard = lock(registry_test_mutex());
        SolveMemo::clear_shared();
        pbc_trace::reset();
        pbc_trace::enable();
        let platform = ivybridge();
        let held_demand = demand_variant(9000);
        let held = SolveMemo::for_problem(&platform, &held_demand);
        let alloc = PowerAllocation::new(Watts::new(120.0), Watts::new(80.0));
        let before = held.solve(alloc).unwrap();
        for i in 0..(MAX_SHARED_MEMOS * 2) {
            let _ = SolveMemo::for_problem(&platform, &demand_variant(9001 + i));
        }
        let snapshot = pbc_trace::snapshot();
        let evictions = snapshot
            .counters
            .get(pbc_trace::names::SOLVE_CACHE_EVICTIONS)
            .copied()
            .unwrap_or(0);
        assert!(evictions > 0, "overflowing the registry must count evictions");
        // The held Arc outlives its registry slot: its cache still
        // answers, bit-identically.
        assert!(held.len() >= 1);
        let after = held.solve(alloc).unwrap();
        assert_eq!(op_bits(&before), op_bits(&after));
        pbc_trace::disable();
        pbc_trace::reset();
        SolveMemo::clear_shared();
    }
}
