//! Steady-state solver for a discrete GPU card under the card-level
//! capper.
//!
//! ## Mechanism (what §4 of the paper describes)
//!
//! A cross-component allocation on a GPU is expressed through *frequency
//! offsets*: the memory allocation selects a memory clock level (the
//! highest whose worst-case power fits the allocation), and the boost
//! governor then picks the highest SM clock whose **total** card draw fits
//! the card cap. Because the governor checks the total against the cap, a
//! memory allocation the workload doesn't actually use is automatically
//! *reclaimed* for the SMs — the paper's key mechanism difference versus
//! RAPL's independent PKG/DRAM domains ("the GPU power capping
//! automatically reclaims unused power budget and shifts it to another
//! component").
//!
//! Two hardware guards shape the category structure:
//!
//! * The driver rejects card caps below [`GpuSpec::min_card_cap`] — this
//!   excludes the catastrophic categories IV–VI entirely.
//! * Neither domain clocks below its lowest exposed level, so performance
//!   never collapses the way T-states collapse a host CPU.

use crate::demand::{PhaseDemand, WorkloadDemand};
use crate::operating::{GpuMechanismState, MechanismState, NodeOperatingPoint};
use pbc_platform::GpuSpec;
use pbc_types::{Bandwidth, PbcError, PowerAllocation, Result, Watts};

/// Result of composing one phase at a fixed (SM clock, mem level).
#[derive(Debug, Clone, Copy)]
pub(crate) struct GpuPhasePoint {
    pub(crate) time: f64,
    pub(crate) sm_power: Watts,
    pub(crate) mem_power: Watts,
    pub(crate) bandwidth: Bandwidth,
    pub(crate) busy: f64,
}

/// Compose a phase at fixed clocks. The activity is a closed-form function
/// of the busy fraction here (no RAPL-style state/activity feedback on a
/// fixed clock), so no iteration is needed.
pub(crate) fn compose_at(gpu: &GpuSpec, phase: &PhaseDemand, sm_clock: usize, mem_level: usize) -> GpuPhasePoint {
    let s = gpu.sm.speed_at(sm_clock);
    let peak = gpu.peak_gflops * phase.compute_efficiency;
    let t_c = 1.0 / (peak * s);
    let bytes_gb = 1.0 / phase.arithmetic_intensity;
    let lvl_bw = gpu.mem.bandwidth_at(mem_level);
    let phase_bw =
        gpu.mem.max_bandwidth.value() * phase.bw_saturation * s.powf(phase.issue_sensitivity);
    let bw = phase_bw.min(lvl_bw.value()).max(1e-9);
    let t_m = bytes_gb / bw;
    let w = phase.overlap;
    let t = w * t_c.max(t_m) + (1.0 - w) * (t_c + t_m);
    let busy = (t_c / t).clamp(0.0, 1.0);
    let bw_used = Bandwidth::new(bytes_gb / t);
    let activity = phase.act_compute * busy + phase.act_stall * (1.0 - busy);
    GpuPhasePoint {
        time: t,
        sm_power: gpu.sm.power_at(sm_clock, activity),
        mem_power: gpu.mem.power_at(mem_level, bw_used),
        bandwidth: bw_used,
        busy,
    }
}

/// The boost governor: highest SM clock whose draw fits the budget rule.
///
/// With reclamation, the rule is `sm + mem_actual <= card_cap`; without,
/// the SM domain is additionally confined to its own allocation.
fn pick_sm_clock(
    gpu: &GpuSpec,
    phase: &PhaseDemand,
    mem_level: usize,
    card_cap: Watts,
    sm_alloc: Watts,
) -> (usize, GpuPhasePoint) {
    let mut fallback = None;
    for c in (0..gpu.sm.len()).rev() {
        let pt = compose_at(gpu, phase, c, mem_level);
        let fits_total = pt.sm_power + pt.mem_power <= card_cap + Watts::new(1e-9);
        let fits_own = if gpu.reclaims_unused {
            true
        } else {
            pt.sm_power <= sm_alloc + Watts::new(1e-9)
        };
        if fits_total && fits_own {
            return (c, pt);
        }
        fallback = Some((c, pt));
    }
    // Nothing fits: run at the floor clock (the driver guarantees the
    // min_card_cap is above the floor draw, so this is unreachable for
    // accepted caps — kept for robustness).
    fallback.expect("SM clock table is never empty")
}

/// The card's *uncapped* power demand for a workload: total, SM, and
/// memory power at the top clocks with no cap applied. `solve_gpu` clamps
/// every allocation to the card's settable range (as the driver does), so
/// this is the way to ask "what would it draw if it could?" — the
/// `P_tot_max` parameter of the paper's Algorithm 2.
pub fn uncapped_demand(gpu: &GpuSpec, demand: &WorkloadDemand) -> (Watts, Watts, Watts) {
    let weights = demand.normalized_weights();
    let mut t_total = 0.0;
    let mut pts = Vec::new();
    for (w, phase) in weights.iter().zip(demand.phases.iter().map(|(_, p)| p)) {
        let pt = compose_at(gpu, phase, gpu.sm.top(), gpu.mem.top());
        t_total += w * pt.time;
        pts.push(pt);
    }
    let mut sm = 0.0;
    let mut mem = 0.0;
    for (w, pt) in weights.iter().zip(&pts) {
        let frac = if t_total > 0.0 { w * pt.time / t_total } else { 0.0 };
        sm += frac * pt.sm_power.value();
        mem += frac * pt.mem_power.value();
    }
    (Watts::new(sm + mem), Watts::new(sm), Watts::new(mem))
}

/// Validate an allocation against the card's settable cap range and
/// return the effective card cap: totals below [`GpuSpec::min_card_cap`]
/// are rejected (as the driver does), totals above the maximum are
/// clamped to it.
#[must_use = "the effective card cap or the range rejection must be inspected"]
pub(crate) fn check_card_cap(gpu: &GpuSpec, alloc: PowerAllocation) -> Result<Watts> {
    let requested = alloc.total();
    if requested < gpu.min_card_cap {
        return Err(PbcError::CapOutOfRange {
            component: gpu.name.clone(),
            requested,
            min: gpu.min_card_cap,
            max: gpu.max_card_cap,
        });
    }
    Ok(requested.min(gpu.max_card_cap))
}

/// The unconstrained reference time that `perf_rel` normalizes against:
/// top clocks, no cap check. Depends only on `(gpu, demand)`.
pub(crate) fn nominal_time_gpu(gpu: &GpuSpec, demand: &WorkloadDemand) -> f64 {
    let weights = demand.normalized_weights();
    let mut t_nom = 0.0;
    for (w, phase) in weights.iter().zip(demand.phases.iter().map(|(_, p)| p)) {
        let pt = compose_at(gpu, phase, gpu.sm.top(), gpu.mem.top());
        t_nom += w * pt.time;
    }
    t_nom
}

/// Solve the steady-state operating point of a GPU card.
///
/// `alloc.proc` is the SM share and `alloc.mem` the memory share of the
/// card cap `alloc.total()`. Returns [`PbcError::CapOutOfRange`] when the
/// total is below the card's minimum settable cap; totals above the
/// maximum settable cap are clamped to it (that is what `nvidia-smi` does
/// when asked for the maximum).
pub fn solve_gpu(
    gpu: &GpuSpec,
    demand: &WorkloadDemand,
    alloc: PowerAllocation,
) -> Result<NodeOperatingPoint> {
    // Reject out-of-range caps before paying for the nominal run: the
    // sweep probes the infeasible region constantly and rejection must
    // stay cheap.
    check_card_cap(gpu, alloc)?;
    solve_gpu_with_nominal(gpu, demand, alloc, nominal_time_gpu(gpu, demand))
}

/// [`solve_gpu`] with the nominal time precomputed by
/// [`nominal_time_gpu`] — the hot path for memoized multi-allocation
/// solving. Bit-identical to `solve_gpu` when `t_nom` comes from the
/// same `(gpu, demand)`.
#[must_use = "the operating point or the solver failure must be inspected"]
pub(crate) fn solve_gpu_with_nominal(
    gpu: &GpuSpec,
    demand: &WorkloadDemand,
    alloc: PowerAllocation,
    t_nom: f64,
) -> Result<NodeOperatingPoint> {
    let card_cap = check_card_cap(gpu, alloc)?;

    // The memory allocation buys a clock level (worst-case fit).
    let mem_level = gpu.mem.level_under_cap(alloc.mem);
    let weights = demand.normalized_weights();

    // Capped run.
    let mut t_total = 0.0;
    let mut points = Vec::with_capacity(demand.phases.len());
    let mut clocks = Vec::with_capacity(demand.phases.len());
    for (w, phase) in weights.iter().zip(demand.phases.iter().map(|(_, p)| p)) {
        let (c, pt) = pick_sm_clock(gpu, phase, mem_level, card_cap, alloc.proc);
        t_total += w * pt.time;
        points.push(pt);
        clocks.push(c);
    }

    // Time-weighted aggregates.
    let mut sm_power = 0.0;
    let mut mem_power = 0.0;
    let mut bw = 0.0;
    let mut busy = 0.0;
    for (w, pt) in weights.iter().zip(&points) {
        let frac = if t_total > 0.0 { w * pt.time / t_total } else { 0.0 };
        sm_power += frac * pt.sm_power.value();
        mem_power += frac * pt.mem_power.value();
        bw += frac * pt.bandwidth.value();
        busy += frac * pt.busy;
    }
    // Dominant phase's clock for the mechanism report.
    let dominant = weights
        .iter()
        .zip(clocks.iter())
        .zip(points.iter())
        .max_by(|((wa, _), pa), ((wb, _), pb)| {
            (*wa * pa.time)
                .partial_cmp(&(*wb * pb.time))
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .map(|((_, &c), _)| c)
        .unwrap_or(gpu.sm.top());

    let reclaimed = (Watts::new(sm_power) - alloc.proc).max(Watts::ZERO);
    Ok(NodeOperatingPoint {
        alloc,
        perf_rel: if t_total > 0.0 { t_nom / t_total } else { 0.0 },
        proc_power: Watts::new(sm_power),
        mem_power: Watts::new(mem_power),
        work_rate: if t_total > 0.0 { 1.0 / t_total } else { 0.0 },
        bandwidth: Bandwidth::new(bw),
        proc_busy: busy,
        mechanism: MechanismState::Gpu(GpuMechanismState {
            sm_clock: dominant,
            mem_level,
            reclaimed: if gpu.reclaims_unused { reclaimed } else { Watts::ZERO },
        }),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbc_platform::presets::{titan_v, titan_xp};

    fn xp() -> GpuSpec {
        titan_xp().gpu().unwrap().clone()
    }

    fn sgemm_like() -> WorkloadDemand {
        WorkloadDemand::single(
            "sgemm",
            PhaseDemand {
                compute_efficiency: 0.85,
                arithmetic_intensity: 40.0,
                bw_saturation: 0.5,
                pattern_cost: 1.0,
                overlap: 0.95,
                issue_sensitivity: 0.3,
                act_compute: 1.0,
                act_stall: 0.3,
            },
        )
    }

    fn stream_like() -> WorkloadDemand {
        WorkloadDemand::single(
            "gpu-stream",
            PhaseDemand {
                compute_efficiency: 0.12,
                arithmetic_intensity: 0.08,
                bw_saturation: 0.95,
                pattern_cost: 1.0,
                overlap: 0.9,
                issue_sensitivity: 0.5,
                act_compute: 0.7,
                act_stall: 0.3,
            },
        )
    }

    fn split(total: f64, mem: f64) -> PowerAllocation {
        PowerAllocation::new(Watts::new(total - mem), Watts::new(mem))
    }

    #[test]
    fn rejects_caps_below_hardware_minimum() {
        let g = xp();
        let err = solve_gpu(&g, &sgemm_like(), split(80.0, 30.0)).unwrap_err();
        assert!(matches!(err, PbcError::CapOutOfRange { .. }));
    }

    #[test]
    fn unconstrained_perf_is_one() {
        let g = xp();
        // "Unconstrained" means the *best* allocation at the max cap: lean
        // memory for the compute-bound kernel (the reclaiming governor
        // makes over-allocating memory cost SM headroom), generous memory
        // for the bandwidth-bound one.
        let sgemm = solve_gpu(&g, &sgemm_like(), split(300.0, 25.0)).unwrap();
        assert!(sgemm.perf_rel > 0.999, "sgemm: {}", sgemm.perf_rel);
        let stream = solve_gpu(&g, &stream_like(), split(300.0, 75.0)).unwrap();
        assert!(stream.perf_rel > 0.999, "stream: {}", stream.perf_rel);
    }

    #[test]
    fn total_power_respects_card_cap() {
        let g = xp();
        for w in [sgemm_like(), stream_like()] {
            for total in [130.0, 140.0, 180.0, 220.0, 260.0, 300.0] {
                for mem_frac in [0.1, 0.2, 0.3, 0.4] {
                    let alloc = split(total, total * mem_frac);
                    let op = solve_gpu(&g, &w, alloc).unwrap();
                    assert!(
                        op.total_power().value() <= total + 1e-6,
                        "{} cap {total} mem {} -> {}",
                        w.name,
                        total * mem_frac,
                        op.total_power()
                    );
                }
            }
        }
    }

    #[test]
    fn reclamation_feeds_sm_from_unused_mem_budget() {
        // SGEMM barely touches memory: a lavish memory allocation must not
        // hurt much, because the governor reclaims what memory doesn't draw.
        let g = xp();
        let lavish_mem = solve_gpu(&g, &sgemm_like(), split(200.0, 70.0)).unwrap();
        let lean_mem = solve_gpu(&g, &sgemm_like(), split(200.0, 25.0)).unwrap();
        // The lean allocation selects a lower memory clock, whose lower
        // idle draw leaves more headroom: lean should be at least as good.
        assert!(lean_mem.perf_rel >= lavish_mem.perf_rel - 1e-9);
        // But reclamation keeps the lavish case close (within 15%), unlike
        // an unreclaimed host where the gap would be the full mem surplus.
        assert!(lavish_mem.perf_rel > 0.85 * lean_mem.perf_rel);
    }

    #[test]
    fn stream_perf_scales_with_mem_level() {
        let g = xp();
        // Generous total; memory allocation decides the level.
        let low = solve_gpu(&g, &stream_like(), split(250.0, 25.0)).unwrap();
        let high = solve_gpu(&g, &stream_like(), split(250.0, 70.0)).unwrap();
        assert!(
            high.perf_rel > low.perf_rel * 1.2,
            "memory-bound perf must grow with the mem level: {} vs {}",
            high.perf_rel,
            low.perf_rel
        );
    }

    #[test]
    fn sgemm_demands_more_than_the_max_cap() {
        // Paper §4: on the Titan XP, SGEMM's upper bound keeps rising over
        // the whole supported cap range (it wants > 300 W).
        let g = xp();
        // With the memory at its nominal clock (the Nvidia default), the
        // kernel's total demand exceeds the 300 W maximum cap.
        let at_250 = solve_gpu(&g, &sgemm_like(), split(250.0, 75.0)).unwrap();
        let at_300 = solve_gpu(&g, &sgemm_like(), split(300.0, 75.0)).unwrap();
        assert!(at_300.perf_rel > at_250.perf_rel + 0.01);
        assert!(at_300.perf_rel < 1.0, "still below unconstrained at 300 W");
    }

    #[test]
    fn no_collapse_at_minimum_card_cap() {
        // GPU hardware excludes the catastrophic categories: even at the
        // minimum cap, performance stays a meaningful fraction of peak.
        let g = xp();
        for w in [sgemm_like(), stream_like()] {
            let op = solve_gpu(&g, &w, split(125.0, 25.0)).unwrap();
            assert!(op.perf_rel > 0.2, "{}: {}", w.name, op.perf_rel);
        }
    }

    #[test]
    fn titan_v_memory_power_range_is_narrow() {
        let g = titan_v().gpu().unwrap().clone();
        let low = solve_gpu(&g, &stream_like(), split(250.0, 10.0)).unwrap();
        let high = solve_gpu(&g, &stream_like(), split(250.0, 40.0)).unwrap();
        // HBM2's whole exposed range moves bandwidth by at most ~20%.
        assert!(high.perf_rel / low.perf_rel < 1.35);
        assert!(high.perf_rel >= low.perf_rel - 1e-9);
    }

    #[test]
    fn oversized_total_clamps_to_max_cap() {
        let g = xp();
        let a = solve_gpu(&g, &sgemm_like(), split(400.0, 60.0)).unwrap();
        let b = solve_gpu(&g, &sgemm_like(), split(300.0, 60.0)).unwrap();
        assert!((a.perf_rel - b.perf_rel).abs() < 1e-9);
    }

    #[test]
    fn reporting_reclaimed_watts() {
        let g = xp();
        // Give the SMs a deliberately tiny share; the governor reclaims
        // from the memory allocation and the report says by how much.
        let op = solve_gpu(&g, &sgemm_like(), split(250.0, 200.0)).unwrap();
        match op.mechanism {
            MechanismState::Gpu(st) => {
                assert!(st.reclaimed.value() > 0.0, "expected reclaimed watts");
            }
            _ => panic!("expected GPU mechanism"),
        }
    }

    #[test]
    fn multiphase_gpu_workload() {
        let g = xp();
        let mixed = WorkloadDemand::phased(
            "cloverleaf-like",
            vec![
                (0.5, sgemm_like().phases[0].1),
                (0.5, stream_like().phases[0].1),
            ],
        );
        let op = solve_gpu(&g, &mixed, split(300.0, 70.0)).unwrap();
        assert!(op.perf_rel > 0.999);
        let capped = solve_gpu(&g, &mixed, split(140.0, 40.0)).unwrap();
        assert!(capped.perf_rel < op.perf_rel);
        assert!(capped.perf_rel > 0.2);
    }
}
