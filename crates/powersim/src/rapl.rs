//! A dynamic RAPL PKG-domain controller.
//!
//! Real RAPL enforces a *running average* power limit: the PCU samples
//! energy, maintains an average over the configured time window, and walks
//! the P-state/T-state ladder to keep that average under the limit
//! ([Intel SDM Vol. 3B]; §3.3 of the paper). [`RaplController`] reproduces
//! that control loop for the discrete-time engine: one ladder step per
//! control period, downward when the windowed average is over the cap,
//! upward (with hysteresis) when there is headroom.
//!
//! The steady-state solver in [`crate::cpunode`] computes where this loop
//! settles; the engine tests assert they agree.

use pbc_platform::CpuSpec;
use pbc_types::Watts;
use std::collections::VecDeque;

/// Current position on the RAPL escalation ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LadderPosition {
    /// P-state index (0 = lowest frequency).
    pub pstate: usize,
    /// Index into the T-state duty table, or `None` when unthrottled.
    pub tstate: Option<usize>,
}

impl LadderPosition {
    /// Duty cycle at this position.
    pub fn duty(&self, cpu: &CpuSpec) -> f64 {
        match self.tstate {
            Some(i) => cpu.tstate_duties.get(i).copied().unwrap_or(1.0),
            None => 1.0,
        }
    }
}

/// Windowed running-average power-limit controller for the PKG domain.
#[derive(Debug, Clone)]
pub struct RaplController {
    cap: Watts,
    window: usize,
    history: VecDeque<f64>,
    position: LadderPosition,
    /// Fraction of the cap below which the controller tries stepping back
    /// up (hysteresis to avoid limit cycles).
    upstep_margin: f64,
}

impl RaplController {
    /// Create a controller for `cap` with a running average over `window`
    /// samples, starting at the nominal P-state.
    pub fn new(cpu: &CpuSpec, cap: Watts, window: usize) -> Self {
        Self {
            cap,
            window: window.max(1),
            history: VecDeque::with_capacity(window.max(1)),
            position: LadderPosition {
                pstate: cpu.pstates.len() - 1,
                tstate: None,
            },
            upstep_margin: 0.97,
        }
    }

    /// The configured power limit.
    pub fn cap(&self) -> Watts {
        self.cap
    }

    /// Change the limit at runtime (power re-budgeting).
    pub fn set_cap(&mut self, cap: Watts) {
        self.cap = cap;
    }

    /// Current ladder position.
    pub fn position(&self) -> LadderPosition {
        self.position
    }

    /// Windowed running-average of observed power (0 before any sample).
    pub fn running_average(&self) -> Watts {
        if self.history.is_empty() {
            Watts::ZERO
        } else {
            Watts::new(self.history.iter().sum::<f64>() / self.history.len() as f64)
        }
    }

    /// Feed one power sample and take at most one ladder step. Returns the
    /// new position.
    pub fn observe_and_step(&mut self, cpu: &CpuSpec, measured: Watts) -> LadderPosition {
        if self.history.len() == self.window {
            self.history.pop_front();
        }
        self.history.push_back(measured.value());
        let avg = self.running_average();

        if avg > self.cap {
            self.step_down(cpu);
        } else if avg < self.cap * self.upstep_margin {
            // Only climb if the *instantaneous* draw also has headroom —
            // the PCU predicts the next state's power before committing.
            self.step_up(cpu, measured);
        }
        self.position
    }

    /// One step down the ladder: lower P-state first, then deeper T-state.
    fn step_down(&mut self, cpu: &CpuSpec) {
        if self.position.pstate > 0 {
            self.position.pstate -= 1;
        } else {
            let next = match self.position.tstate {
                None => 0,
                Some(i) => (i + 1).min(cpu.tstate_duties.len().saturating_sub(1)),
            };
            if !cpu.tstate_duties.is_empty() {
                self.position.tstate = Some(next);
            }
        }
    }

    /// One step up the ladder: lighter T-state first, then higher P-state.
    /// Climbing is conservative: it requires the measured draw scaled to
    /// the candidate state to still fit under the cap.
    fn step_up(&mut self, cpu: &CpuSpec, measured: Watts) {
        let candidate = match self.position.tstate {
            Some(0) => LadderPosition {
                pstate: self.position.pstate,
                tstate: None,
            },
            Some(i) => LadderPosition {
                pstate: self.position.pstate,
                tstate: Some(i - 1),
            },
            None => {
                if self.position.pstate + 1 < cpu.pstates.len() {
                    LadderPosition {
                        pstate: self.position.pstate + 1,
                        tstate: None,
                    }
                } else {
                    return; // already at the top
                }
            }
        };
        // Predict the candidate's draw by scaling the measurement with the
        // state power ratio at full activity (a conservative estimate).
        let cur = state_power_scale(cpu, self.position);
        let next = state_power_scale(cpu, candidate);
        let predicted = if cur > 0.0 {
            Watts::new(measured.value() * next / cur)
        } else {
            measured
        };
        if predicted <= self.cap {
            self.position = candidate;
        }
    }
}

/// Relative full-activity power of a ladder position (used for upward
/// prediction).
fn state_power_scale(cpu: &CpuSpec, pos: LadderPosition) -> f64 {
    let st = cpu.pstates.get(pos.pstate).unwrap_or_else(|| cpu.pstates.nominal());
    cpu.power_at_duty(st, pos.duty(cpu), 1.0).value()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbc_platform::presets::ivybridge;

    fn cpu() -> CpuSpec {
        ivybridge().cpu().unwrap().clone()
    }

    #[test]
    fn starts_at_nominal() {
        let c = cpu();
        let r = RaplController::new(&c, Watts::new(120.0), 10);
        assert_eq!(r.position().pstate, c.pstates.len() - 1);
        assert_eq!(r.position().tstate, None);
        assert_eq!(r.running_average(), Watts::ZERO);
    }

    #[test]
    fn steps_down_when_over_cap() {
        let c = cpu();
        let mut r = RaplController::new(&c, Watts::new(100.0), 4);
        let before = r.position().pstate;
        r.observe_and_step(&c, Watts::new(160.0));
        assert_eq!(r.position().pstate, before - 1);
    }

    #[test]
    fn escalates_to_tstates_below_lowest_pstate() {
        let c = cpu();
        let mut r = RaplController::new(&c, Watts::new(50.0), 1);
        // Hammer it with over-cap samples until it bottoms out.
        for _ in 0..(c.pstates.len() + c.tstate_duties.len() + 2) {
            r.observe_and_step(&c, Watts::new(150.0));
        }
        assert_eq!(r.position().pstate, 0);
        assert_eq!(r.position().tstate, Some(c.tstate_duties.len() - 1));
        assert!((r.position().duty(&c) - c.min_duty()).abs() < 1e-12);
    }

    #[test]
    fn climbs_back_with_headroom() {
        let c = cpu();
        let mut r = RaplController::new(&c, Watts::new(160.0), 2);
        // Push down a few steps.
        for _ in 0..4 {
            r.observe_and_step(&c, Watts::new(300.0));
        }
        let low = r.position().pstate;
        assert!(low < c.pstates.len() - 1);
        // Now feed far-under-cap samples; it should climb back up.
        for _ in 0..40 {
            r.observe_and_step(&c, Watts::new(80.0));
        }
        assert!(r.position().pstate > low);
    }

    #[test]
    fn converges_near_cap_without_oscillating_wildly() {
        let c = cpu();
        let cap = Watts::new(100.0);
        let mut r = RaplController::new(&c, cap, 5);
        let nominal = *c.pstates.nominal();
        let _ = nominal;
        // Closed loop: the "hardware" draws the power of the current state
        // at activity 0.9.
        let mut positions = vec![];
        for _ in 0..100 {
            let st = c.pstates.get(r.position().pstate).unwrap();
            let p = c.power_at_duty(st, r.position().duty(&c), 0.9);
            r.observe_and_step(&c, p);
            positions.push(r.position().pstate);
        }
        // Settles: the last 20 steps move by at most one P-state.
        let tail = &positions[80..];
        let min = tail.iter().min().unwrap();
        let max = tail.iter().max().unwrap();
        assert!(max - min <= 1, "controller did not settle: {min}..{max}");
        // And the settled power respects the cap.
        let st = c.pstates.get(r.position().pstate).unwrap();
        assert!(c.power_at_duty(st, r.position().duty(&c), 0.9) <= cap);
    }

    #[test]
    fn window_smooths_transients() {
        let c = cpu();
        let mut r = RaplController::new(&c, Watts::new(120.0), 10);
        // One spike within a mostly-idle window must not trigger a step.
        for _ in 0..9 {
            r.observe_and_step(&c, Watts::new(60.0));
        }
        let before = r.position();
        // The spike alone: average stays under the cap.
        r.observe_and_step(&c, Watts::new(200.0));
        assert!(r.running_average() < Watts::new(120.0));
        // Position may have climbed but must not have dropped below where
        // the idle samples put it.
        assert!(r.position().pstate >= before.pstate.saturating_sub(1));
    }

    #[test]
    fn set_cap_rebudgets() {
        let c = cpu();
        let mut r = RaplController::new(&c, Watts::new(160.0), 1);
        r.set_cap(Watts::new(60.0));
        assert_eq!(r.cap(), Watts::new(60.0));
        for _ in 0..c.pstates.len() {
            r.observe_and_step(&c, Watts::new(100.0));
        }
        assert_eq!(r.position().pstate, 0);
    }
}
