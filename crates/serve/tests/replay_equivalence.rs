//! The daemon answers identically to the batch path.
//!
//! A request log dispatched through the live `ServeEngine` must produce
//! **bit-identical** allocations to the same operations replayed
//! against a fresh offline `OnlineCoordinator` built by the public
//! session recipe (see `crates/serve/src/session.rs` docs). Floats
//! cross the wire through Rust's shortest round-trip `Display`, so the
//! comparison is on exact `f64` bits, not tolerances.

use pbc_core::{BudgetOutcome, CurveTable, ObservationOutcome, OnlineConfig, OnlineCoordinator};
use pbc_powersim::{CpuMechanismState, MechanismState, NodeOperatingPoint};
use pbc_serve::{parse_alloc_line, Disposition, ServeEngine};
use pbc_types::{Bandwidth, PowerAllocation, Watts};

/// The offline mirror of one serve session, built by the same recipe.
fn offline_coordinator(platform: &str, bench: &str, budget: f64) -> OnlineCoordinator {
    let platform = pbc_platform::PlatformId::from_slug(platform)
        .map(pbc_platform::presets::by_id)
        .expect("known platform");
    let bench = pbc_workloads::by_name(bench).expect("known bench");
    let budget = Watts::new(budget);
    let table = CurveTable::shared(&platform, &bench.demand).expect("table builds");
    let initial = table
        .alloc_at(budget)
        .unwrap_or_else(|| PowerAllocation::split(budget, 0.5));
    let config = OnlineConfig {
        min_budget: platform.min_node_power(),
        ..OnlineConfig::default()
    };
    OnlineCoordinator::new(budget, initial, config).with_table(table)
}

fn offline_observe(tuner: &mut OnlineCoordinator, fields: [f64; 5]) {
    let [perf, proc_w, mem_w, cap_proc, cap_mem] = fields;
    let op = NodeOperatingPoint {
        alloc: PowerAllocation::new(Watts::new(cap_proc), Watts::new(cap_mem)),
        perf_rel: perf,
        proc_power: Watts::new(proc_w),
        mem_power: Watts::new(mem_w),
        work_rate: 0.0,
        bandwidth: Bandwidth::new(0.0),
        proc_busy: 0.0,
        mechanism: MechanismState::Cpu(CpuMechanismState {
            pstate: 0,
            duty: 1.0,
            cap_unenforceable: false,
        }),
    };
    let _ = tuner.observe(&op);
}

fn bits(a: PowerAllocation) -> (u64, u64) {
    (a.proc.value().to_bits(), a.mem.value().to_bits())
}

#[test]
fn replayed_request_log_is_bit_identical_to_offline_calls() {
    let engine = ServeEngine::new();
    let mut out = String::new();

    assert_eq!(
        engine.dispatch_into("node 1 ivybridge stream 208", &mut out),
        Disposition::Respond
    );
    assert!(out.starts_with("alloc 1 "), "{out}");

    // A budget trajectory that walks the table up and down, with a few
    // observation epochs interleaved — enough to move the coordinator
    // through probe / accept / reject states.
    let budgets = [176.0, 208.25, 190.0, 176.0, 240.0, 208.25];
    let observations: [[f64; 5]; 2] = [
        // perf, proc_w, mem_w, cap_proc, cap_mem — the caps are filled
        // in from the daemon's own last response at replay time.
        [0.91, 120.0, 55.0, 0.0, 0.0],
        [0.94, 118.0, 57.0, 0.0, 0.0],
    ];

    // --- live daemon path ------------------------------------------------
    let mut daemon_allocs: Vec<PowerAllocation> = Vec::new();
    let mut last = PowerAllocation::new(Watts::ZERO, Watts::ZERO);
    for (i, b) in budgets.iter().enumerate() {
        engine.dispatch_into(&format!("budget 1 {b}"), &mut out);
        let alloc = parse_alloc_line(&out).unwrap_or_else(|| panic!("not an alloc line: {out}"));
        daemon_allocs.push(alloc);
        last = alloc;
        if let Some(obs) = observations.get(i) {
            // Observe against the exact caps the daemon just issued —
            // rendered and re-parsed through the wire format.
            engine.dispatch_into(
                &format!(
                    "observe 1 {} {} {} {} {}",
                    obs[0],
                    obs[1],
                    obs[2],
                    last.proc.value(),
                    last.mem.value()
                ),
                &mut out,
            );
            let next = parse_alloc_line(&out)
                .unwrap_or_else(|| panic!("observe response not an alloc line: {out}"));
            daemon_allocs.push(next);
            last = next;
        }
        engine.dispatch_into("query 1", &mut out);
        let best = parse_alloc_line(&out).expect("query answers an alloc line");
        daemon_allocs.push(best);
    }
    let _ = last;

    // --- offline batch path ----------------------------------------------
    let mut tuner = offline_coordinator("ivybridge", "stream", 208.0);
    let mut offline_allocs: Vec<PowerAllocation> = Vec::new();
    let mut last = PowerAllocation::new(Watts::ZERO, Watts::ZERO);
    for (i, b) in budgets.iter().enumerate() {
        match tuner.set_budget(Watts::new(*b)) {
            BudgetOutcome::Applied => {
                let next = tuner.next_allocation();
                offline_allocs.push(next);
                last = next;
            }
            BudgetOutcome::Unchanged => {
                offline_allocs.push(tuner.best());
                last = tuner.best();
            }
            other => panic!("offline budget rejected: {other:?}"),
        }
        if let Some(obs) = observations.get(i) {
            offline_observe(
                &mut tuner,
                [obs[0], obs[1], obs[2], last.proc.value(), last.mem.value()],
            );
            let next = tuner.next_allocation();
            offline_allocs.push(next);
            last = next;
        }
        offline_allocs.push(tuner.best());
    }
    let _ = last;

    assert_eq!(daemon_allocs.len(), offline_allocs.len());
    for (i, (d, o)) in daemon_allocs.iter().zip(offline_allocs.iter()).enumerate() {
        assert_eq!(
            bits(*d),
            bits(*o),
            "step {i}: daemon {:?} != offline {:?}",
            d,
            o
        );
    }
}

#[test]
fn observation_validation_mirrors_the_coordinator() {
    let engine = ServeEngine::new();
    let mut out = String::new();
    engine.dispatch_into("node 9 ivybridge stream 208", &mut out);
    engine.dispatch_into("budget 9 190", &mut out);
    let probe = parse_alloc_line(&out).expect("alloc line");

    // NaN perf → rejected-observation, session survives. The rejection
    // voids the pending probe (coordinator semantics: a rejected epoch
    // is void, not judged).
    engine.dispatch_into(
        &format!(
            "observe 9 NaN 100 50 {} {}",
            probe.proc.value(),
            probe.mem.value()
        ),
        &mut out,
    );
    assert!(out.starts_with("err rejected-observation"), "{out}");

    // With the probe voided, the next observation is admitted trivially
    // and the daemon re-proposes the *same* candidate — caps on this
    // line are not validated because there is no probe to compare to.
    engine.dispatch_into("observe 9 0.9 100 50 1.0 1.0", &mut out);
    let reproposed = parse_alloc_line(&out).expect("re-proposal is an alloc line");
    assert_eq!(bits(reproposed), bits(probe), "voided probe re-proposed");
    assert!(out.ends_with("outcome=used"), "{out}");

    // Now the probe is armed again: stale caps → rejected-observation.
    engine.dispatch_into("observe 9 0.9 100 50 1.0 1.0", &mut out);
    assert!(out.starts_with("err rejected-observation"), "{out}");

    // Re-arm, then an absurd surrogate (beyond max_credible_perf) →
    // rejected-observation even with the correct caps.
    engine.dispatch_into("observe 9 0.9 100 50 1.0 1.0", &mut out);
    assert!(out.ends_with("outcome=used"), "{out}");
    engine.dispatch_into(
        &format!(
            "observe 9 999 100 50 {} {}",
            probe.proc.value(),
            probe.mem.value()
        ),
        &mut out,
    );
    assert!(out.starts_with("err rejected-observation"), "{out}");

    // Offline mirror: the same call sequence through the coordinator
    // directly, asserting identical outcomes and identical proposals.
    let mut tuner = {
        let platform = pbc_platform::presets::by_id(
            pbc_platform::PlatformId::from_slug("ivybridge").expect("slug"),
        );
        let bench = pbc_workloads::by_name("stream").expect("bench");
        let table = CurveTable::shared(&platform, &bench.demand).expect("table");
        let initial = table
            .alloc_at(Watts::new(208.0))
            .expect("208 W is on the table");
        OnlineCoordinator::new(
            Watts::new(208.0),
            initial,
            OnlineConfig {
                min_budget: platform.min_node_power(),
                ..OnlineConfig::default()
            },
        )
        .with_table(table)
    };
    assert_eq!(tuner.set_budget(Watts::new(190.0)), BudgetOutcome::Applied);
    let offline_probe = tuner.next_allocation();
    assert_eq!(bits(probe), bits(offline_probe));

    let mk = |caps: PowerAllocation, perf: f64| NodeOperatingPoint {
        alloc: caps,
        perf_rel: perf,
        proc_power: Watts::new(100.0),
        mem_power: Watts::new(50.0),
        work_rate: 0.0,
        bandwidth: Bandwidth::new(0.0),
        proc_busy: 0.0,
        mechanism: MechanismState::Cpu(CpuMechanismState {
            pstate: 0,
            duty: 1.0,
            cap_unenforceable: false,
        }),
    };
    let garbage = PowerAllocation::new(Watts::new(1.0), Watts::new(1.0));
    let nan = f64::from_bits(0x7ff8_0000_0000_0000);

    // Same call sequence as the daemon side above. One daemon `observe`
    // that answers an alloc line equals `observe` + `next_allocation`
    // offline; a rejected one equals `observe` alone.
    assert_eq!(
        tuner.observe(&mk(offline_probe, nan)),
        ObservationOutcome::RejectedNonFinite
    );
    assert_eq!(tuner.observe(&mk(garbage, 0.9)), ObservationOutcome::Used);
    assert_eq!(bits(tuner.next_allocation()), bits(offline_probe));
    assert_eq!(
        tuner.observe(&mk(garbage, 0.9)),
        ObservationOutcome::RejectedStale
    );
    assert_eq!(tuner.observe(&mk(garbage, 0.9)), ObservationOutcome::Used);
    assert_eq!(bits(tuner.next_allocation()), bits(offline_probe));
    assert_eq!(
        tuner.observe(&mk(offline_probe, 999.0)),
        ObservationOutcome::RejectedOutOfRange
    );

    // Re-arm both sides, then a real baseline observation against the
    // issued caps: daemon and offline must agree on the next probe.
    engine.dispatch_into("observe 9 0.9 100 50 1.0 1.0", &mut out);
    assert!(out.ends_with("outcome=used"), "{out}");
    engine.dispatch_into(
        &format!(
            "observe 9 0.9 100 50 {} {}",
            probe.proc.value(),
            probe.mem.value()
        ),
        &mut out,
    );
    let daemon_next = parse_alloc_line(&out).expect("alloc line");

    assert_eq!(tuner.observe(&mk(garbage, 0.9)), ObservationOutcome::Used);
    assert_eq!(bits(tuner.next_allocation()), bits(offline_probe));
    assert_eq!(
        tuner.observe(&mk(offline_probe, 0.9)),
        ObservationOutcome::Used
    );
    let offline_next = tuner.next_allocation();
    assert_eq!(bits(daemon_next), bits(offline_next));
}
