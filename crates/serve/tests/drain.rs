//! Graceful shutdown: drained daemons leave no torn telemetry behind.
//!
//! Both tests boot a real TCP server, drive live client traffic, drain,
//! and then hold the trace-snapshot file to the two serving invariants:
//!
//! 1. every line parses as JSON (atomic tmp+rename — a reader can never
//!    observe a half-written snapshot), and
//! 2. the serving counter law `serve.requests == serve.served_requests
//!    + serve.rejected_requests` holds in the final exported state.
//!
//! The trace registry is process-global, so the two tests serialize on
//! a mutex and assert the law only on post-drain totals (mid-flight
//! there is a legal window between the `requests` increment and the
//! served/rejected increment).

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Duration;

use pbc_serve::{ServeEngine, Server, ServerConfig, TraceSnapshotExporter};
use pbc_trace::json;

fn registry_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(Mutex::default)
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

fn snapshot_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "pbc-serve-drain-{tag}-{}.jsonl",
        std::process::id()
    ))
}

/// Parse a trace snapshot file: every line must be valid JSON; counters
/// are returned by name.
fn counters_from(path: &std::path::Path) -> std::collections::BTreeMap<String, u64> {
    let text = std::fs::read_to_string(path).expect("snapshot file readable");
    let mut counters = std::collections::BTreeMap::new();
    assert!(!text.is_empty(), "snapshot file is empty");
    for (i, line) in text.lines().enumerate() {
        let value = json::parse(line)
            .unwrap_or_else(|e| panic!("snapshot line {i} is torn: {e:?}: {line}"));
        if value.get("type").and_then(json::Value::as_str) == Some("counter") {
            let name = value
                .get("name")
                .and_then(json::Value::as_str)
                .expect("counter has a name")
                .to_string();
            let n = value
                .get("value")
                .and_then(json::Value::as_u64)
                .expect("counter value is integral");
            counters.insert(name, n);
        }
    }
    counters
}

fn assert_law(counters: &std::collections::BTreeMap<String, u64>) {
    let requests = counters.get("serve.requests").copied().unwrap_or(0);
    let served = counters.get("serve.served_requests").copied().unwrap_or(0);
    let rejected = counters.get("serve.rejected_requests").copied().unwrap_or(0);
    assert!(requests > 0, "no requests counted");
    assert_eq!(
        requests,
        served + rejected,
        "counter law broken: {requests} != {served} + {rejected}"
    );
}

fn client(addr: std::net::SocketAddr) -> (BufReader<TcpStream>, TcpStream) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let reader = BufReader::new(stream.try_clone().expect("clone"));
    (reader, stream)
}

fn roundtrip(reader: &mut BufReader<TcpStream>, writer: &mut TcpStream, line: &str) -> String {
    writeln!(writer, "{line}").expect("write");
    writer.flush().expect("flush");
    let mut resp = String::new();
    reader.read_line(&mut resp).expect("read");
    resp.trim_end().to_string()
}

#[test]
fn graceful_shutdown_flushes_consistent_snapshots() {
    let _guard = registry_lock();
    pbc_trace::enable();
    let path = snapshot_path("graceful");
    let _ = std::fs::remove_file(&path);

    let engine = Arc::new(ServeEngine::new());
    let config = ServerConfig {
        export_interval: Duration::from_millis(25),
        exporters: vec![Box::new(TraceSnapshotExporter::new(path.clone()))],
        ..ServerConfig::default()
    };
    let server = Server::start(Arc::clone(&engine), config).expect("server boots");
    let addr = server.local_addr();

    let (mut reader, mut writer) = client(addr);
    let opened = roundtrip(&mut reader, &mut writer, "node 1 ivybridge stream 208");
    assert!(opened.starts_with("alloc 1 "), "{opened}");
    for i in 0..20 {
        let w = if i % 2 == 0 { 190.0 } else { 208.25 };
        let resp = roundtrip(&mut reader, &mut writer, &format!("budget 1 {w}"));
        assert!(resp.starts_with("alloc 1 "), "{resp}");
    }
    // A malformed line and an unknown node: rejected, connection lives.
    let bad = roundtrip(&mut reader, &mut writer, "budget 1 not-a-number");
    assert!(bad.starts_with("err bad-request"), "{bad}");
    let gone = roundtrip(&mut reader, &mut writer, "query 404");
    assert!(gone.starts_with("err unknown-node"), "{gone}");

    // `shutdown` answers, then the server drains: in-flight work
    // finishes, exporters flush one final consistent snapshot.
    let ack = roundtrip(&mut reader, &mut writer, "shutdown");
    assert!(ack.starts_with("ok draining"), "{ack}");
    server.drain().expect("drain");

    let counters = counters_from(&path);
    assert_law(&counters);
    assert!(counters.get("serve.sessions_opened").copied().unwrap_or(0) >= 1);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn abrupt_drain_leaves_no_torn_trace() {
    let _guard = registry_lock();
    pbc_trace::enable();
    let path = snapshot_path("abrupt");
    let _ = std::fs::remove_file(&path);

    let engine = Arc::new(ServeEngine::new());
    let config = ServerConfig {
        export_interval: Duration::from_millis(5),
        exporters: vec![Box::new(TraceSnapshotExporter::new(path.clone()))],
        ..ServerConfig::default()
    };
    let server = Server::start(Arc::clone(&engine), config).expect("server boots");
    let addr = server.local_addr();

    // Hammer the daemon from two client threads, then drain mid-stream
    // without any quiesce or shutdown handshake.
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let mut clients = Vec::new();
    for t in 0..2u64 {
        let stop = Arc::clone(&stop);
        clients.push(std::thread::spawn(move || {
            let (mut reader, mut writer) = client(addr);
            let id = t + 1;
            let opened = roundtrip(
                &mut reader,
                &mut writer,
                &format!("node {id} ivybridge stream 208"),
            );
            assert!(opened.starts_with("alloc "), "{opened}");
            let mut i = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let w = 176.0 + (i % 5) as f64;
                let resp = roundtrip(&mut reader, &mut writer, &format!("budget {id} {w}"));
                assert!(
                    resp.starts_with("alloc ") || resp.starts_with("err shutting-down"),
                    "{resp}"
                );
                i += 1;
            }
        }));
    }

    // Let traffic and a few export ticks overlap, then pull the plug.
    std::thread::sleep(Duration::from_millis(120));
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    server.drain().expect("drain");
    for c in clients {
        c.join().expect("client thread");
    }

    // Every line of the snapshot parses (rename is atomic — even a
    // drain racing an export tick cannot tear the file) and the law
    // holds on the final flushed state.
    let counters = counters_from(&path);
    assert_law(&counters);
    let _ = std::fs::remove_file(&path);
}
