//! Streaming telemetry exporters.
//!
//! The daemon does not wait for process exit to publish its telemetry
//! (the batch CLI's `--trace FILE` model): an export ticker thread
//! snapshots the `pbc_trace` registry every interval and hands the
//! snapshot to each configured [`Exporter`]. One metrics model, several
//! transports — the architecture scaphandre uses for its exporter
//! family:
//!
//! * [`JsonLinesExporter`] — appends each snapshot as one JSON object
//!   per line to any `io::Write` (stdout, a file, a pipe);
//! * [`TraceSnapshotExporter`] — atomically rewrites a trace file in
//!   the standard `pbc-trace` JSONL schema (the file parses with
//!   `pbc_trace::json::parse` at *every* instant, even mid-drain,
//!   because updates go through a tmp-file + rename);
//! * [`crate::prom::PrometheusExporter`] — renders the snapshot in
//!   Prometheus text format for an HTTP scrape endpoint.

use pbc_trace::json::Value;
use pbc_trace::Snapshot;
use std::io::{self, Write};
use std::path::PathBuf;

/// One telemetry sink fed by the export ticker.
pub trait Exporter: Send {
    /// Short name for logs and errors.
    fn name(&self) -> &'static str;
    /// Publish one registry snapshot.
    #[must_use = "a failed export means the sink and the registry have diverged"]
    fn export(&mut self, snap: &Snapshot) -> io::Result<()>;
    /// Flush buffered output (called once at drain).
    #[must_use = "a failed flush can leave a torn final snapshot"]
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Renders each snapshot as a single JSON-lines record:
/// `{"type":"serve-snapshot","seq":N,"counters":{...},"gauges":{...}}`.
pub struct JsonLinesExporter<W: Write + Send> {
    sink: W,
    seq: u64,
}

impl<W: Write + Send> JsonLinesExporter<W> {
    /// Stream snapshots to `sink`.
    pub fn new(sink: W) -> Self {
        Self { sink, seq: 0 }
    }
}

/// Render one snapshot as a single-line JSON object (shared by the
/// JSON-lines exporter and its tests).
#[must_use]
pub fn snapshot_record(snap: &Snapshot, seq: u64) -> String {
    #[allow(clippy::cast_precision_loss)]
    let counters = Value::Obj(
        snap.counters
            .iter()
            .map(|(k, v)| (k.clone(), Value::Num(*v as f64)))
            .collect(),
    );
    let gauges = Value::Obj(
        snap.gauges
            .iter()
            .map(|(k, v)| (k.clone(), Value::Num(*v)))
            .collect(),
    );
    #[allow(clippy::cast_precision_loss)]
    let seq = seq as f64;
    Value::Obj(vec![
        ("type".into(), Value::Str("serve-snapshot".into())),
        ("seq".into(), Value::Num(seq)),
        ("counters".into(), counters),
        ("gauges".into(), gauges),
    ])
    .render()
}

impl<W: Write + Send> Exporter for JsonLinesExporter<W> {
    fn name(&self) -> &'static str {
        "json-lines"
    }

    fn export(&mut self, snap: &Snapshot) -> io::Result<()> {
        let line = snapshot_record(snap, self.seq);
        self.seq += 1;
        writeln!(self.sink, "{line}")
    }

    fn flush(&mut self) -> io::Result<()> {
        self.sink.flush()
    }
}

/// Periodically rewrites a full `pbc-trace` JSONL file, atomically.
///
/// A daemon killed (or drained) between ticks leaves the *previous*
/// complete snapshot on disk, never a torn half-write: the new contents
/// go to `<path>.tmp` first and replace the target with a rename, which
/// is atomic on POSIX filesystems.
pub struct TraceSnapshotExporter {
    path: PathBuf,
    tmp: PathBuf,
}

impl TraceSnapshotExporter {
    /// Snapshot into `path` (a sibling `<name>.tmp` is used as staging).
    #[must_use]
    pub fn new(path: PathBuf) -> Self {
        let mut tmp = path.clone().into_os_string();
        tmp.push(".tmp");
        Self { path, tmp: PathBuf::from(tmp) }
    }
}

impl Exporter for TraceSnapshotExporter {
    fn name(&self) -> &'static str {
        "trace-snapshot"
    }

    fn export(&mut self, _snap: &Snapshot) -> io::Result<()> {
        // `pbc_trace::to_jsonl` renders from a registry snapshot taken
        // under the registry lock; writing its output through the
        // tmp+rename pair makes the published file transactional.
        std::fs::write(&self.tmp, pbc_trace::to_jsonl())?;
        std::fs::rename(&self.tmp, &self.path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_lines_exporter_emits_parseable_records() {
        let mut snap = Snapshot {
            counters: std::collections::BTreeMap::new(),
            gauges: std::collections::BTreeMap::new(),
            spans: Vec::new(),
        };
        snap.counters.insert("serve.requests".into(), 7);
        snap.gauges.insert("serve.sessions".into(), 3.0);
        let mut buf: Vec<u8> = Vec::new();
        {
            let mut exp = JsonLinesExporter::new(&mut buf);
            exp.export(&snap).unwrap();
            exp.export(&snap).unwrap();
            exp.flush().unwrap();
        }
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for (i, line) in lines.iter().enumerate() {
            let v = pbc_trace::json::parse(line).unwrap();
            assert_eq!(
                v.get("type").and_then(pbc_trace::json::Value::as_str),
                Some("serve-snapshot")
            );
            assert_eq!(
                v.get("seq").and_then(pbc_trace::json::Value::as_f64),
                Some(i as f64)
            );
            let counters = v.get("counters").unwrap();
            assert_eq!(
                counters.get("serve.requests").and_then(pbc_trace::json::Value::as_f64),
                Some(7.0)
            );
        }
    }

    #[test]
    fn trace_snapshot_exporter_replaces_atomically() {
        let dir = std::env::temp_dir().join(format!(
            "pbc-serve-exporter-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        let snap = pbc_trace::snapshot();
        let mut exp = TraceSnapshotExporter::new(path.clone());
        exp.export(&snap).unwrap();
        let first = std::fs::read_to_string(&path).unwrap();
        for line in first.lines() {
            pbc_trace::json::parse(line).unwrap();
        }
        exp.export(&snap).unwrap();
        assert!(path.exists());
        assert!(!path.with_extension("jsonl.tmp").exists() || true, "tmp may linger only on failure");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
