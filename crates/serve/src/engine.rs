//! The serving engine: protocol dispatch over the live session map.
//!
//! [`ServeEngine`] is the transport-independent core of the daemon —
//! the TCP handler threads, the stdin loop, and the in-process bench
//! all feed request lines into [`ServeEngine::dispatch_into`] and get
//! one response line back. Everything the daemon knows lives here:
//!
//! * a session map (`id → Arc<Mutex<Session>>`) behind an `RwLock`, so
//!   requests for *different* nodes proceed concurrently and only
//!   same-node requests serialize;
//! * the optional fleet coordinator (one per daemon) behind its own
//!   mutex;
//! * the serving counters, with cached handles so the hot path pays one
//!   relaxed atomic add, not a registry lookup.
//!
//! The counter law enforced by the e2e tests: every dispatched line
//! except the control-plane verbs (`quit`, `shutdown`) increments
//! `serve.requests` and then exactly one of `serve.served_requests` or
//! `serve.rejected_requests`.

use crate::proto::{self, Request, ServeError};
use crate::session::Session;
use pbc_cluster::{parse_spec, ClusterCoordinator, Fleet, Objective, TenantSet};
use pbc_core::{BudgetOutcome, ObservationOutcome};
use pbc_par::Pool;
use pbc_powersim::{CpuMechanismState, MechanismState, NodeOperatingPoint};
use pbc_trace::names;
use pbc_types::{Bandwidth, PowerAllocation, Watts};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError, RwLock};

/// What the transport should do after a dispatched line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Send the response line and keep reading.
    Respond,
    /// Send the response line, then close this connection.
    Quit,
    /// Send the response line, then drain the whole daemon.
    Shutdown,
}

fn c(name: &'static str, cell: &'static OnceLock<pbc_trace::Counter>) -> &'static pbc_trace::Counter {
    cell.get_or_init(|| pbc_trace::counter(name))
}

fn c_requests() -> &'static pbc_trace::Counter {
    static C: OnceLock<pbc_trace::Counter> = OnceLock::new();
    c(names::SERVE_REQUESTS, &C)
}

fn c_served() -> &'static pbc_trace::Counter {
    static C: OnceLock<pbc_trace::Counter> = OnceLock::new();
    c(names::SERVE_SERVED_REQUESTS, &C)
}

fn c_rejected() -> &'static pbc_trace::Counter {
    static C: OnceLock<pbc_trace::Counter> = OnceLock::new();
    c(names::SERVE_REJECTED_REQUESTS, &C)
}

/// The transport-independent daemon core.
pub struct ServeEngine {
    sessions: RwLock<HashMap<u64, Arc<Mutex<Session>>>>,
    fleet: Mutex<Option<ClusterCoordinator>>,
    draining: AtomicBool,
}

impl Default for ServeEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl ServeEngine {
    /// An engine with no sessions and no fleet.
    #[must_use]
    pub fn new() -> Self {
        Self {
            sessions: RwLock::new(HashMap::new()),
            fleet: Mutex::new(None),
            draining: AtomicBool::new(false),
        }
    }

    /// Live sessions right now.
    #[must_use]
    pub fn session_count(&self) -> usize {
        self.sessions
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Flip the engine into drain mode: every subsequent non-control
    /// request is rejected with `shutting-down`. In-flight dispatches
    /// finish normally.
    pub fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
    }

    /// Is the engine draining?
    #[must_use]
    pub fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Dispatch one request line, writing the response line (without a
    /// trailing newline) into `out`. `out` is cleared first, so callers
    /// can reuse one buffer across a connection's lifetime.
    pub fn dispatch_into(&self, line: &str, out: &mut String) -> Disposition {
        out.clear();
        let parsed = proto::parse(line);
        // Control-plane verbs steer the transport, not the coordination
        // state; they bypass the request counters so a quiesced scrape
        // equals the final trace exactly.
        match parsed {
            Ok(Request::Quit) => {
                out.push_str("ok bye");
                return Disposition::Quit;
            }
            Ok(Request::Shutdown) => {
                out.push_str("ok draining");
                return Disposition::Shutdown;
            }
            _ => {}
        }
        c_requests().incr();
        let outcome = if self.draining() {
            Err(ServeError::ShuttingDown)
        } else {
            parsed.and_then(|req| self.handle(&req, out))
        };
        match outcome {
            Ok(()) => c_served().incr(),
            Err(err) => {
                out.clear();
                proto::render_err(out, &err);
                c_rejected().incr();
            }
        }
        Disposition::Respond
    }

    fn session(&self, id: u64) -> Result<Arc<Mutex<Session>>, ServeError> {
        self.sessions
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&id)
            .cloned()
            .ok_or(ServeError::UnknownNode(id))
    }

    fn set_sessions_gauge(&self) {
        #[allow(clippy::cast_precision_loss)]
        pbc_trace::gauge(names::SERVE_SESSIONS).set(self.session_count() as f64);
    }

    fn handle(&self, req: &Request, out: &mut String) -> Result<(), ServeError> {
        match req {
            Request::Node { id, platform, bench, budget } => {
                self.open_one(*id, platform, bench, *budget, out)
            }
            Request::Provision { count, platform, bench, budget } => {
                self.provision(*count, platform, bench, *budget, out)
            }
            Request::Budget { id, watts } => self.set_budget(*id, *watts, out),
            Request::Observe { id, perf, proc_w, mem_w, cap_proc, cap_mem } => {
                self.observe(*id, *perf, *proc_w, *mem_w, *cap_proc, *cap_mem, out)
            }
            Request::Query { id } => {
                let session = self.session(*id)?;
                let s = session.lock().unwrap_or_else(PoisonError::into_inner);
                proto::render_alloc(out, *id, s.tuner.best(), s.tuner.budget(), "best");
                Ok(())
            }
            Request::Free { id } => {
                let removed = self
                    .sessions
                    .write()
                    .unwrap_or_else(PoisonError::into_inner)
                    .remove(id);
                if removed.is_none() {
                    return Err(ServeError::UnknownNode(*id));
                }
                self.set_sessions_gauge();
                let _ = write!(out, "ok free {id}");
                Ok(())
            }
            Request::FleetInit { global, spec, objective, tenants } => {
                self.fleet_init(*global, spec, objective.as_deref(), tenants.as_deref(), out)
            }
            Request::FleetBudget { watts } => self.fleet_budget(*watts, out),
            Request::FleetQuery => self.fleet_query(out),
            Request::Stats => {
                let _ = write!(
                    out,
                    "ok stats requests={} served={} rejected={} sessions={}",
                    c_requests().get(),
                    // The request being answered is already counted but
                    // not yet resolved; report it as served so the line
                    // itself satisfies the law it states.
                    c_served().get() + 1,
                    c_rejected().get(),
                    self.session_count()
                );
                Ok(())
            }
            Request::Ping => {
                out.push_str("ok pong");
                Ok(())
            }
            // Handled in dispatch_into before counting.
            Request::Quit | Request::Shutdown => Ok(()),
        }
    }

    fn open_one(
        &self,
        id: u64,
        platform: &str,
        bench: &str,
        budget: f64,
        out: &mut String,
    ) -> Result<(), ServeError> {
        if self
            .sessions
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .contains_key(&id)
        {
            return Err(ServeError::NodeExists(id));
        }
        let session = Session::open(platform, bench, budget)?;
        let best = session.tuner.best();
        let total = session.tuner.budget();
        let mut map = self.sessions.write().unwrap_or_else(PoisonError::into_inner);
        if map.contains_key(&id) {
            return Err(ServeError::NodeExists(id));
        }
        map.insert(id, Arc::new(Mutex::new(session)));
        drop(map);
        pbc_trace::counter(names::SERVE_SESSIONS_OPENED).incr();
        self.set_sessions_gauge();
        proto::render_alloc(out, id, best, total, "opened");
        Ok(())
    }

    /// Open `count` identical sessions in one pooled job. The class's
    /// curve table is built (or fetched from the shared registry) once;
    /// the per-session coordinators are then constructed concurrently on
    /// the global `pbc-par` pool. Ids are assigned consecutively from
    /// one past the current maximum.
    fn provision(
        &self,
        count: usize,
        platform: &str,
        bench: &str,
        budget: f64,
        out: &mut String,
    ) -> Result<(), ServeError> {
        // Build one session eagerly: resolves slugs, validates the
        // budget, and warms the shared table so the pooled fan-out below
        // only pays coordinator construction.
        let first = Session::open(platform, bench, budget)?;
        let (floor, ceiling) = (first.floor, first.ceiling);
        let mut first = Some(first);
        let slots: Vec<Mutex<Result<Option<Session>, ServeError>>> = (0..count)
            .map(|i| Mutex::new(Ok(if i == 0 { first.take() } else { None })))
            .collect();
        if count > 1 {
            let (p, b) = (platform.to_string(), bench.to_string());
            let stats = Pool::global().run(count - 1, &|i| {
                let built = Session::open(&p, &b, budget).map(Some);
                *slots[i + 1].lock().unwrap_or_else(PoisonError::into_inner) = built;
            });
            if let Some(payload) = stats.panic {
                std::panic::resume_unwind(payload);
            }
        }
        let mut built = Vec::with_capacity(count);
        for slot in slots {
            match slot.into_inner().unwrap_or_else(PoisonError::into_inner) {
                Ok(Some(s)) => built.push(s),
                Ok(None) => {
                    return Err(ServeError::Build(
                        "provision worker never ran its slot".into(),
                    ))
                }
                Err(e) => return Err(e),
            }
        }
        let mut map = self.sessions.write().unwrap_or_else(PoisonError::into_inner);
        let base = map.keys().max().map_or(0, |m| m + 1);
        for (i, s) in built.into_iter().enumerate() {
            map.insert(base + i as u64, Arc::new(Mutex::new(s)));
        }
        drop(map);
        pbc_trace::counter(names::SERVE_SESSIONS_OPENED).add(count as u64);
        self.set_sessions_gauge();
        let _ = write!(
            out,
            "ok provision base={base} count={count} floor={} ceiling={}",
            floor.value(),
            ceiling.value()
        );
        Ok(())
    }

    fn set_budget(&self, id: u64, watts: f64, out: &mut String) -> Result<(), ServeError> {
        let session = self.session(id)?;
        let mut s = session.lock().unwrap_or_else(PoisonError::into_inner);
        match s.tuner.set_budget(Watts::new(watts)) {
            BudgetOutcome::Applied => {
                let next = s.tuner.next_allocation();
                proto::render_alloc(out, id, next, s.tuner.budget(), "applied");
                Ok(())
            }
            BudgetOutcome::Unchanged => {
                proto::render_alloc(out, id, s.tuner.best(), s.tuner.budget(), "unchanged");
                Ok(())
            }
            BudgetOutcome::RejectedNonFinite => Err(ServeError::RejectedBudget(format!(
                "budget {watts} is not finite"
            ))),
            BudgetOutcome::RejectedBelowMinimum => Err(ServeError::RejectedBudget(format!(
                "budget {watts} W is zero, negative, or below the platform floor"
            ))),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn observe(
        &self,
        id: u64,
        perf: f64,
        proc_w: f64,
        mem_w: f64,
        cap_proc: f64,
        cap_mem: f64,
        out: &mut String,
    ) -> Result<(), ServeError> {
        let session = self.session(id)?;
        let mut s = session.lock().unwrap_or_else(PoisonError::into_inner);
        // Only `alloc`, `perf_rel`, and the component powers steer the
        // online search (and its validation); the remaining fields are
        // solver outputs a remote client has no business reporting, so
        // they are synthesized neutral.
        let op = NodeOperatingPoint {
            alloc: PowerAllocation::new(Watts::new(cap_proc), Watts::new(cap_mem)),
            perf_rel: perf,
            proc_power: Watts::new(proc_w),
            mem_power: Watts::new(mem_w),
            work_rate: 0.0,
            bandwidth: Bandwidth::new(0.0),
            proc_busy: 0.0,
            mechanism: MechanismState::Cpu(CpuMechanismState {
                pstate: 0,
                duty: 1.0,
                cap_unenforceable: false,
            }),
        };
        let verdict = match s.tuner.observe(&op) {
            ObservationOutcome::Used => "used",
            ObservationOutcome::TrippedWatchdog => "watchdog",
            ObservationOutcome::RejectedNonFinite => {
                return Err(ServeError::RejectedObservation(format!(
                    "non-finite or negative perf surrogate {perf}"
                )))
            }
            ObservationOutcome::RejectedOutOfRange => {
                return Err(ServeError::RejectedObservation(format!(
                    "implausible operating point: perf={perf} proc={proc_w} mem={mem_w}"
                )))
            }
            ObservationOutcome::RejectedStale => {
                return Err(ServeError::RejectedObservation(format!(
                    "caps ({cap_proc}, {cap_mem}) do not match the issued probe — stale sample"
                )))
            }
        };
        let next = s.tuner.next_allocation();
        proto::render_alloc(out, id, next, s.tuner.budget(), verdict);
        Ok(())
    }

    fn fleet_init(
        &self,
        global: f64,
        spec: &str,
        objective: Option<&str>,
        tenants: Option<&str>,
        out: &mut String,
    ) -> Result<(), ServeError> {
        let mut fleet = self.fleet.lock().unwrap_or_else(PoisonError::into_inner);
        if fleet.is_some() {
            return Err(ServeError::FleetState("fleet already initialized".into()));
        }
        let objective = match objective {
            Some(name) => Objective::parse(name).map_err(|e| ServeError::Build(e.to_string()))?,
            None => Objective::default(),
        };
        let tenant_set = tenants
            .map(TenantSet::parse)
            .transpose()
            .map_err(|e| ServeError::Build(e.to_string()))?;
        // The wire spec is one token: `count:platform:bench` groups
        // joined by commas. Translate to the spec-file grammar.
        let text: String = spec
            .split(',')
            .map(|group| group.replace(':', " "))
            .collect::<Vec<_>>()
            .join("\n");
        let lines = parse_spec(&text).map_err(|e| ServeError::Build(e.to_string()))?;
        let built = Fleet::build(&lines).map_err(|e| ServeError::Build(e.to_string()))?;
        let nodes = built.len();
        let mut coord = ClusterCoordinator::new(built, Watts::new(global))
            .map_err(|e| ServeError::Build(e.to_string()))?
            .with_objective(objective);
        let tenant_count = tenant_set.as_ref().map_or(0, TenantSet::len);
        if let Some(set) = tenant_set {
            coord = coord.with_tenants(set);
        }
        coord.provision().map_err(|e| ServeError::Build(e.to_string()))?;
        let enforced = coord.enforced_total();
        *fleet = Some(coord);
        let _ = write!(
            out,
            "ok fleet nodes={nodes} enforced={} objective={} tenants={tenant_count}",
            enforced.value(),
            objective.name()
        );
        Ok(())
    }

    fn fleet_budget(&self, watts: f64, out: &mut String) -> Result<(), ServeError> {
        let mut fleet = self.fleet.lock().unwrap_or_else(PoisonError::into_inner);
        let Some(coord) = fleet.as_mut() else {
            return Err(ServeError::FleetState("fleet not initialized".into()));
        };
        coord
            .set_global_budget(Watts::new(watts))
            .map_err(|e| ServeError::RejectedBudget(e.to_string()))?;
        coord.step().map_err(|e| ServeError::Build(e.to_string()))?;
        let _ = write!(
            out,
            "ok fleet budget={watts} enforced={}",
            coord.enforced_total().value()
        );
        Ok(())
    }

    fn fleet_query(&self, out: &mut String) -> Result<(), ServeError> {
        let fleet = self.fleet.lock().unwrap_or_else(PoisonError::into_inner);
        let Some(coord) = fleet.as_ref() else {
            return Err(ServeError::FleetState("fleet not initialized".into()));
        };
        let caps = coord.enforced_caps();
        let first = caps.first().copied().unwrap_or(Watts::ZERO);
        let (min, max) = caps
            .iter()
            .fold((first, first), |(lo, hi), &c| (lo.min(c), hi.max(c)));
        let _ = write!(
            out,
            "ok fleet nodes={} enforced={} min_cap={} max_cap={} objective={} tenants={}",
            caps.len(),
            coord.enforced_total().value(),
            min.value(),
            max.value(),
            coord.objective().name(),
            coord.tenants().map_or(0, TenantSet::len)
        );
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_init_carries_objective_and_tenants_onto_the_coordinator() {
        let engine = ServeEngine::new();
        let mut out = String::new();
        let d = engine.dispatch_into(
            "fleet init 800 2:ivybridge:stream,2:haswell:dgemm obj=max-min \
             tenants=web:3:gold,batch:1",
            &mut out,
        );
        assert_eq!(d, Disposition::Respond);
        assert!(
            out.contains("objective=max-min") && out.contains("tenants=2"),
            "unexpected init response: {out}"
        );
        out.clear();
        engine.dispatch_into("fleet query", &mut out);
        assert!(
            out.contains("objective=max-min") && out.contains("tenants=2"),
            "unexpected query response: {out}"
        );
    }

    #[test]
    fn fleet_init_rejects_garbage_objectives_and_tenants() {
        for line in [
            "fleet init 800 2:ivybridge:stream obj=round-robin",
            "fleet init 800 2:ivybridge:stream tenants=web:0",
            "fleet init 800 2:ivybridge:stream tenants=web:3,web:1",
        ] {
            let engine = ServeEngine::new();
            let mut out = String::new();
            engine.dispatch_into(line, &mut out);
            assert!(out.starts_with("err "), "{line} -> {out}");
        }
    }
}
