//! A dependency-free log-bucketed latency histogram.
//!
//! The serve bench needs p50/p99/p999 over millions of samples without
//! storing them, and without a crates.io histogram dependency (the
//! workspace is registry-free). The classic trick: bucket by the
//! sample's binary magnitude plus a few linear sub-bucket bits — here
//! [`SUB_BITS`] = 3, i.e. 8 sub-buckets per power of two — giving a
//! fixed 512-slot array covering the full `u64` nanosecond range with a
//! worst-case relative quantization error of 1/8 (12.5%), which is far
//! below the 50 µs acceptance ceiling's slack.

/// Linear sub-bucket bits per binary magnitude.
const SUB_BITS: u32 = 3;
/// Sub-buckets per power of two.
const SUBS: usize = 1 << SUB_BITS;
/// Total bucket count: 64 magnitudes × 8 sub-buckets.
const BUCKETS: usize = 64 * SUBS;

/// Fixed-footprint histogram of `u64` samples (nanoseconds, by
/// convention here, though the math is unit-agnostic).
#[derive(Clone)]
pub struct LatencyHistogram {
    buckets: Box<[u64; BUCKETS]>,
    count: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

fn bucket_of(v: u64) -> usize {
    // Values below SUBS map 1:1 onto the first buckets; larger values
    // take the top SUB_BITS bits after the leading one as the
    // sub-bucket.
    if v < SUBS as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let sub = (v >> (msb - SUB_BITS)) as usize & (SUBS - 1);
    (msb as usize) * SUBS + sub
}

/// The (inclusive) upper bound of a bucket — the value reported for any
/// sample that landed in it, biasing percentiles conservatively upward.
fn bucket_upper(b: usize) -> u64 {
    if b < SUBS {
        return b as u64;
    }
    let msb = (b / SUBS) as u32;
    let sub = (b % SUBS) as u128;
    // First value of the next sub-bucket, minus one. Addition, not OR:
    // when `sub + 1 == SUBS` the carry must propagate into the next
    // magnitude. Widened to u128 before shifting: for msb=63 the
    // sub-bucket term `(sub + 1) << 60` itself overflows u64 on the top
    // sub-bucket, so the whole expression — not just the add — must be
    // computed wide, then clamped to the top of the u64 range.
    let upper = (1u128 << msb) + ((sub + 1) << (msb - SUB_BITS)) - 1;
    u64::try_from(upper).unwrap_or(u64::MAX)
}

impl LatencyHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self { buckets: Box::new([0; BUCKETS]), count: 0, max: 0 }
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.max = self.max.max(v);
    }

    /// Samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest sample recorded (exact, not bucketed).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += *b;
        }
        self.count += other.count;
        self.max = self.max.max(other.max);
    }

    /// The value at quantile `q` in `[0, 1]` — the upper bound of the
    /// bucket holding the `ceil(q · count)`-th smallest sample (so the
    /// estimate can only over-report, never under-report, a latency).
    /// Returns 0 for an empty histogram.
    #[must_use]
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let clamped = q.clamp(0.0, 1.0);
        // .ceil() then u64: rank is in [1, count], an exact integer.
        #[allow(clippy::cast_possible_truncation)]
        let rank = ((clamped * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // The top bucket's upper bound can overshoot the true
                // maximum by up to 12.5%; the exact max is tighter.
                return bucket_upper(b).min(self.max);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in 0..8u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.percentile(0.0), 0);
        assert_eq!(h.percentile(1.0), 7);
    }

    #[test]
    fn relative_error_is_bounded() {
        let mut h = LatencyHistogram::new();
        for exp in 0..50u32 {
            let v = (1u64 << exp) + (1u64 << exp) / 3;
            h.record(v);
            let b = bucket_of(v);
            let upper = bucket_upper(b);
            assert!(upper >= v, "upper {upper} < {v}");
            assert!(
                (upper - v) as f64 <= v as f64 / 8.0 + 1.0,
                "error too large at {v}: upper {upper}"
            );
        }
    }

    #[test]
    fn percentiles_are_ordered_and_conservative() {
        let mut h = LatencyHistogram::new();
        // 10000 samples at ~1µs, 10 at ~100µs, 1 at ~5ms.
        for i in 0..10_000u64 {
            h.record(1_000 + i % 32);
        }
        for _ in 0..10 {
            h.record(100_000);
        }
        h.record(5_000_000);
        let p50 = h.percentile(0.50);
        let p99 = h.percentile(0.99);
        let p999 = h.percentile(0.999);
        assert!(p50 >= 1_000 && p50 <= 1_200, "p50 {p50}");
        assert!(p99 <= 1_200, "p99 {p99} should still be in the bulk");
        assert!(p999 >= 100_000, "p999 {p999} should see the outliers");
        assert!(p50 <= p99 && p99 <= p999);
        assert_eq!(h.percentile(1.0), 5_000_000);
    }

    /// Edge values around the linear/log boundary and at the very top of
    /// the u64 range. Before the widening fix, `bucket_upper` computed
    /// `(sub + 1) << 60` in u64 for the top sub-bucket of msb 63 —
    /// overflow panic in debug, silent wrap (and a tiny bogus upper
    /// bound) in release.
    #[test]
    fn round_trip_holds_at_the_edges() {
        for v in [0, SUBS as u64 - 1, SUBS as u64, u64::MAX] {
            let b = bucket_of(v);
            assert!(b < BUCKETS, "bucket {b} out of range for {v}");
            let upper = bucket_upper(b);
            assert!(upper >= v, "bucket_upper({b}) = {upper} < sample {v}");
        }
        // The linear region is exact; the top bucket saturates exactly at
        // the end of the u64 range.
        assert_eq!(bucket_upper(bucket_of(0)), 0);
        assert_eq!(bucket_upper(bucket_of(SUBS as u64 - 1)), SUBS as u64 - 1);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_upper(BUCKETS - 1), u64::MAX);
    }

    /// Recording near-u64::MAX samples must keep percentiles sane (the
    /// user-visible symptom of the overflow was a corrupted p100).
    #[test]
    fn extreme_samples_report_conservatively() {
        let mut h = LatencyHistogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        h.record(1);
        assert_eq!(h.percentile(1.0), u64::MAX);
        assert!(h.percentile(0.9) >= u64::MAX - 1);
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut both = LatencyHistogram::new();
        for i in 0..500u64 {
            let v = i * 37 + 5;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), both.count());
        assert_eq!(a.max(), both.max());
        for q in [0.1, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(a.percentile(q), both.percentile(q), "q={q}");
        }
    }
}
