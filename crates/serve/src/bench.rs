//! The serve load generator (`pbc serve-bench`).
//!
//! Two phases, two numbers:
//!
//! 1. **Throughput** — boot a real daemon in-process, `provision`
//!    thousands of sessions over the wire, then drive pipelined
//!    set-budget batches from several client threads over live TCP
//!    connections: each worker writes a batch of `pipeline` requests,
//!    flushes once, and reads the batch of responses, so the syscall
//!    cost amortizes across the batch the way a production client
//!    multiplexing many nodes onto one connection would behave. The
//!    reported figure is sustained responses per second.
//! 2. **Dispatch latency** — drive the *identical* dispatch path
//!    (`parse → session lock → set_budget table fast path → render`)
//!    in-process and record every set-budget→allocation latency in a
//!    log-bucketed [`LatencyHistogram`]. Socket scheduling noise on a
//!    loaded host would otherwise swamp the sub-microsecond signal PR 7
//!    bought; the dispatch path is byte-for-byte the one the TCP
//!    handler runs.
//!
//! Budgets alternate per session between two watt points inside the
//! class's `[floor, ceiling]`, so every request exercises the full
//! `set_budget(Applied)` + table-seed + `next_allocation` path, never
//! the `Unchanged` short-circuit.

use crate::engine::ServeEngine;
use crate::hist::LatencyHistogram;
use crate::proto;
use crate::server::{Server, ServerConfig};
use pbc_trace::json::Value;
use pbc_trace::names;
use pbc_types::{PbcError, Result};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Load-generator knobs.
pub struct BenchConfig {
    /// Concurrent simulated nodes (coordination sessions).
    pub nodes: usize,
    /// Client worker threads, each with its own TCP connection.
    pub workers: usize,
    /// Requests written per batch before the flush + response read.
    pub pipeline: usize,
    /// Throughput measurement window.
    pub duration: Duration,
    /// Dispatch-latency measurement window.
    pub dispatch_duration: Duration,
    /// Platform slug for every session.
    pub platform: String,
    /// Benchmark slug for every session.
    pub bench: String,
}

impl Default for BenchConfig {
    fn default() -> Self {
        Self {
            nodes: 1024,
            workers: 2,
            pipeline: 64,
            duration: Duration::from_millis(1500),
            dispatch_duration: Duration::from_millis(500),
            platform: "ivybridge".into(),
            bench: "stream".into(),
        }
    }
}

/// What the run measured.
pub struct BenchReport {
    /// Sessions actually provisioned.
    pub nodes: usize,
    /// Client threads used.
    pub workers: usize,
    /// Batch depth used.
    pub pipeline: usize,
    /// Responses received over TCP during the throughput window.
    pub responses: u64,
    /// The throughput window actually elapsed.
    pub elapsed: Duration,
    /// Sustained queries per second over live TCP.
    pub qps: f64,
    /// In-process dispatches timed for the latency histogram.
    pub dispatches: u64,
    /// set-budget→allocation latency, nanoseconds.
    pub p50_ns: u64,
    /// 99th percentile, nanoseconds.
    pub p99_ns: u64,
    /// 99.9th percentile, nanoseconds.
    pub p999_ns: u64,
    /// `serve.requests` at the end of the run.
    pub requests: u64,
    /// `serve.served_requests` at the end of the run.
    pub served: u64,
    /// `serve.rejected_requests` at the end of the run.
    pub rejected: u64,
}

impl BenchReport {
    /// One `BENCH_serve.json` record (`"type":"serve-bench"`).
    #[must_use]
    pub fn json_line(&self) -> String {
        #[allow(clippy::cast_precision_loss)]
        let f = |v: u64| Value::Num(v as f64);
        let us = |ns: u64| Value::Num(ns as f64 / 1000.0);
        Value::Obj(vec![
            ("type".into(), Value::Str("serve-bench".into())),
            ("nodes".into(), f(self.nodes as u64)),
            ("workers".into(), f(self.workers as u64)),
            ("pipeline".into(), f(self.pipeline as u64)),
            ("responses".into(), f(self.responses)),
            ("elapsed_ms".into(), Value::Num(self.elapsed.as_secs_f64() * 1000.0)),
            ("qps".into(), Value::Num(self.qps)),
            ("dispatches".into(), f(self.dispatches)),
            ("p50_us".into(), us(self.p50_ns)),
            ("p99_us".into(), us(self.p99_ns)),
            ("p999_us".into(), us(self.p999_ns)),
            ("requests".into(), f(self.requests)),
            ("served".into(), f(self.served)),
            ("rejected".into(), f(self.rejected)),
        ])
        .render()
    }
}

fn io_err(context: &str, e: &std::io::Error) -> PbcError {
    PbcError::Io(format!("{context}: {e}"))
}

/// Pull `key=<f64>` out of a response line.
fn field_f64(line: &str, key: &str) -> Option<f64> {
    line.split_ascii_whitespace()
        .find_map(|f| f.strip_prefix(key))
        .and_then(|v| v.parse().ok())
}

/// Boot a daemon in-process, drive it, and report the numbers.
#[must_use = "the bench result carries either the report or the failure"]
pub fn run_serve_bench(cfg: &BenchConfig) -> Result<BenchReport> {
    if cfg.nodes == 0 || cfg.workers == 0 || cfg.pipeline == 0 {
        return Err(PbcError::InvalidInput(
            "serve-bench needs nodes, workers, and pipeline all positive".into(),
        ));
    }
    let engine = Arc::new(ServeEngine::new());
    let server = Server::start(Arc::clone(&engine), ServerConfig::default())
        .map_err(|e| io_err("binding the bench daemon", &e))?;
    let addr = server.local_addr();

    // Provision every session over the wire, like any client would.
    let (base, b_low, b_high) = {
        let stream =
            TcpStream::connect(addr).map_err(|e| io_err("connecting for provision", &e))?;
        let mut reader = BufReader::new(
            stream.try_clone().map_err(|e| io_err("cloning the provision stream", &e))?,
        );
        let mut writer = BufWriter::new(stream);
        writeln!(
            writer,
            "provision {} {} {} 208",
            cfg.nodes, cfg.platform, cfg.bench
        )
        .and_then(|()| writer.flush())
        .map_err(|e| io_err("sending provision", &e))?;
        let mut line = String::new();
        reader
            .read_line(&mut line)
            .map_err(|e| io_err("reading the provision response", &e))?;
        let parsed = (
            field_f64(&line, "base="),
            field_f64(&line, "floor="),
            field_f64(&line, "ceiling="),
        );
        let (Some(base), Some(floor), Some(ceiling)) = parsed else {
            return Err(PbcError::InvalidInput(format!(
                "provision failed: {}",
                line.trim()
            )));
        };
        // Two budget points inside the schedulable band; alternating
        // between them forces a real (Applied) budget change on every
        // request.
        let low = floor + (ceiling - floor) * 0.25;
        let high = floor + (ceiling - floor) * 0.75;
        let _ = writeln!(writer, "quit").and_then(|()| writer.flush());
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let base = base.round() as u64;
        (base, low, high)
    };

    // Throughput phase: pipelined batches from `workers` threads.
    let total = Arc::new(AtomicU64::new(0));
    let per_worker = cfg.nodes.div_ceil(cfg.workers);
    let started = Instant::now();
    std::thread::scope(|scope| -> Result<()> {
        let mut handles = Vec::new();
        for w in 0..cfg.workers {
            let total = Arc::clone(&total);
            let first = base + (w * per_worker) as u64;
            let count = per_worker.min(cfg.nodes.saturating_sub(w * per_worker)) as u64;
            let (duration, pipeline) = (cfg.duration, cfg.pipeline);
            handles.push(scope.spawn(move || -> Result<()> {
                if count == 0 {
                    return Ok(());
                }
                let stream = TcpStream::connect(addr)
                    .map_err(|e| io_err("connecting a bench worker", &e))?;
                let mut reader = BufReader::new(
                    stream
                        .try_clone()
                        .map_err(|e| io_err("cloning a worker stream", &e))?,
                );
                let mut writer = BufWriter::new(stream);
                let deadline = Instant::now() + duration;
                let mut batch = String::with_capacity(pipeline * 32);
                let mut response = String::new();
                let mut seq: u64 = 0;
                while Instant::now() < deadline {
                    batch.clear();
                    use std::fmt::Write as _;
                    for k in 0..pipeline as u64 {
                        let id = first + (seq + k) % count;
                        // Per-session alternation between the two watt
                        // points: every request applies a real change.
                        let budget = if ((seq + k) / count) % 2 == 0 { b_low } else { b_high };
                        let _ = writeln!(batch, "budget {id} {budget}");
                    }
                    seq += pipeline as u64;
                    writer
                        .write_all(batch.as_bytes())
                        .and_then(|()| writer.flush())
                        .map_err(|e| io_err("writing a bench batch", &e))?;
                    for _ in 0..pipeline {
                        response.clear();
                        let n = reader
                            .read_line(&mut response)
                            .map_err(|e| io_err("reading a bench response", &e))?;
                        if n == 0 {
                            return Err(PbcError::Io(
                                "bench daemon closed the connection mid-batch".into(),
                            ));
                        }
                        if !response.starts_with("alloc ") {
                            return Err(PbcError::InvalidInput(format!(
                                "bench expected an alloc response, got: {}",
                                response.trim()
                            )));
                        }
                    }
                    total.fetch_add(pipeline as u64, Ordering::Relaxed);
                }
                let _ = writeln!(writer, "quit").and_then(|()| writer.flush());
                Ok(())
            }));
        }
        for h in handles {
            match h.join() {
                Ok(r) => r?,
                Err(p) => std::panic::resume_unwind(p),
            }
        }
        Ok(())
    })?;
    let elapsed = started.elapsed();
    let responses = total.load(Ordering::Relaxed);
    let qps = if elapsed.as_secs_f64() > 0.0 {
        #[allow(clippy::cast_precision_loss)]
        let r = responses as f64;
        r / elapsed.as_secs_f64()
    } else {
        0.0
    };

    // Dispatch-latency phase: the identical dispatch path, in-process.
    let mut hist = LatencyHistogram::new();
    let mut line = String::with_capacity(64);
    let mut response = String::with_capacity(96);
    let lat_deadline = Instant::now() + cfg.dispatch_duration;
    let mut seq: u64 = 0;
    let nodes = cfg.nodes as u64;
    while Instant::now() < lat_deadline {
        // Time a small burst per clock read to keep clock overhead out
        // of the tail without hiding per-request behavior.
        for _ in 0..8 {
            use std::fmt::Write as _;
            let id = base + seq % nodes;
            let budget = if (seq / nodes) % 2 == 0 { b_low } else { b_high };
            seq += 1;
            line.clear();
            let _ = write!(line, "budget {id} {budget}");
            let t0 = Instant::now();
            let _ = engine.dispatch_into(&line, &mut response);
            let ns = t0.elapsed().as_nanos() as u64;
            hist.record(ns);
            if proto::parse_alloc_line(&response).is_none() {
                return Err(PbcError::InvalidInput(format!(
                    "dispatch phase expected an alloc response, got: {response}"
                )));
            }
        }
    }

    server.drain().map_err(|e| io_err("draining the bench daemon", &e))?;
    Ok(BenchReport {
        nodes: cfg.nodes,
        workers: cfg.workers,
        pipeline: cfg.pipeline,
        responses,
        elapsed,
        qps,
        dispatches: hist.count(),
        p50_ns: hist.percentile(0.50),
        p99_ns: hist.percentile(0.99),
        p999_ns: hist.percentile(0.999),
        requests: pbc_trace::counter(names::SERVE_REQUESTS).get(),
        served: pbc_trace::counter(names::SERVE_SERVED_REQUESTS).get(),
        rejected: pbc_trace::counter(names::SERVE_REJECTED_REQUESTS).get(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_bench_runs_end_to_end() {
        // Tiny windows: this is a correctness smoke, not a measurement.
        let cfg = BenchConfig {
            nodes: 8,
            workers: 2,
            pipeline: 4,
            duration: Duration::from_millis(80),
            dispatch_duration: Duration::from_millis(40),
            ..BenchConfig::default()
        };
        let report = run_serve_bench(&cfg).unwrap();
        assert!(report.responses > 0, "no responses over TCP");
        assert!(report.qps > 0.0);
        assert!(report.dispatches > 0);
        assert!(report.p50_ns <= report.p99_ns && report.p99_ns <= report.p999_ns);
        let line = report.json_line();
        let v = pbc_trace::json::parse(&line).unwrap();
        assert_eq!(
            v.get("type").and_then(pbc_trace::json::Value::as_str),
            Some("serve-bench")
        );
        assert!(v.get("qps").and_then(pbc_trace::json::Value::as_f64).is_some());
    }
}
