//! One coordination session: an [`OnlineCoordinator`] for a simulated
//! node, seeded from the shared steady-state fast path.
//!
//! # The construction recipe (the equivalence contract)
//!
//! The daemon must answer *identically* to the offline batch path, so a
//! session is built from public pieces only, in a fixed order any
//! offline replayer can mirror:
//!
//! 1. resolve the platform preset and benchmark by slug;
//! 2. `CurveTable::shared(&platform, &bench.demand)` — the process-wide
//!    oracle table for the node's `(platform, workload-class)`, shared
//!    across every session of the class as an `Arc`;
//! 3. `OnlineConfig { min_budget: platform.min_node_power(), ..default }`;
//! 4. initial split = `table.alloc_at(budget)` (the table optimum),
//!    falling back to an even `PowerAllocation::split(budget, 0.5)`
//!    when the budget sits below the table floor;
//! 5. `OnlineCoordinator::new(budget, initial, config).with_table(table)`.
//!
//! `crates/serve/tests/replay_equivalence.rs` holds the daemon to this:
//! a request log replayed through a fresh offline coordinator built by
//! the same recipe must produce bit-identical allocations.

use crate::proto::ServeError;
use pbc_core::{node_ceiling, node_floor, CurveTable, OnlineConfig, OnlineCoordinator};
use pbc_platform::{presets, NodeSpec, Platform, PlatformId};
use pbc_types::{PowerAllocation, Watts};
use pbc_workloads::{by_name, Target};

/// One live coordination session.
pub struct Session {
    /// The online search for this node.
    pub tuner: OnlineCoordinator,
    /// Smallest schedulable node budget for the session's class.
    pub floor: Watts,
    /// Budget past which extra watts are stranded for the class.
    pub ceiling: Watts,
}

/// Resolve a platform slug to its preset.
#[must_use = "the lookup failure is a typed protocol rejection"]
pub fn resolve_platform(slug: &str) -> Result<Platform, ServeError> {
    PlatformId::from_slug(slug)
        .map(presets::by_id)
        .ok_or_else(|| ServeError::UnknownPlatform(slug.to_string()))
}

impl Session {
    /// Open a session by the recipe in the module docs.
    #[must_use = "the session result carries either the session or the typed rejection"]
    pub fn open(platform_slug: &str, bench_slug: &str, budget: f64) -> Result<Session, ServeError> {
        let platform = resolve_platform(platform_slug)?;
        let bench = by_name(bench_slug)
            .ok_or_else(|| ServeError::UnknownBench(bench_slug.to_string()))?;
        match (&platform.spec, bench.target) {
            (NodeSpec::Cpu { .. }, Target::Cpu) | (NodeSpec::Gpu(_), Target::Gpu) => {}
            _ => {
                return Err(ServeError::Build(format!(
                    "benchmark {bench_slug:?} does not target platform {platform_slug:?}"
                )))
            }
        }
        if !budget.is_finite() || budget <= 0.0 {
            return Err(ServeError::RejectedBudget(format!(
                "budget {budget} is not a positive finite wattage"
            )));
        }
        let budget = Watts::new(budget);
        let min = platform.min_node_power();
        if budget < min {
            return Err(ServeError::RejectedBudget(format!(
                "budget {} W is below the {} platform floor of {} W",
                budget.value(),
                platform_slug,
                min.value()
            )));
        }
        let table = CurveTable::shared(&platform, &bench.demand)
            .map_err(|e| ServeError::Build(e.to_string()))?;
        let initial = table
            .alloc_at(budget)
            .unwrap_or_else(|| PowerAllocation::split(budget, 0.5));
        let config = OnlineConfig { min_budget: min, ..OnlineConfig::default() };
        Ok(Session {
            tuner: OnlineCoordinator::new(budget, initial, config).with_table(table),
            floor: node_floor(&platform, &bench.demand),
            ceiling: node_ceiling(&platform, &bench.demand),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_resolves_and_seeds_from_the_table() {
        let s = Session::open("ivybridge", "stream", 208.0).unwrap();
        assert_eq!(s.tuner.budget(), Watts::new(208.0));
        assert!(s.floor < s.ceiling);
        // The initial split is the table optimum, not the even split.
        let table = CurveTable::shared(
            &resolve_platform("ivybridge").unwrap(),
            &by_name("stream").unwrap().demand,
        )
        .unwrap();
        let expect = table.alloc_at(Watts::new(208.0)).unwrap();
        assert_eq!(s.tuner.best(), expect);
    }

    #[test]
    fn open_rejects_with_typed_errors() {
        assert!(matches!(
            Session::open("nope", "stream", 208.0),
            Err(ServeError::UnknownPlatform(_))
        ));
        assert!(matches!(
            Session::open("ivybridge", "nope", 208.0),
            Err(ServeError::UnknownBench(_))
        ));
        assert!(matches!(
            Session::open("ivybridge", "sgemm", 208.0),
            Err(ServeError::Build(_))
        ));
        assert!(matches!(
            Session::open("ivybridge", "stream", f64::NAN),
            Err(ServeError::RejectedBudget(_))
        ));
        assert!(matches!(
            Session::open("ivybridge", "stream", 1.0),
            Err(ServeError::RejectedBudget(_))
        ));
    }
}
