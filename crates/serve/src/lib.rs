//! # pbc-serve
//!
//! The coordination daemon: the paper's COORD policy, served
//! continuously instead of run as a batch CLI.
//!
//! Every other path in the workspace answers one question and exits;
//! `pbc serve` keeps thousands of [`OnlineCoordinator`]-backed sessions
//! live behind a dependency-free line protocol (TCP and stdin), turns
//! PR 7's sub-microsecond fast paths into sustained queries/sec, and
//! streams telemetry continuously through an [`Exporter`] fleet
//! (JSON-lines, atomic trace snapshots, and a hand-rolled Prometheus
//! scrape endpoint) instead of waiting for process exit.
//!
//! The layering, transport-independent core first:
//!
//! * [`proto`] — the wire grammar: parse request lines, render
//!   response lines, typed [`ServeError`] rejections. Floats cross the
//!   wire via Rust's shortest round-trip `Display`, making replayed
//!   responses bit-identical to offline coordinator calls.
//! * [`session`] — one coordination session: an `OnlineCoordinator`
//!   seeded from the shared [`CurveTable`] fast path, built by a fixed
//!   public recipe any offline replayer can mirror.
//! * [`engine`] — protocol dispatch over the live session map; the
//!   serving counter law `serve.requests == serve.served_requests +
//!   serve.rejected_requests` is enforced here.
//! * [`exporter`] / [`prom`] — the streaming telemetry fleet.
//! * [`server`] — the daemon shell: TCP accept loop, export ticker,
//!   graceful drain (stop accepting → finish in-flight → final flush,
//!   no torn trace files).
//! * [`hist`] / [`bench`] — the dependency-free log-bucketed latency
//!   histogram and the `pbc serve-bench` load generator behind
//!   `BENCH_serve.json`.
//!
//! Protocol grammar, exporter architecture, and bench methodology are
//! documented in `docs/SERVING.md`.
//!
//! [`OnlineCoordinator`]: pbc_core::OnlineCoordinator
//! [`CurveTable`]: pbc_core::CurveTable
//! [`Exporter`]: exporter::Exporter
//! [`ServeError`]: proto::ServeError

pub mod bench;
pub mod engine;
pub mod exporter;
pub mod hist;
pub mod prom;
pub mod proto;
pub mod server;
pub mod session;

pub use bench::{run_serve_bench, BenchConfig, BenchReport};
pub use engine::{Disposition, ServeEngine};
pub use exporter::{Exporter, JsonLinesExporter, TraceSnapshotExporter};
pub use hist::LatencyHistogram;
pub use prom::{render_prometheus, PrometheusExporter};
pub use proto::{parse, parse_alloc_line, Request, ServeError};
pub use server::{Server, ServerConfig};
pub use session::Session;
