//! A hand-rolled Prometheus text-format scrape endpoint.
//!
//! [`render_prometheus`] maps the `pbc_trace` registry onto the
//! Prometheus exposition format (text version 0.0.4): dotted metric
//! names become underscore-mangled names under a `pbc_` prefix
//! (`serve.requests` → `pbc_serve_requests`), counters get a
//! `# TYPE … counter` header, gauges `# TYPE … gauge`. No client
//! library, no HTTP framework — the endpoint speaks just enough
//! HTTP/1.1 for a Prometheus scraper (or `curl`): it reads a request
//! head, answers `GET /metrics` with `200 text/plain`, anything else
//! with `404`, and closes the connection (`Connection: close`).
//!
//! The endpoint serves the body cached by the last export tick, so a
//! scrape is two syscalls, never a registry walk on the scrape path;
//! after the daemon quiesces (one tick with no traffic), scrape totals
//! are exactly the final trace counters — an equality the e2e smoke
//! test asserts.

use crate::exporter::Exporter;
use pbc_trace::{names, Snapshot};
use std::fmt::Write as _;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

/// Mangle a dotted trace name into a Prometheus metric name.
#[must_use]
pub fn mangle(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    out.push_str("pbc_");
    for ch in name.chars() {
        if ch.is_ascii_alphanumeric() {
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    out
}

/// Render a snapshot in the Prometheus text exposition format.
#[must_use]
pub fn render_prometheus(snap: &Snapshot) -> String {
    let mut out = String::new();
    for (name, v) in &snap.counters {
        let m = mangle(name);
        let _ = writeln!(out, "# TYPE {m} counter");
        let _ = writeln!(out, "{m} {v}");
    }
    for (name, v) in &snap.gauges {
        let m = mangle(name);
        let _ = writeln!(out, "# TYPE {m} gauge");
        let _ = writeln!(out, "{m} {v}");
    }
    out
}

/// The shared body cell: export ticks write, scrape threads read.
type Body = Arc<Mutex<String>>;

/// The exporter half: refreshes the cached scrape body each tick.
pub struct PrometheusExporter {
    body: Body,
}

impl Exporter for PrometheusExporter {
    fn name(&self) -> &'static str {
        "prometheus"
    }

    fn export(&mut self, snap: &Snapshot) -> io::Result<()> {
        let rendered = render_prometheus(snap);
        *self.body.lock().unwrap_or_else(PoisonError::into_inner) = rendered;
        Ok(())
    }
}

/// The listener half: a running scrape endpoint.
pub struct PromEndpoint {
    addr: SocketAddr,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl PromEndpoint {
    /// The address the endpoint is listening on.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Join the listener thread (after the shutdown flag is set).
    pub fn join(mut self) {
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Bind the scrape endpoint on `addr` and return the paired
/// `(exporter, endpoint)`. The listener polls `shutdown` between
/// accepts and exits once it flips.
#[must_use = "a failed bind leaves the daemon without its scrape endpoint"]
pub fn start_endpoint(
    addr: &str,
    shutdown: Arc<AtomicBool>,
) -> io::Result<(PrometheusExporter, PromEndpoint)> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let local = listener.local_addr()?;
    let body: Body = Arc::new(Mutex::new(String::new()));
    let serve_body = Arc::clone(&body);
    let thread = std::thread::Builder::new()
        .name("pbc-serve-prom".into())
        .spawn(move || loop {
            if shutdown.load(Ordering::SeqCst) {
                break;
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    let _ = answer_scrape(stream, &serve_body);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(5)),
            }
        })?;
    Ok((
        PrometheusExporter { body },
        PromEndpoint { addr: local, thread: Some(thread) },
    ))
}

/// Speak one HTTP/1.1 exchange on an accepted connection.
fn answer_scrape(mut stream: std::net::TcpStream, body: &Body) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.set_nonblocking(false)?;
    // Read until the end of the request head (CRLFCRLF) or the buffer
    // cap; a Prometheus GET has no body.
    let mut head = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        head.extend_from_slice(&chunk[..n]);
        if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() > 8192 {
            break;
        }
    }
    let request = String::from_utf8_lossy(&head);
    let target = request
        .lines()
        .next()
        .and_then(|l| l.split_ascii_whitespace().nth(1))
        .unwrap_or("");
    let ok = request.starts_with("GET ") && (target == "/metrics" || target == "/");
    if ok {
        pbc_trace::counter(names::SERVE_SCRAPES).incr();
        let text = body.lock().unwrap_or_else(PoisonError::into_inner).clone();
        let header = format!(
            "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            text.len()
        );
        stream.write_all(header.as_bytes())?;
        stream.write_all(text.as_bytes())?;
    } else {
        let msg = "only GET /metrics lives here\n";
        let header = format!(
            "HTTP/1.1 404 Not Found\r\nContent-Type: text/plain\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            msg.len()
        );
        stream.write_all(header.as_bytes())?;
        stream.write_all(msg.as_bytes())?;
    }
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn snap() -> Snapshot {
        let mut counters = BTreeMap::new();
        counters.insert("serve.requests".into(), 42u64);
        let mut gauges = BTreeMap::new();
        gauges.insert("serve.sessions".into(), 3.0);
        Snapshot { counters, gauges, spans: Vec::new() }
    }

    #[test]
    fn renders_text_format() {
        let text = render_prometheus(&snap());
        assert!(text.contains("# TYPE pbc_serve_requests counter"));
        assert!(text.contains("pbc_serve_requests 42"));
        assert!(text.contains("# TYPE pbc_serve_sessions gauge"));
        assert!(text.contains("pbc_serve_sessions 3"));
    }

    #[test]
    fn mangles_dots_and_dashes() {
        assert_eq!(mangle("serve.requests"), "pbc_serve_requests");
        assert_eq!(mangle("coord.cpu.regime_a"), "pbc_coord_cpu_regime_a");
    }

    #[test]
    fn endpoint_answers_a_real_scrape() {
        let shutdown = Arc::new(AtomicBool::new(false));
        let (mut exporter, endpoint) =
            start_endpoint("127.0.0.1:0", Arc::clone(&shutdown)).unwrap();
        exporter.export(&snap()).unwrap();
        let mut stream = std::net::TcpStream::connect(endpoint.addr()).unwrap();
        stream
            .write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
        assert!(response.contains("pbc_serve_requests 42"), "{response}");
        // Unknown paths 404 without killing the listener.
        let mut stream = std::net::TcpStream::connect(endpoint.addr()).unwrap();
        stream
            .write_all(b"GET /nope HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 404"), "{response}");
        shutdown.store(true, Ordering::SeqCst);
        endpoint.join();
    }
}
