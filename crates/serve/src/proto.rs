//! The wire protocol: newline-delimited text requests, one response line
//! per request.
//!
//! The grammar is deliberately hand-rolled and dependency-free (see
//! `docs/SERVING.md` for the full grammar): a request is one line of
//! space-separated fields, the first field names the verb. Responses are
//! single lines too — `ok …` / `alloc …` for served requests, `err
//! <code> <detail>` for rejected ones. Floats cross the wire through
//! Rust's shortest round-trip `Display`/`FromStr` pair, so an allocation
//! parsed back from a response line is **bit-identical** to the one the
//! coordinator produced — the property the replay-equivalence test
//! holds the daemon to.
//!
//! Malformed input is a first-class citizen: every way a line can be
//! wrong maps to a typed [`ServeError`] (mirroring the observation /
//! budget validation the `OnlineCoordinator` already does), is counted
//! under `serve.rejected_requests`, and answers with an `err` line —
//! never by killing the session or the connection.

use pbc_types::{PowerAllocation, Watts};
use std::fmt;

/// One parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// `node <id> <platform> <bench> <budget-watts>` — open one
    /// coordination session.
    Node { id: u64, platform: String, bench: String, budget: f64 },
    /// `provision <count> <platform> <bench> <budget-watts>` — open
    /// `count` sessions in one pooled job; ids are assigned
    /// consecutively and reported in the response.
    Provision { count: usize, platform: String, bench: String, budget: f64 },
    /// `budget <id> <watts>` — re-target the session's budget; responds
    /// with the allocation to apply next.
    Budget { id: u64, watts: f64 },
    /// `observe <id> <perf> <proc-w> <mem-w> <cap-proc> <cap-mem>` —
    /// report the operating point observed while running the last
    /// allocation; responds with the verdict and the next allocation.
    Observe { id: u64, perf: f64, proc_w: f64, mem_w: f64, cap_proc: f64, cap_mem: f64 },
    /// `query <id>` — read-only: the session's best-known allocation.
    Query { id: u64 },
    /// `free <id>` — close one session.
    Free { id: u64 },
    /// `fleet init <global-watts> <count>:<platform>:<bench>[,…]
    /// [obj=<objective>] [tenants=<name>:<weight>[:<sla>][,…]]` — boot
    /// the fleet coordinator under one global budget, optionally with a
    /// fairness objective and a co-located tenant set.
    FleetInit { global: f64, spec: String, objective: Option<String>, tenants: Option<String> },
    /// `fleet budget <watts>` — re-negotiate the global fleet budget.
    FleetBudget { watts: f64 },
    /// `fleet query` — enforced per-node caps of the fleet.
    FleetQuery,
    /// `stats` — one-line serving counters snapshot.
    Stats,
    /// `ping` — liveness probe.
    Ping,
    /// `quit` — close this connection (control plane; not counted as a
    /// serving request).
    Quit,
    /// `shutdown` — drain the whole daemon (control plane).
    Shutdown,
}

/// Typed rejection reasons, mirrored onto `err <code> <detail>` wire
/// lines. Every variant is counted under `serve.rejected_requests`.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The line did not parse: unknown verb, wrong arity, or a field
    /// that is not a number where one was required.
    Malformed(String),
    /// No session with this id.
    UnknownNode(u64),
    /// A session with this id already exists.
    NodeExists(u64),
    /// The platform slug is not a known preset.
    UnknownPlatform(String),
    /// The benchmark slug is not in the workload suite.
    UnknownBench(String),
    /// `set_budget` refused the value (non-finite, non-positive, or
    /// below the platform floor) — the session keeps its old budget.
    RejectedBudget(String),
    /// Observation validation refused the reported operating point
    /// (non-finite, out of physical range, or stale caps) — the probe
    /// is voided and will be re-proposed.
    RejectedObservation(String),
    /// Building a session or fleet failed in the solver/profiler layer.
    Build(String),
    /// The fleet coordinator is not initialized (or already is).
    FleetState(String),
    /// The daemon is draining; no new work is accepted.
    ShuttingDown,
}

impl ServeError {
    /// Stable machine-readable code, the second wire field of an `err`
    /// line.
    #[must_use]
    pub fn code(&self) -> &'static str {
        match self {
            ServeError::Malformed(_) => "bad-request",
            ServeError::UnknownNode(_) => "unknown-node",
            ServeError::NodeExists(_) => "node-exists",
            ServeError::UnknownPlatform(_) => "unknown-platform",
            ServeError::UnknownBench(_) => "unknown-bench",
            ServeError::RejectedBudget(_) => "rejected-budget",
            ServeError::RejectedObservation(_) => "rejected-observation",
            ServeError::Build(_) => "build-failed",
            ServeError::FleetState(_) => "fleet-state",
            ServeError::ShuttingDown => "shutting-down",
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Malformed(d) => write!(f, "{d}"),
            ServeError::UnknownNode(id) => write!(f, "no session with id {id}"),
            ServeError::NodeExists(id) => write!(f, "session {id} already exists"),
            ServeError::UnknownPlatform(s) => {
                write!(f, "platform {s:?}; known: ivybridge, haswell, titan-xp, titan-v")
            }
            ServeError::UnknownBench(s) => write!(f, "benchmark {s:?}; see `pbc benchmarks`"),
            ServeError::RejectedBudget(d) => write!(f, "{d}"),
            ServeError::RejectedObservation(d) => write!(f, "{d}"),
            ServeError::Build(d) => write!(f, "{d}"),
            ServeError::FleetState(d) => write!(f, "{d}"),
            ServeError::ShuttingDown => write!(f, "daemon is draining"),
        }
    }
}

fn parse_f64(field: &str, what: &str) -> Result<f64, ServeError> {
    field
        .parse::<f64>()
        .map_err(|_| ServeError::Malformed(format!("{what} {field:?} is not a number")))
}

fn parse_u64(field: &str, what: &str) -> Result<u64, ServeError> {
    field
        .parse::<u64>()
        .map_err(|_| ServeError::Malformed(format!("{what} {field:?} is not an unsigned integer")))
}

/// Parse one request line. Leading/trailing whitespace is ignored;
/// empty lines are malformed (callers usually skip them before parsing).
#[must_use = "an Err is a typed protocol rejection that must be answered, not dropped"]
pub fn parse(line: &str) -> Result<Request, ServeError> {
    let mut it = line.split_ascii_whitespace();
    let Some(verb) = it.next() else {
        return Err(ServeError::Malformed("empty request line".into()));
    };
    let fields: Vec<&str> = it.collect();
    let arity = |n: usize| -> Result<(), ServeError> {
        if fields.len() == n {
            Ok(())
        } else {
            Err(ServeError::Malformed(format!(
                "{verb} takes {n} field(s), got {}",
                fields.len()
            )))
        }
    };
    match verb {
        "node" => {
            arity(4)?;
            Ok(Request::Node {
                id: parse_u64(fields[0], "node id")?,
                platform: fields[1].to_string(),
                bench: fields[2].to_string(),
                budget: parse_f64(fields[3], "budget")?,
            })
        }
        "provision" => {
            arity(4)?;
            let count = parse_u64(fields[0], "count")? as usize;
            if count == 0 {
                return Err(ServeError::Malformed("provision count must be positive".into()));
            }
            Ok(Request::Provision {
                count,
                platform: fields[1].to_string(),
                bench: fields[2].to_string(),
                budget: parse_f64(fields[3], "budget")?,
            })
        }
        "budget" => {
            arity(2)?;
            Ok(Request::Budget {
                id: parse_u64(fields[0], "node id")?,
                watts: parse_f64(fields[1], "budget")?,
            })
        }
        "observe" => {
            arity(6)?;
            Ok(Request::Observe {
                id: parse_u64(fields[0], "node id")?,
                perf: parse_f64(fields[1], "perf")?,
                proc_w: parse_f64(fields[2], "proc power")?,
                mem_w: parse_f64(fields[3], "mem power")?,
                cap_proc: parse_f64(fields[4], "proc cap")?,
                cap_mem: parse_f64(fields[5], "mem cap")?,
            })
        }
        "query" => {
            arity(1)?;
            Ok(Request::Query { id: parse_u64(fields[0], "node id")? })
        }
        "free" => {
            arity(1)?;
            Ok(Request::Free { id: parse_u64(fields[0], "node id")? })
        }
        "fleet" => match fields.first().copied() {
            Some("init") => {
                if !(3..=5).contains(&fields.len()) {
                    return Err(ServeError::Malformed(
                        "fleet init takes <global-watts> <spec> [obj=<objective>] \
                         [tenants=<spec>]"
                            .into(),
                    ));
                }
                let mut objective = None;
                let mut tenants = None;
                for extra in &fields[3..] {
                    if let Some(name) = extra.strip_prefix("obj=") {
                        if objective.replace(name.to_string()).is_some() {
                            return Err(ServeError::Malformed("duplicate obj= field".into()));
                        }
                    } else if let Some(spec) = extra.strip_prefix("tenants=") {
                        if tenants.replace(spec.to_string()).is_some() {
                            return Err(ServeError::Malformed("duplicate tenants= field".into()));
                        }
                    } else {
                        return Err(ServeError::Malformed(format!(
                            "unknown fleet init field {extra:?}; known: obj=, tenants="
                        )));
                    }
                }
                Ok(Request::FleetInit {
                    global: parse_f64(fields[1], "global budget")?,
                    spec: fields[2].to_string(),
                    objective,
                    tenants,
                })
            }
            Some("budget") => {
                if fields.len() != 2 {
                    return Err(ServeError::Malformed("fleet budget takes <watts>".into()));
                }
                Ok(Request::FleetBudget { watts: parse_f64(fields[1], "global budget")? })
            }
            Some("query") => {
                if fields.len() != 1 {
                    return Err(ServeError::Malformed("fleet query takes no fields".into()));
                }
                Ok(Request::FleetQuery)
            }
            other => Err(ServeError::Malformed(format!(
                "unknown fleet subcommand {other:?}; known: init, budget, query"
            ))),
        },
        "stats" => {
            arity(0)?;
            Ok(Request::Stats)
        }
        "ping" => {
            arity(0)?;
            Ok(Request::Ping)
        }
        "quit" => {
            arity(0)?;
            Ok(Request::Quit)
        }
        "shutdown" => {
            arity(0)?;
            Ok(Request::Shutdown)
        }
        other => Err(ServeError::Malformed(format!("unknown verb {other:?}"))),
    }
}

/// Render an allocation response line. `f64::Display` is Rust's
/// shortest round-trip rendering, so parsing the fields back yields
/// bit-identical watts.
pub fn render_alloc(out: &mut String, id: u64, alloc: PowerAllocation, budget: Watts, tag: &str) {
    use fmt::Write as _;
    let _ = write!(
        out,
        "alloc {id} proc={} mem={} budget={} outcome={tag}",
        alloc.proc.value(),
        alloc.mem.value(),
        budget.value()
    );
}

/// Render an `err` line for a typed rejection.
pub fn render_err(out: &mut String, err: &ServeError) {
    use fmt::Write as _;
    let _ = write!(out, "err {} {}", err.code(), err);
}

/// Parse `proc=… mem=…` fields back out of an `alloc` response line —
/// the client half of the wire contract (used by the load generator and
/// the equivalence tests).
#[must_use]
pub fn parse_alloc_line(line: &str) -> Option<PowerAllocation> {
    let mut proc = None;
    let mut mem = None;
    for field in line.split_ascii_whitespace() {
        if let Some(v) = field.strip_prefix("proc=") {
            proc = v.parse::<f64>().ok();
        } else if let Some(v) = field.strip_prefix("mem=") {
            mem = v.parse::<f64>().ok();
        }
    }
    Some(PowerAllocation::new(Watts::new(proc?), Watts::new(mem?)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_verb() {
        let cases = [
            ("node 7 ivybridge stream 208", true),
            ("provision 100 haswell dgemm 190.5", true),
            ("budget 7 176.25", true),
            ("observe 7 0.93 120.5 61.2 140 68", true),
            ("query 7", true),
            ("free 7", true),
            ("fleet init 1050 4:ivybridge:stream,2:haswell:dgemm", true),
            ("fleet init 1050 4:ivybridge:stream obj=max-min", true),
            ("fleet init 1050 4:ivybridge:stream obj=weighted tenants=web:3:gold,batch:1", true),
            ("fleet init 1050 4:ivybridge:stream tenants=web:3 obj=throughput", true),
            ("fleet budget 900", true),
            ("fleet query", true),
            ("stats", true),
            ("ping", true),
            ("quit", true),
            ("shutdown", true),
        ];
        for (line, ok) in cases {
            assert_eq!(parse(line).is_ok(), ok, "{line}");
        }
    }

    #[test]
    fn malformed_lines_get_typed_errors() {
        for line in [
            "",
            "frobnicate",
            "node 7 ivybridge stream",        // arity
            "node x ivybridge stream 208",    // bad id
            "budget 7 many",                  // bad number
            "observe 7 1.0 2.0",              // arity
            "fleet",                          // missing subcommand
            "fleet resize 3",                 // unknown subcommand
            "fleet init 1050 4:ivybridge:stream color=red", // unknown extra field
            "fleet init 1050 4:ivybridge:stream obj=a obj=b", // duplicate obj=
            "provision 0 ivybridge stream 208", // zero count
        ] {
            let err = parse(line).unwrap_err();
            assert_eq!(err.code(), "bad-request", "{line} -> {err:?}");
        }
    }

    #[test]
    fn nan_parses_and_is_left_to_validation() {
        // `NaN` *is* a number to the f64 grammar; the coordinator's
        // validation rejects it with `rejected-budget`, not the parser.
        let req = parse("budget 7 NaN").unwrap();
        match req {
            Request::Budget { watts, .. } => assert!(watts.is_nan()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn alloc_lines_round_trip_bit_exactly() {
        let alloc = PowerAllocation::new(Watts::new(146.62500000000003), Watts::new(61.375));
        let mut line = String::new();
        render_alloc(&mut line, 9, alloc, Watts::new(208.0), "applied");
        let back = parse_alloc_line(&line).unwrap();
        assert_eq!(back.proc.value().to_bits(), alloc.proc.value().to_bits());
        assert_eq!(back.mem.value().to_bits(), alloc.mem.value().to_bits());
    }

    #[test]
    fn err_lines_carry_code_and_detail() {
        let mut line = String::new();
        render_err(&mut line, &ServeError::UnknownNode(12));
        assert!(line.starts_with("err unknown-node "), "{line}");
        assert!(line.contains("12"));
    }
}
