//! The daemon shell: TCP transport, export ticker, and graceful drain.
//!
//! [`Server::start`] binds the protocol listener (and optionally the
//! Prometheus endpoint), spawns the accept loop and the export ticker,
//! and returns a handle. The caller-facing lifecycle is:
//!
//! ```text
//! engine ─┬─ accept thread ── one handler thread per connection
//!         ├─ prometheus listener (optional)
//!         └─ export ticker (snapshot → every exporter, each interval)
//! ```
//!
//! [`Server::drain`] is the graceful shutdown contract the satellite
//! task demands: flip the shutdown flag, let every handler finish the
//! request it is reading (handlers poll the flag on a read timeout),
//! join accept + handlers + ticker, then run one final export pass and
//! flush every exporter. The trace-snapshot exporter writes through a
//! tmp-file + rename, so there is no instant at which a scraping reader
//! or a crashed drain can observe a torn trace file.

use crate::engine::{Disposition, ServeEngine};
use crate::exporter::Exporter;
use crate::prom::{self, PromEndpoint};
use pbc_trace::names;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

/// Server tuning knobs.
pub struct ServerConfig {
    /// Protocol listener address (`127.0.0.1:0` for an ephemeral port).
    pub addr: String,
    /// Prometheus scrape endpoint address; `None` disables it.
    pub prom_addr: Option<String>,
    /// How often the export ticker publishes a snapshot.
    pub export_interval: Duration,
    /// The exporter fleet (the Prometheus exporter is added internally
    /// when `prom_addr` is set).
    pub exporters: Vec<Box<dyn Exporter>>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            prom_addr: None,
            export_interval: Duration::from_millis(200),
            exporters: Vec::new(),
        }
    }
}

/// A running daemon.
pub struct Server {
    engine: Arc<ServeEngine>,
    shutdown: Arc<AtomicBool>,
    local_addr: SocketAddr,
    prom: Option<PromEndpoint>,
    accept_thread: Option<JoinHandle<()>>,
    export_thread: Option<JoinHandle<()>>,
    exporters: Arc<Mutex<Vec<Box<dyn Exporter>>>>,
}

/// How long a handler blocks in one read before re-checking the
/// shutdown flag. Partial lines survive the timeout: `read_line`
/// appends, so a line split across timeouts is still read whole.
const READ_POLL: Duration = Duration::from_millis(50);

impl Server {
    /// Bind, spawn the threads, and return the handle.
    #[must_use = "dropping the handle leaks the daemon threads; call drain()"]
    pub fn start(engine: Arc<ServeEngine>, mut config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));

        let prom = match &config.prom_addr {
            Some(addr) => {
                let (exporter, endpoint) = prom::start_endpoint(addr, Arc::clone(&shutdown))?;
                config.exporters.push(Box::new(exporter));
                Some(endpoint)
            }
            None => None,
        };
        let exporters = Arc::new(Mutex::new(config.exporters));

        // Export ticker: publish a snapshot every interval, polling the
        // shutdown flag at a finer grain so drain is prompt.
        let export_thread = {
            let exporters = Arc::clone(&exporters);
            let flag = Arc::clone(&shutdown);
            let interval = config.export_interval;
            std::thread::Builder::new()
                .name("pbc-serve-export".into())
                .spawn(move || {
                    let mut elapsed = Duration::ZERO;
                    let tick = Duration::from_millis(20).min(interval);
                    while !flag.load(Ordering::SeqCst) {
                        std::thread::sleep(tick);
                        elapsed += tick;
                        if elapsed >= interval {
                            elapsed = Duration::ZERO;
                            export_once(&exporters);
                        }
                    }
                })?
        };

        // Accept loop: hand each connection its own handler thread and
        // join them all on the way out, so drain waits for in-flight
        // requests.
        let accept_thread = {
            let engine = Arc::clone(&engine);
            let flag = Arc::clone(&shutdown);
            std::thread::Builder::new()
                .name("pbc-serve-accept".into())
                .spawn(move || {
                    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
                    let open = Arc::new(AtomicI64::new(0));
                    while !flag.load(Ordering::SeqCst) {
                        match listener.accept() {
                            Ok((stream, _)) => {
                                pbc_trace::counter(names::SERVE_CONNECTIONS).incr();
                                let engine = Arc::clone(&engine);
                                let flag = Arc::clone(&flag);
                                let open = Arc::clone(&open);
                                let gauge = |n: i64| {
                                    #[allow(clippy::cast_precision_loss)]
                                    pbc_trace::gauge(names::SERVE_OPEN_CONNECTIONS)
                                        .set(n as f64);
                                };
                                gauge(open.fetch_add(1, Ordering::SeqCst) + 1);
                                let spawned = std::thread::Builder::new()
                                    .name("pbc-serve-conn".into())
                                    .spawn(move || {
                                        let outcome = handle_connection(&engine, stream, &flag);
                                        gauge(open.fetch_sub(1, Ordering::SeqCst) - 1);
                                        if outcome == Disposition::Shutdown {
                                            flag.store(true, Ordering::SeqCst);
                                        }
                                    });
                                if let Ok(t) = spawned {
                                    handlers.push(t);
                                }
                            }
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                                std::thread::sleep(Duration::from_millis(2));
                            }
                            Err(_) => std::thread::sleep(Duration::from_millis(2)),
                        }
                    }
                    for t in handlers {
                        let _ = t.join();
                    }
                })?
        };

        Ok(Server {
            engine,
            shutdown,
            local_addr,
            prom,
            accept_thread: Some(accept_thread),
            export_thread: Some(export_thread),
            exporters,
        })
    }

    /// The protocol listener's bound address.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The Prometheus endpoint's bound address, when enabled.
    #[must_use]
    pub fn prom_addr(&self) -> Option<SocketAddr> {
        self.prom.as_ref().map(PromEndpoint::addr)
    }

    /// The flag a transport (e.g. the stdin loop) flips to request a
    /// drain, and polls to learn one was requested elsewhere.
    #[must_use]
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Graceful shutdown: stop accepting, reject new work, wait for
    /// in-flight requests, then publish and flush one final snapshot.
    #[must_use = "a failed drain means exporters were not flushed"]
    pub fn drain(mut self) -> io::Result<()> {
        self.engine.begin_drain();
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.export_thread.take() {
            let _ = t.join();
        }
        if let Some(p) = self.prom.take() {
            p.join();
        }
        // Final export after every handler has finished: the published
        // telemetry includes the last request served.
        export_once(&self.exporters);
        let mut exporters = self.exporters.lock().unwrap_or_else(PoisonError::into_inner);
        for e in exporters.iter_mut() {
            e.flush()?;
        }
        Ok(())
    }
}

/// One export pass over the exporter fleet.
fn export_once(exporters: &Arc<Mutex<Vec<Box<dyn Exporter>>>>) {
    let snap = pbc_trace::snapshot();
    let mut fleet = exporters.lock().unwrap_or_else(PoisonError::into_inner);
    for e in fleet.iter_mut() {
        // An exporter whose sink fails (closed pipe, full disk) must
        // not take the serving loop down with it; the tick is retried
        // at the next interval.
        let _ = e.export(&snap);
    }
    drop(fleet);
    pbc_trace::counter(names::SERVE_EXPORTS).incr();
}

/// Serve one protocol connection until quit/EOF/shutdown.
fn handle_connection(
    engine: &ServeEngine,
    stream: TcpStream,
    shutdown: &AtomicBool,
) -> Disposition {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let Ok(write_half) = stream.try_clone() else {
        return Disposition::Quit;
    };
    let mut reader = BufReader::new(stream);
    let mut writer = BufWriter::new(write_half);
    let mut line = String::new();
    let mut response = String::new();
    loop {
        // `line` is cleared only after a complete dispatch: `read_line`
        // appends, so a line split across read timeouts accumulates
        // until its newline arrives.
        match reader.read_line(&mut line) {
            Ok(0) => break Disposition::Quit, // client closed
            Ok(_) => {
                if !line.trim().is_empty() {
                    let disposition = engine.dispatch_into(&line, &mut response);
                    if writeln!(writer, "{response}").is_err() {
                        break Disposition::Quit;
                    }
                    // Flush only when no further request is already
                    // buffered — this is what lets a pipelining client
                    // amortize syscalls over a whole batch.
                    if reader.buffer().is_empty() && writer.flush().is_err() {
                        break Disposition::Quit;
                    }
                    if disposition != Disposition::Respond {
                        let _ = writer.flush();
                        break disposition;
                    }
                }
                line.clear();
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut =>
            {
                // Idle (or mid-line) read timeout: flush anything
                // buffered and re-check the shutdown flag. Any partial
                // line stays in `line` for the next read to extend.
                let _ = writer.flush();
                if shutdown.load(Ordering::SeqCst) {
                    break Disposition::Quit;
                }
            }
            Err(_) => break Disposition::Quit,
        }
    }
}
