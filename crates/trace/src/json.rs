//! A minimal JSON value, writer, and parser.
//!
//! Criterion-style crates pull in `serde_json`; this workspace builds
//! offline, so the trace exporter carries its own ~200-line JSON layer.
//! The writer and parser are inverses for everything the exporter emits,
//! which is what lets round-trip tests read trace files back without any
//! external dependency.

use std::fmt;

/// Largest magnitude rendered as a bare integer — beyond this an `f64`
/// can no longer represent every integer exactly.
const MAX_EXACT_INT: f64 = 9.0e15;

/// A JSON value. Numbers are `f64` (counter totals far below 2^53 in
/// practice); object keys keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in insertion order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup (first match).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a non-negative integer (rounded), when it fits.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        let v = self.as_f64()?;
        if !v.is_finite() || v < 0.0 || v > MAX_EXACT_INT {
            return None;
        }
        let rounded = v.round();
        Some(rounded as u64)
    }

    /// The boolean payload, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Render as compact JSON text.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Num(v) => out.push_str(&render_num(*v)),
            Value::Str(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Value::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&escape(k));
                    out.push_str("\":");
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Integral finite values print as integers, everything else in Rust's
/// shortest-round-trip float form; non-finite values (invalid in JSON)
/// degrade to `null`.
fn render_num(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_string();
    }
    let rounded = v.round();
    if (v - rounded).abs() <= f64::EPSILON * v.abs().max(1.0) && rounded.abs() < MAX_EXACT_INT {
        let int = rounded as i64;
        return int.to_string();
    }
    format!("{v}")
}

/// Escape a string for embedding between JSON quotes.
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// A JSON parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure in the input.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse one JSON document (the whole input must be consumed, modulo
/// trailing whitespace).
#[must_use = "the parsed value or error carries the whole result"]
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError { at: self.pos, message: message.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid utf-8 in number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| ParseError { at: start, message: format!("bad number `{text}`") })
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let c = self.unicode_escape()?;
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    match s.chars().next() {
                        Some(c) => {
                            out.push(c);
                            self.pos += c.len_utf8();
                        }
                        None => return Err(self.err("unterminated string")),
                    }
                }
            }
        }
    }

    /// Parse the 4 hex digits after `\u` (cursor already past the `u`),
    /// combining surrogate pairs.
    fn unicode_escape(&mut self) -> Result<char, ParseError> {
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // High surrogate: require a `\uXXXX` low surrogate.
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let lo = self.hex4()?;
                if (0xDC00..0xE000).contains(&lo) {
                    let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    return char::from_u32(code).ok_or_else(|| self.err("bad surrogate pair"));
                }
            }
            return Err(self.err("lone high surrogate"));
        }
        char::from_u32(hi).ok_or_else(|| self.err("bad \\u escape"))
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut code: u32 = 0;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => u32::from(c - b'0'),
                Some(c @ b'a'..=b'f') => u32::from(c - b'a') + 10,
                Some(c @ b'A'..=b'F') => u32::from(c - b'A') + 10,
                _ => return Err(self.err("expected 4 hex digits")),
            };
            code = code * 16 + d;
            self.pos += 1;
        }
        Ok(code)
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for (text, value) in [
            ("null", Value::Null),
            ("true", Value::Bool(true)),
            ("false", Value::Bool(false)),
            ("42", Value::Num(42.0)),
            ("-7", Value::Num(-7.0)),
            ("\"hi\"", Value::Str("hi".into())),
        ] {
            assert_eq!(parse(text).unwrap(), value, "{text}");
            assert_eq!(parse(&value.render()).unwrap(), value, "{text}");
        }
        let v = parse("1.5e3").unwrap();
        assert!((v.as_f64().unwrap() - 1500.0).abs() < 1e-9);
    }

    #[test]
    fn nested_structures_round_trip() {
        let v = Value::Obj(vec![
            ("name".into(), Value::Str("sweep.worker".into())),
            ("parent".into(), Value::Null),
            ("items".into(), Value::Arr(vec![Value::Num(1.0), Value::Num(2.5)])),
            ("ok".into(), Value::Bool(true)),
        ]);
        let text = v.render();
        assert_eq!(parse(&text).unwrap(), v);
        assert_eq!(v.get("name").and_then(Value::as_str), Some("sweep.worker"));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let nasty = "a\"b\\c\nd\te\u{1}f — π 🦀";
        let v = Value::Str(nasty.into());
        assert_eq!(parse(&v.render()).unwrap().as_str(), Some(nasty));
        // Canonical escapes parse too.
        assert_eq!(parse(r#""éA""#).unwrap().as_str(), Some("éA"));
        // Surrogate pair.
        assert_eq!(parse(r#""🦀""#).unwrap().as_str(), Some("🦀"));
        assert!(parse(r#""\ud83e""#).is_err());
    }

    #[test]
    fn integers_render_bare() {
        assert_eq!(Value::Num(56.0).render(), "56");
        assert_eq!(Value::Num(0.0).render(), "0");
        assert_eq!(Value::Num(2.5).render(), "2.5");
        assert_eq!(Value::Num(f64::NAN).render(), "null");
    }

    #[test]
    fn as_u64_is_checked() {
        assert_eq!(Value::Num(56.0).as_u64(), Some(56));
        assert_eq!(Value::Num(-1.0).as_u64(), None);
        assert_eq!(Value::Num(1.0e300).as_u64(), None);
        assert_eq!(Value::Str("56".into()).as_u64(), None);
    }

    #[test]
    fn malformed_inputs_error_with_position() {
        for text in ["{", "[1,", "\"open", "{\"a\" 1}", "tru", "1 2", "{,}"] {
            let e = parse(text).unwrap_err();
            assert!(e.at <= text.len(), "{text}: {e}");
        }
        let e = parse("[1, x]").unwrap_err();
        assert!(e.to_string().contains("byte 4"), "{e}");
    }
}
