//! # pbc-trace
//!
//! Dependency-free structured tracing and metrics for the power-bounded
//! workspace: scoped [`span`]s with wall-clock timing, monotonic
//! [`counter`]s and last-write-wins [`gauge`]s aggregated in a global
//! thread-safe registry, and a JSON-lines exporter whose output the
//! crate can parse back ([`json::parse`]) — so round-trip tests and the
//! bench harness share one schema.
//!
//! The crate exists because the oracle sweep once lost data silently: a
//! panicking worker dropped its whole batch of sweep points and solver
//! errors were conflated with infeasible allocations. Counters make that
//! class of bug *observable* — `sweep.points_lost` and
//! `sweep.solver_errors` must read zero on every healthy run, and the
//! exporter writes them even when zero so their absence is never
//! mistaken for their emptiness.
//!
//! ## Semantics
//!
//! * **Counters and gauges always aggregate.** They are a couple of
//!   atomic operations; keeping them unconditional means a decision path
//!   cannot forget to opt in.
//! * **Spans record only while [`enable`]d.** Spans allocate (a name, a
//!   record in the registry), so the hot paths stay allocation-free
//!   unless somebody asked for a trace.
//! * **Everything is `std`.** `Mutex`, atomics, `Instant` — no registry
//!   dependencies, per the workspace's offline-build rule.
//!
//! ## Example
//!
//! ```
//! pbc_trace::reset();
//! pbc_trace::enable();
//! {
//!     let _outer = pbc_trace::span("work");
//!     let _inner = pbc_trace::span("work.step");
//!     pbc_trace::counter("work.items").add(3);
//!     pbc_trace::gauge("work.progress").set(0.5);
//! }
//! pbc_trace::disable();
//! let text = pbc_trace::to_jsonl();
//! for line in text.lines() {
//!     assert!(pbc_trace::json::parse(line).is_ok());
//! }
//! let snap = pbc_trace::snapshot();
//! assert_eq!(snap.counters["work.items"], 3);
//! assert_eq!(snap.spans.len(), 2);
//! ```

pub mod json;
pub mod names;
mod registry;
mod span;

pub use registry::{Counter, Gauge, Snapshot, SpanRecord};
pub use span::SpanGuard;

use json::Value;
use std::path::Path;

/// Turn span recording on. Counters and gauges aggregate regardless.
pub fn enable() {
    registry::registry().set_enabled(true);
}

/// Turn span recording off.
pub fn disable() {
    registry::registry().set_enabled(false);
}

/// Is span recording currently on?
#[must_use]
pub fn is_enabled() -> bool {
    registry::registry().enabled()
}

/// Clear every counter, gauge, and recorded span. Tests call this to
/// get exact accounting; production code never needs it.
pub fn reset() {
    registry::registry().reset();
}

/// Look up (or register) the monotonic counter `name`. The returned
/// handle is a clone-able `Arc<AtomicU64>`; hot loops should call this
/// once and reuse the handle.
#[must_use]
pub fn counter(name: &str) -> Counter {
    registry::registry().counter(name)
}

/// Look up (or register) the gauge `name` (last write wins).
#[must_use]
pub fn gauge(name: &str) -> Gauge {
    registry::registry().gauge(name)
}

/// Open a scoped span. The span closes (and records its duration) when
/// the guard drops. Nesting on one thread is tracked automatically; for
/// cross-thread nesting pass the parent id via [`span_under`].
#[must_use = "the span closes when this guard drops; binding it to _ closes it immediately"]
pub fn span(name: &str) -> SpanGuard {
    span::begin(name, None)
}

/// Open a scoped span under an explicit parent — the cross-thread
/// variant of [`span`] (e.g. sweep workers parented to the sweep span).
#[must_use = "the span closes when this guard drops; binding it to _ closes it immediately"]
pub fn span_under(name: &str, parent: Option<u64>) -> SpanGuard {
    span::begin(name, parent)
}

/// A consistent copy of the registry: counter totals, gauge values, and
/// every recorded span.
#[must_use]
pub fn snapshot() -> Snapshot {
    registry::registry().snapshot()
}

/// Render the registry as JSON lines: one `meta` line, then one line
/// per span, counter, and gauge. Every line parses with [`json::parse`].
#[must_use]
pub fn to_jsonl() -> String {
    let snap = snapshot();
    let mut out = String::new();
    let meta = Value::Obj(vec![
        ("type".into(), Value::Str("meta".into())),
        ("format".into(), Value::Str("pbc-trace".into())),
        ("version".into(), Value::Num(1.0)),
        ("spans".into(), Value::Num(snap.spans.len() as f64)),
        ("counters".into(), Value::Num(snap.counters.len() as f64)),
        ("gauges".into(), Value::Num(snap.gauges.len() as f64)),
    ]);
    out.push_str(&meta.render());
    out.push('\n');
    for s in &snap.spans {
        let parent = match s.parent {
            Some(p) => Value::Num(p as f64),
            None => Value::Null,
        };
        let line = Value::Obj(vec![
            ("type".into(), Value::Str("span".into())),
            ("id".into(), Value::Num(s.id as f64)),
            ("parent".into(), parent),
            ("name".into(), Value::Str(s.name.clone())),
            ("thread".into(), Value::Str(s.thread.clone())),
            ("start_ns".into(), Value::Num(s.start_ns as f64)),
            ("dur_ns".into(), Value::Num(s.dur_ns as f64)),
        ]);
        out.push_str(&line.render());
        out.push('\n');
    }
    for (name, value) in &snap.counters {
        let line = Value::Obj(vec![
            ("type".into(), Value::Str("counter".into())),
            ("name".into(), Value::Str(name.clone())),
            ("value".into(), Value::Num(*value as f64)),
        ]);
        out.push_str(&line.render());
        out.push('\n');
    }
    for (name, value) in &snap.gauges {
        let line = Value::Obj(vec![
            ("type".into(), Value::Str("gauge".into())),
            ("name".into(), Value::Str(name.clone())),
            ("value".into(), Value::Num(*value)),
        ]);
        out.push_str(&line.render());
        out.push('\n');
    }
    out
}

/// Write the registry to `path` as JSON lines (see [`to_jsonl`]).
#[must_use = "an unexported trace is invisible; handle the I/O error"]
pub fn export(path: &Path) -> std::io::Result<()> {
    std::fs::write(path, to_jsonl())
}

/// Render one benchmark timing record as a JSON line in the same schema
/// the exporter uses (`"type":"bench"`). The bench harness appends these
/// to the file named by `PBC_BENCH_JSON`, seeding the perf trajectory.
#[must_use]
pub fn bench_record_line(
    name: &str,
    min_ns: f64,
    median_ns: f64,
    mean_ns: f64,
    samples: usize,
    iters_per_sample: u64,
) -> String {
    Value::Obj(vec![
        ("type".into(), Value::Str("bench".into())),
        ("name".into(), Value::Str(name.into())),
        ("min_ns".into(), Value::Num(min_ns)),
        ("median_ns".into(), Value::Num(median_ns)),
        ("mean_ns".into(), Value::Num(mean_ns)),
        ("samples".into(), Value::Num(samples as f64)),
        ("iters_per_sample".into(), Value::Num(iters_per_sample as f64)),
    ])
    .render()
}

/// Render one derived-ratio record as a JSON line (`"type":"bench-ratio"`).
/// Ratios relate two measured benchmarks (e.g. a baseline median over an
/// optimized median) so CI can gate on a speedup rather than on absolute
/// nanoseconds, which vary across machines.
#[must_use]
pub fn bench_ratio_record_line(name: &str, ratio: f64) -> String {
    Value::Obj(vec![
        ("type".into(), Value::Str("bench-ratio".into())),
        ("name".into(), Value::Str(name.into())),
        ("ratio".into(), Value::Num(ratio)),
    ])
    .render()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Registry state is process-global; tests that need exact counts
    /// serialize on this.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static GUARD: std::sync::Mutex<()> = std::sync::Mutex::new(());
        GUARD.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn counters_aggregate_even_when_disabled() {
        let _g = lock();
        reset();
        disable();
        counter("test.disabled").add(2);
        assert_eq!(snapshot().counters["test.disabled"], 2);
    }

    #[test]
    fn spans_record_only_when_enabled() {
        let _g = lock();
        reset();
        disable();
        {
            let off = span("test.off");
            assert!(off.id().is_none());
        }
        enable();
        {
            let on = span("test.on");
            assert!(on.id().is_some());
        }
        disable();
        let snap = snapshot();
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.spans[0].name, "test.on");
    }

    #[test]
    fn nesting_is_tracked_per_thread() {
        let _g = lock();
        reset();
        enable();
        {
            let outer = span("outer");
            let outer_id = outer.id();
            let inner = span("inner");
            assert!(inner.id().is_some());
            drop(inner);
            drop(outer);
            let snap = snapshot();
            let inner_rec = snap.spans.iter().find(|s| s.name == "inner").map(|s| s.parent);
            assert_eq!(inner_rec, Some(outer_id));
        }
        disable();
    }

    #[test]
    fn explicit_parent_crosses_threads() {
        let _g = lock();
        reset();
        enable();
        let root = span("root");
        let root_id = root.id();
        std::thread::scope(|s| {
            s.spawn(|| {
                let _child = span_under("child", root_id);
            });
        });
        drop(root);
        disable();
        let snap = snapshot();
        let child = snap.spans.iter().find(|s| s.name == "child").unwrap();
        assert_eq!(child.parent, root_id);
    }

    #[test]
    fn jsonl_round_trips() {
        let _g = lock();
        reset();
        enable();
        {
            let _s = span("rt.outer");
            counter("rt.count").add(41);
            counter("rt.count").incr();
            gauge("rt.gauge").set(2.5);
        }
        disable();
        let text = to_jsonl();
        let mut counters = 0;
        let mut spans = 0;
        for line in text.lines() {
            let v = json::parse(line).unwrap();
            // Names registered by other tests persist across reset()
            // (values zeroed in place), so only inspect our own names.
            let name = v.get("name").and_then(Value::as_str);
            match v.get("type").and_then(Value::as_str) {
                Some("counter") if name == Some("rt.count") => {
                    counters += 1;
                    assert_eq!(v.get("value").and_then(Value::as_u64), Some(42));
                }
                Some("span") => {
                    spans += 1;
                    assert_eq!(name, Some("rt.outer"));
                }
                Some("gauge") if name == Some("rt.gauge") => {
                    let g = v.get("value").and_then(Value::as_f64).unwrap();
                    assert!((g - 2.5).abs() < 1e-12);
                }
                Some("meta") => {
                    assert_eq!(v.get("version").and_then(Value::as_u64), Some(1));
                }
                Some("counter" | "gauge") => {}
                other => panic!("unexpected line type {other:?}"),
            }
        }
        assert_eq!((counters, spans), (1, 1));
    }

    #[test]
    fn bench_record_is_parseable() {
        let line = bench_record_line("sweep/sra", 100.0, 120.5, 130.25, 64, 8);
        let v = json::parse(&line).unwrap();
        assert_eq!(v.get("type").and_then(Value::as_str), Some("bench"));
        assert_eq!(v.get("samples").and_then(Value::as_u64), Some(64));
        let med = v.get("median_ns").and_then(Value::as_f64).unwrap();
        assert!((med - 120.5).abs() < 1e-12);
    }

    #[test]
    fn bench_ratio_record_is_parseable() {
        let line = bench_ratio_record_line("sweep/curve-vs-budgets-speedup", 3.5);
        let v = json::parse(&line).unwrap();
        assert_eq!(v.get("type").and_then(Value::as_str), Some("bench-ratio"));
        let ratio = v.get("ratio").and_then(Value::as_f64).unwrap();
        assert!((ratio - 3.5).abs() < 1e-12);
    }

    #[test]
    fn export_writes_a_file() {
        let _g = lock();
        reset();
        counter("file.count").incr();
        let path = std::env::temp_dir().join(format!("pbc-trace-test-{}.jsonl", std::process::id()));
        export(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(text.lines().count() >= 2);
        assert!(text.contains("file.count"));
    }
}
