//! Scoped spans with per-thread nesting.
//!
//! A [`SpanGuard`] opens on creation and records a [`SpanRecord`] into
//! the registry when dropped. Nesting on one thread is automatic (a
//! thread-local stack of open span ids); spawned workers pass their
//! logical parent explicitly via [`crate::span_under`] because a new
//! thread starts with an empty stack.

use crate::registry::{registry, now_ns, SpanRecord};
use std::cell::RefCell;

thread_local! {
    static OPEN_SPANS: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

struct Active {
    id: u64,
    parent: Option<u64>,
    name: String,
    start_ns: u64,
}

/// Guard for an open span; the span closes when it drops. Inert (and
/// free) when tracing is disabled.
pub struct SpanGuard {
    active: Option<Active>,
}

impl SpanGuard {
    /// The span id, for parenting cross-thread children — `None` when
    /// tracing was disabled at creation.
    #[must_use]
    pub fn id(&self) -> Option<u64> {
        self.active.as_ref().map(|a| a.id)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(a) = self.active.take() else {
            return;
        };
        OPEN_SPANS.with(|s| {
            let mut stack = s.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|&id| id == a.id) {
                stack.remove(pos);
            }
        });
        registry().record_span(SpanRecord {
            id: a.id,
            parent: a.parent,
            name: a.name,
            thread: thread_label(),
            start_ns: a.start_ns,
            dur_ns: now_ns().saturating_sub(a.start_ns),
        });
    }
}

/// Open a span. `explicit_parent` overrides the thread-local nesting
/// (cross-thread parenting); otherwise the innermost open span on this
/// thread is the parent.
pub(crate) fn begin(name: &str, explicit_parent: Option<u64>) -> SpanGuard {
    let reg = registry();
    if !reg.enabled() {
        return SpanGuard { active: None };
    }
    let id = reg.next_span_id();
    let parent = explicit_parent.or_else(|| OPEN_SPANS.with(|s| s.borrow().last().copied()));
    OPEN_SPANS.with(|s| s.borrow_mut().push(id));
    SpanGuard {
        active: Some(Active {
            id,
            parent,
            name: name.to_string(),
            start_ns: now_ns(),
        }),
    }
}

fn thread_label() -> String {
    let current = std::thread::current();
    match current.name() {
        Some(n) => n.to_string(),
        None => format!("{:?}", current.id()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_guard_is_inert() {
        registry().set_enabled(false);
        let g = begin("inert", None);
        assert!(g.id().is_none());
        drop(g);
        // No stack entry was pushed.
        OPEN_SPANS.with(|s| assert!(s.borrow().is_empty()));
    }

    #[test]
    fn out_of_order_drop_keeps_the_stack_sane() {
        registry().set_enabled(true);
        let a = begin("a", None);
        let b = begin("b", None);
        // Drop the outer guard first: the inner one must still unwind
        // its own stack entry without panicking.
        drop(a);
        drop(b);
        registry().set_enabled(false);
        OPEN_SPANS.with(|s| assert!(s.borrow().is_empty()));
    }
}
