//! The global registry: counters, gauges, and finished spans.
//!
//! Counter and gauge handles are `Arc<AtomicU64>` clones, so after the
//! one registry lookup all updates are lock-free; the registry `Mutex`
//! guards only the name→handle maps and the span list. Gauges store
//! `f64::to_bits` in the atomic — last write wins, which is the right
//! semantics for "current step size" / "latest surplus" style values.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::Instant;

/// A monotonic counter handle. Cheap to clone; updates are lock-free.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current total.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins gauge handle storing an `f64`.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Set the gauge to `v`.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// One finished span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Process-unique span id.
    pub id: u64,
    /// Enclosing span, when one was open on the same thread (or passed
    /// explicitly for cross-thread nesting).
    pub parent: Option<u64>,
    /// Span name (dotted hierarchy, e.g. `sweep.worker`).
    pub name: String,
    /// Label of the thread the span ran on.
    pub thread: String,
    /// Start, in nanoseconds since the process trace epoch.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub dur_ns: u64,
}

/// A consistent copy of the registry contents.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Finished spans in completion order.
    pub spans: Vec<SpanRecord>,
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, Arc<AtomicU64>>,
    gauges: BTreeMap<String, Arc<AtomicU64>>,
    spans: Vec<SpanRecord>,
}

/// The process-global registry.
pub(crate) struct Registry {
    enabled: AtomicBool,
    next_span_id: AtomicU64,
    inner: Mutex<Inner>,
}

impl Registry {
    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A poisoned registry only means some thread panicked mid-update
        // of the maps; the data is still the best record available.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub(crate) fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    pub(crate) fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::SeqCst);
    }

    pub(crate) fn next_span_id(&self) -> u64 {
        self.next_span_id.fetch_add(1, Ordering::Relaxed) + 1
    }

    pub(crate) fn counter(&self, name: &str) -> Counter {
        let mut inner = self.lock();
        if let Some(c) = inner.counters.get(name) {
            return Counter(Arc::clone(c));
        }
        let cell = Arc::new(AtomicU64::new(0));
        inner.counters.insert(name.to_string(), Arc::clone(&cell));
        Counter(cell)
    }

    pub(crate) fn gauge(&self, name: &str) -> Gauge {
        let mut inner = self.lock();
        if let Some(g) = inner.gauges.get(name) {
            return Gauge(Arc::clone(g));
        }
        let cell = Arc::new(AtomicU64::new(0.0_f64.to_bits()));
        inner.gauges.insert(name.to_string(), Arc::clone(&cell));
        Gauge(cell)
    }

    pub(crate) fn record_span(&self, record: SpanRecord) {
        self.lock().spans.push(record);
    }

    pub(crate) fn snapshot(&self) -> Snapshot {
        let inner = self.lock();
        Snapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), f64::from_bits(v.load(Ordering::Relaxed))))
                .collect(),
            spans: inner.spans.clone(),
        }
    }

    pub(crate) fn reset(&self) {
        let mut inner = self.lock();
        // Zero in place: handles cached by hot loops must stay live.
        for cell in inner.counters.values() {
            cell.store(0, Ordering::Relaxed);
        }
        for cell in inner.gauges.values() {
            cell.store(0.0_f64.to_bits(), Ordering::Relaxed);
        }
        inner.spans.clear();
    }
}

/// The singleton registry.
pub(crate) fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        enabled: AtomicBool::new(false),
        next_span_id: AtomicU64::new(0),
        inner: Mutex::new(Inner::default()),
    })
}

/// Nanoseconds since the process trace epoch (first call wins).
pub(crate) fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = EPOCH.get_or_init(Instant::now);
    u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_handles_share_storage() {
        let r = Registry {
            enabled: AtomicBool::new(false),
            next_span_id: AtomicU64::new(0),
            inner: Mutex::new(Inner::default()),
        };
        let a = r.counter("x");
        let b = r.counter("x");
        a.add(3);
        b.incr();
        assert_eq!(a.get(), 4);
        assert_eq!(r.snapshot().counters["x"], 4);
    }

    #[test]
    fn gauge_is_last_write_wins() {
        let r = Registry {
            enabled: AtomicBool::new(false),
            next_span_id: AtomicU64::new(0),
            inner: Mutex::new(Inner::default()),
        };
        let g = r.gauge("g");
        g.set(1.25);
        g.set(-7.5);
        assert!((r.snapshot().gauges["g"] + 7.5).abs() < 1e-12);
    }

    #[test]
    fn reset_keeps_cached_handles_live() {
        let r = Registry {
            enabled: AtomicBool::new(false),
            next_span_id: AtomicU64::new(0),
            inner: Mutex::new(Inner::default()),
        };
        let c = r.counter("keep");
        c.add(9);
        r.reset();
        assert_eq!(c.get(), 0);
        c.incr();
        assert_eq!(r.snapshot().counters["keep"], 1);
    }

    #[test]
    fn span_ids_are_unique_and_nonzero() {
        let r = Registry {
            enabled: AtomicBool::new(false),
            next_span_id: AtomicU64::new(0),
            inner: Mutex::new(Inner::default()),
        };
        let a = r.next_span_id();
        let b = r.next_span_id();
        assert!(a > 0);
        assert_ne!(a, b);
    }

    #[test]
    fn clock_is_monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }
}
