//! Canonical span, counter, and gauge names.
//!
//! Instrumented crates name their metrics through these constants so the
//! trace schema has one source of truth (and `docs/OBSERVABILITY.md` has
//! one table to keep in sync). Names form a dotted hierarchy rooted at
//! the subsystem: `sweep.*`, `solve.*`, `coord.*`, `online.*`.

// --- sweep (crates/core/src/sweep.rs) ---------------------------------

/// Root span around one whole sweep.
pub const SPAN_SWEEP: &str = "sweep";
/// One worker batch, parented under [`SPAN_SWEEP`].
pub const SPAN_SWEEP_WORKER: &str = "sweep.worker";

/// Allocations handed to the sweep (the full candidate space).
pub const SWEEP_POINTS_TOTAL: &str = "sweep.points_total";
/// Allocations that solved to an operating point.
pub const SWEEP_POINTS_EVALUATED: &str = "sweep.points_evaluated";
/// Allocations the solver rejected as infeasible (counted, then skipped).
pub const SWEEP_POINTS_INFEASIBLE: &str = "sweep.points_infeasible";
/// Points dropped by a worker failure. **Must read zero on a healthy
/// run** — a nonzero value is the silent-data-loss bug this crate was
/// built to expose.
pub const SWEEP_POINTS_LOST: &str = "sweep.points_lost";
/// Real solver errors (not infeasibility). Also must read zero; nonzero
/// fails the sweep loudly.
pub const SWEEP_SOLVER_ERRORS: &str = "sweep.solver_errors";

/// Points the shared-grid oracle (`sweep_curve`) served from an already
/// evaluated union-grid entry instead of re-solving.
pub const SWEEP_CURVE_REUSE_HITS: &str = "sweep.curve_reuse_hits";

// --- work-stealing pool (crates/par) ----------------------------------

/// One-time gauge: executors the process-wide pool was sized with
/// (`PBC_THREADS` override, else available parallelism). A value of 1 in
/// a trace explains a serialized sweep.
pub const POOL_THREADS: &str = "pool.threads";
/// Jobs submitted to a pool.
pub const POOL_JOBS: &str = "pool.jobs";
/// Index ranges executed by an executor that did not own them (the
/// load-balancing the pool exists for).
pub const POOL_STEALS: &str = "pool.steals";

// --- solver (crates/powersim) -----------------------------------------

/// Calls into `pbc_powersim::solve`.
pub const SOLVE_EVALUATIONS: &str = "solve.evaluations";
/// Solves rejected as infeasible (budget/cap not schedulable).
pub const SOLVE_INFEASIBLE: &str = "solve.infeasible";
/// Solves that failed with a real error.
pub const SOLVE_ERRORS: &str = "solve.errors";
/// Memoized solves served from a `SolveMemo` cache (no re-integration
/// of the control loops). Not counted in [`SOLVE_EVALUATIONS`].
pub const SOLVE_CACHE_HITS: &str = "solve.cache_hits";
/// Memoized solves that missed the cache and ran the real solver.
pub const SOLVE_CACHE_MISSES: &str = "solve.cache_misses";
/// Shared memos evicted from the process-wide registry when it hits its
/// capacity bound (oldest-use first).
pub const SOLVE_CACHE_EVICTIONS: &str = "solve.cache_evictions";
/// Re-solves answered by the warm-start outward search instead of a
/// full-grid rescan (the budget moved by a small delta and the previous
/// optimum seeded the search).
pub const SOLVE_WARM_HITS: &str = "solve.warm_hits";

// --- steady-state fast path (crates/core/src/fastpath.rs) --------------

/// Allocations served straight off a precomputed interpolation table
/// (no solver touched).
pub const FASTPATH_TABLE_HITS: &str = "fastpath.table_hits";
/// Interpolation tables built (or rebuilt) by a full `sweep_curve` pass.
pub const FASTPATH_TABLE_REBUILDS: &str = "fastpath.table_rebuilds";
/// Gauge: size of the last batched solve submitted to the pool.
pub const FASTPATH_BATCH_DEPTH: &str = "fastpath.batch_depth";

// --- static coordinator (crates/core/src/coord.rs) --------------------

/// CPU coordinations resolved in regime A (surplus left over).
pub const COORD_CPU_REGIME_A: &str = "coord.cpu.regime_a";
/// CPU coordinations resolved in regime B.
pub const COORD_CPU_REGIME_B: &str = "coord.cpu.regime_b";
/// CPU coordinations resolved in regime C.
pub const COORD_CPU_REGIME_C: &str = "coord.cpu.regime_c";
/// CPU coordinations rejected (budget below minimum — regime D).
pub const COORD_CPU_REJECTED: &str = "coord.cpu.rejected";
/// Last CPU surplus returned to the node budget, in watts.
pub const COORD_CPU_SURPLUS_W: &str = "coord.cpu.surplus_w";

/// GPU coordinations resolved compute-intensive.
pub const COORD_GPU_COMPUTE: &str = "coord.gpu.compute_intensive";
/// GPU coordinations resolved memory-full.
pub const COORD_GPU_MEM_FULL: &str = "coord.gpu.mem_full";
/// GPU coordinations resolved balanced.
pub const COORD_GPU_BALANCED: &str = "coord.gpu.balanced";
/// GPU coordinations rejected (cap out of range).
pub const COORD_GPU_REJECTED: &str = "coord.gpu.rejected";
/// Last GPU surplus returned to the node budget, in watts.
pub const COORD_GPU_SURPLUS_W: &str = "coord.gpu.surplus_w";

// --- fault injection (crates/faults) ----------------------------------

/// Total faults injected, all kinds (sum of the `faults.*` kind counters).
pub const FAULTS_INJECTED: &str = "faults.injected";
/// Sensor observations perturbed by multiplicative noise.
pub const FAULTS_SENSOR_NOISE: &str = "faults.sensor_noise";
/// Sensor observations replaced by a stale (previous-epoch) reading.
pub const FAULTS_SENSOR_STALE: &str = "faults.sensor_stale";
/// Sensor observations dropped (non-finite or absurd surrogate emitted).
pub const FAULTS_SENSOR_DROPOUT: &str = "faults.sensor_dropout";
/// Enforcement writes failed transiently (a retry succeeds).
pub const FAULTS_WRITE_TRANSIENT: &str = "faults.write_transient";
/// Enforcement writes failed permanently (every retry fails).
pub const FAULTS_WRITE_PERMANENT: &str = "faults.write_permanent";
/// Mid-run budget steps applied by a fault plan.
pub const FAULTS_BUDGET_STEPS: &str = "faults.budget_steps";
/// Mid-run workload phase shifts applied by a fault plan.
pub const FAULTS_PHASE_SHIFTS: &str = "faults.phase_shifts";

// --- transactional enforcement (crates/rapl/src/enforce.rs) -----------

/// Enforcement transactions attempted.
pub const ENFORCE_ATTEMPTS: &str = "enforce.attempts";
/// Individual cap writes retried after a transient failure.
pub const ENFORCE_RETRIES: &str = "enforce.retries";
/// Transactions rolled back after a permanent write failure. **Must
/// equal [`ENFORCE_PERMANENT_FAILURES`] on every run** — a gap means a
/// half-applied allocation escaped the transactional contract.
pub const ENFORCE_ROLLBACKS: &str = "enforce.rollbacks";
/// Cap writes that exhausted every retry.
pub const ENFORCE_PERMANENT_FAILURES: &str = "enforce.permanent_failures";
/// Best-effort rollback restores that themselves failed (the domain is
/// left at the *new* cap; the enforce error reports it).
pub const ENFORCE_ROLLBACK_ERRORS: &str = "enforce.rollback_errors";

// --- chaos harness (crates/faults/src/chaos.rs) -----------------------

/// Epochs driven by the chaos harness.
pub const CHAOS_EPOCHS: &str = "chaos.epochs";
/// Emergency clamp enforcements after an over-budget read-back.
pub const CHAOS_CLAMPS: &str = "chaos.clamps";
/// Epochs that *ended* with enforced caps above the live budget. **Must
/// read zero for every shipped fault plan** — the budget invariant.
pub const CHAOS_BUDGET_VIOLATIONS: &str = "chaos.budget_violations";

// --- online coordinator (crates/core/src/online.rs) -------------------

/// Epochs observed by the online coordinator.
pub const ONLINE_EPOCHS: &str = "online.epochs";
/// Probes that improved performance and were accepted.
pub const ONLINE_ACCEPTED: &str = "online.accepted";
/// Probes that regressed performance and were rolled back.
pub const ONLINE_REJECTED: &str = "online.rejected";
/// Step-size decays after a failed probe pair.
pub const ONLINE_STEP_DECAYS: &str = "online.step_decays";
/// Probes shifting power toward the processors.
pub const ONLINE_PROBE_TOWARD_PROC: &str = "online.probe_toward_proc";
/// Probes shifting power toward memory.
pub const ONLINE_PROBE_TOWARD_MEM: &str = "online.probe_toward_mem";
/// Current probe step size, in watts.
pub const ONLINE_STEP_W: &str = "online.step_w";
/// Best performance seen so far (solver performance units).
pub const ONLINE_BEST_PERF: &str = "online.best_perf";
/// Observations rejected by validation (non-finite, out of physical
/// range, or stale — not matching the allocation that was probed).
pub const ONLINE_REJECTED_OBSERVATIONS: &str = "online.rejected_observations";
/// Watchdog trips: persistent over-budget draw degraded the search to
/// the known-safe fallback allocation.
pub const ONLINE_FALLBACKS: &str = "online.fallbacks";
/// Budget changes that re-opened a settled (or in-flight) search.
pub const ONLINE_BUDGET_RESETS: &str = "online.budget_resets";
/// Budget changes rejected by validation (non-finite, non-positive, or
/// below the configured minimum) before they could poison the search.
pub const ONLINE_REJECTED_BUDGETS: &str = "online.rejected_budgets";

// --- cluster coordinator (crates/cluster) ------------------------------

/// Dynamic epochs executed by a `ClusterCoordinator`.
pub const CLUSTER_EPOCHS: &str = "cluster.epochs";
/// Epochs whose water-filling pass moved watts between nodes.
pub const CLUSTER_REDISTRIBUTIONS: &str = "cluster.redistributions";
/// Node dropout events injected by the cluster fault plan.
pub const CLUSTER_DROPOUTS: &str = "cluster.dropouts";
/// Dropped nodes that rejoined the fleet.
pub const CLUSTER_RECOVERIES: &str = "cluster.recoveries";
/// Cluster cap writes that failed under the fault plan.
pub const CLUSTER_WRITE_FAILURES: &str = "cluster.write_failures";
/// Nodes whose share could not be scheduled (COORD or the solver
/// refused it); they idle at zero performance for the epoch.
pub const CLUSTER_INFEASIBLE_NODES: &str = "cluster.infeasible_nodes";
/// Epochs that ended with the summed enforced caps above the global
/// budget. **Must read zero on every run** — decreases-first
/// enforcement makes a violation structurally impossible.
pub const CLUSTER_BUDGET_VIOLATIONS: &str = "cluster.budget_violations";
/// Fleet size the coordinator was built with.
pub const CLUSTER_NODES: &str = "cluster.nodes";
/// Live nodes at the end of the last epoch.
pub const CLUSTER_NODES_UP: &str = "cluster.nodes_up";
/// Watts that changed hands between nodes in the last epoch.
pub const CLUSTER_MOVED_W: &str = "cluster.moved_w";
/// Aggregate relative throughput across live nodes, last epoch.
pub const CLUSTER_AGGREGATE_PERF: &str = "cluster.aggregate_perf";
/// Node observation reports rejected by validation (non-finite,
/// out-of-range, or stale) before they could steer the partition.
pub const CLUSTER_REJECTED_REPORTS: &str = "cluster.rejected_reports";
/// Node observation reports that never arrived for an epoch (dropped
/// in flight, or the node is down).
pub const CLUSTER_MISSED_REPORTS: &str = "cluster.missed_reports";
/// Epochs served from the precomputed static fallback partition
/// because global coordination was unavailable (coordinator outage,
/// redistribution timeout, or an infeasible water-fill).
pub const CLUSTER_DEGRADED_EPOCHS: &str = "cluster.degraded_epochs";
/// Redistribution rounds abandoned because their write-attempt
/// deadline was exhausted; the next epoch runs degraded.
pub const CLUSTER_ROUND_TIMEOUTS: &str = "cluster.round_timeouts";
/// Cap-write retries spent recovering from transient write failures
/// (attempts beyond the first, across all nodes).
pub const CLUSTER_WRITE_RETRIES: &str = "cluster.write_retries";
/// Global fleet budget re-negotiations accepted mid-run.
pub const CLUSTER_BUDGET_RESETS: &str = "cluster.budget_resets";
/// Global fleet budget changes rejected by validation (non-finite or
/// non-positive) before they could poison the partition.
pub const CLUSTER_REJECTED_BUDGETS: &str = "cluster.rejected_budgets";
/// Watts currently reclaimed for the healthy pool from down,
/// quarantined, and rejoining nodes, measured against the static
/// fallback partition (gauge, end of last epoch).
pub const CLUSTER_RECLAIMED_W: &str = "cluster.reclaimed_w";
/// Tenants attached to the cluster coordinator (gauge; zero when the
/// fleet runs single-tenant).
pub const CLUSTER_TENANTS: &str = "cluster.tenants";
/// Tenant demand-spike events injected by the fleet fault plan.
pub const CLUSTER_TENANT_SPIKES: &str = "cluster.tenant_spikes";
/// Noisy-neighbor events injected by the fleet fault plan (a tenant's
/// demand hogs its nodes for a stretch).
pub const CLUSTER_TENANT_NOISY: &str = "cluster.tenant_noisy";
/// Lower-SLA tenants whose surplus demand was preempted because a
/// node's budget ran out funding higher tiers first (per tenant, per
/// epoch).
pub const CLUSTER_TENANT_PREEMPTIONS: &str = "cluster.tenant_preemptions";
/// Epochs in which some tenant's allocation fell below its weighted
/// floor. **Must read zero on every run** — the sub-partition funds
/// floors before any surplus is handed out.
pub const CLUSTER_TENANT_FLOOR_VIOLATIONS: &str = "cluster.tenant_floor_violations";
/// Jain fairness index of the weight-normalized per-tenant allocations,
/// last epoch (gauge in `(0, 1]`; 1 is perfectly fair).
pub const CLUSTER_TENANT_JAIN: &str = "cluster.tenant_jain";

// --- coordination daemon (crates/serve) --------------------------------

/// Protocol requests accepted for serving (everything except the
/// control-plane verbs `quit` and `shutdown`, which steer the transport
/// rather than the coordination state). **Must equal
/// [`SERVE_SERVED_REQUESTS`] + [`SERVE_REJECTED_REQUESTS`] on every
/// run** — the serving conservation law.
pub const SERVE_REQUESTS: &str = "serve.requests";
/// Requests that were served with an `ok`/`alloc` response.
pub const SERVE_SERVED_REQUESTS: &str = "serve.served_requests";
/// Requests rejected with a typed `err` response (malformed lines,
/// unknown sessions, and validation rejections mirrored from the
/// coordinator). A reject answers the client and keeps the session and
/// connection alive — it never kills either.
pub const SERVE_REJECTED_REQUESTS: &str = "serve.rejected_requests";
/// Coordination sessions opened over the lifetime of the daemon
/// (`node` and `provision` requests).
pub const SERVE_SESSIONS_OPENED: &str = "serve.sessions_opened";
/// TCP connections accepted over the lifetime of the daemon.
pub const SERVE_CONNECTIONS: &str = "serve.connections";
/// Telemetry export ticks completed (one per interval, per exporter
/// fleet pass, plus the final drain flush).
pub const SERVE_EXPORTS: &str = "serve.exports";
/// Prometheus `/metrics` scrapes answered.
pub const SERVE_SCRAPES: &str = "serve.scrapes";
/// Live coordination sessions (gauge).
pub const SERVE_SESSIONS: &str = "serve.sessions";
/// Open client TCP connections (gauge).
pub const SERVE_OPEN_CONNECTIONS: &str = "serve.open_connections";

// --- node health state machine (crates/cluster/src/health.rs) ---------

/// Healthy → Suspect transitions (a node's reports started missing or
/// failing validation).
pub const HEALTH_SUSPECTS: &str = "health.suspects";
/// Transitions into Quarantined (miss streak reached the threshold, or
/// a probation epoch missed its report).
pub const HEALTH_QUARANTINES: &str = "health.quarantines";
/// Quarantined → Rejoining transitions (a quarantined node delivered a
/// valid report again).
pub const HEALTH_REJOINS: &str = "health.rejoins";
/// Rejoining → Healthy transitions (probation served cleanly).
pub const HEALTH_RECOVERIES: &str = "health.recoveries";
/// Epochs where raises were funded by watts not yet confirmed freed
/// from a quarantined node. **Must read zero on every run** —
/// decreases-first reclamation makes a leak structurally impossible.
pub const HEALTH_QUARANTINE_LEAKS: &str = "health.quarantine_leaks";
/// Nodes currently Healthy (gauge, end of last epoch).
pub const HEALTH_HEALTHY_NODES: &str = "health.healthy_nodes";
