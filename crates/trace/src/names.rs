//! Canonical span, counter, and gauge names.
//!
//! Instrumented crates name their metrics through these constants so the
//! trace schema has one source of truth (and `docs/OBSERVABILITY.md` has
//! one table to keep in sync). Names form a dotted hierarchy rooted at
//! the subsystem: `sweep.*`, `solve.*`, `coord.*`, `online.*`.

// --- sweep (crates/core/src/sweep.rs) ---------------------------------

/// Root span around one whole sweep.
pub const SPAN_SWEEP: &str = "sweep";
/// One worker batch, parented under [`SPAN_SWEEP`].
pub const SPAN_SWEEP_WORKER: &str = "sweep.worker";

/// Allocations handed to the sweep (the full candidate space).
pub const SWEEP_POINTS_TOTAL: &str = "sweep.points_total";
/// Allocations that solved to an operating point.
pub const SWEEP_POINTS_EVALUATED: &str = "sweep.points_evaluated";
/// Allocations the solver rejected as infeasible (counted, then skipped).
pub const SWEEP_POINTS_INFEASIBLE: &str = "sweep.points_infeasible";
/// Points dropped by a worker failure. **Must read zero on a healthy
/// run** — a nonzero value is the silent-data-loss bug this crate was
/// built to expose.
pub const SWEEP_POINTS_LOST: &str = "sweep.points_lost";
/// Real solver errors (not infeasibility). Also must read zero; nonzero
/// fails the sweep loudly.
pub const SWEEP_SOLVER_ERRORS: &str = "sweep.solver_errors";

// --- solver (crates/powersim) -----------------------------------------

/// Calls into `pbc_powersim::solve`.
pub const SOLVE_EVALUATIONS: &str = "solve.evaluations";
/// Solves rejected as infeasible (budget/cap not schedulable).
pub const SOLVE_INFEASIBLE: &str = "solve.infeasible";
/// Solves that failed with a real error.
pub const SOLVE_ERRORS: &str = "solve.errors";

// --- static coordinator (crates/core/src/coord.rs) --------------------

/// CPU coordinations resolved in regime A (surplus left over).
pub const COORD_CPU_REGIME_A: &str = "coord.cpu.regime_a";
/// CPU coordinations resolved in regime B.
pub const COORD_CPU_REGIME_B: &str = "coord.cpu.regime_b";
/// CPU coordinations resolved in regime C.
pub const COORD_CPU_REGIME_C: &str = "coord.cpu.regime_c";
/// CPU coordinations rejected (budget below minimum — regime D).
pub const COORD_CPU_REJECTED: &str = "coord.cpu.rejected";
/// Last CPU surplus returned to the node budget, in watts.
pub const COORD_CPU_SURPLUS_W: &str = "coord.cpu.surplus_w";

/// GPU coordinations resolved compute-intensive.
pub const COORD_GPU_COMPUTE: &str = "coord.gpu.compute_intensive";
/// GPU coordinations resolved memory-full.
pub const COORD_GPU_MEM_FULL: &str = "coord.gpu.mem_full";
/// GPU coordinations resolved balanced.
pub const COORD_GPU_BALANCED: &str = "coord.gpu.balanced";
/// GPU coordinations rejected (cap out of range).
pub const COORD_GPU_REJECTED: &str = "coord.gpu.rejected";
/// Last GPU surplus returned to the node budget, in watts.
pub const COORD_GPU_SURPLUS_W: &str = "coord.gpu.surplus_w";

// --- online coordinator (crates/core/src/online.rs) -------------------

/// Epochs observed by the online coordinator.
pub const ONLINE_EPOCHS: &str = "online.epochs";
/// Probes that improved performance and were accepted.
pub const ONLINE_ACCEPTED: &str = "online.accepted";
/// Probes that regressed performance and were rolled back.
pub const ONLINE_REJECTED: &str = "online.rejected";
/// Step-size decays after a failed probe pair.
pub const ONLINE_STEP_DECAYS: &str = "online.step_decays";
/// Probes shifting power toward the processors.
pub const ONLINE_PROBE_TOWARD_PROC: &str = "online.probe_toward_proc";
/// Probes shifting power toward memory.
pub const ONLINE_PROBE_TOWARD_MEM: &str = "online.probe_toward_mem";
/// Current probe step size, in watts.
pub const ONLINE_STEP_W: &str = "online.step_w";
/// Best performance seen so far (solver performance units).
pub const ONLINE_BEST_PERF: &str = "online.best_perf";
